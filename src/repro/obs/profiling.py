"""Simulator profiling: wall-time attribution per event callback.

The ROADMAP's "as fast as the hardware allows" goal needs to know where
wall time goes; :class:`SimulatorProfiler` plugs into ``Simulator.run``
(set ``sim.profiler``) and attributes the wall time and count of every
fired event to its callback's qualified name. The run loop pays two
``perf_counter()`` calls and one dict update per event while profiling
and a single hoisted ``None`` check when not.

The report replaces the hand-timed ``benchmarks/results/simulator_perf``
numbers: total events/sec plus a per-callback breakdown future perf PRs
can diff against.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional
from time import perf_counter


class SimulatorProfiler:
    """Accumulates per-callback wall time across ``Simulator.run`` calls."""

    def __init__(self) -> None:
        # qualname -> [count, total_wall_seconds]
        self._stats: Dict[str, List[float]] = {}
        self.run_wall_s = 0.0
        self.events = 0
        self._run_started_at: Optional[float] = None
        # Latest event-core counter snapshot (heap pushes, peak heap
        # size, pool hit rate — see EventQueue.stats); the simulator
        # refreshes it after every profiled run.
        self.event_core: Optional[dict] = None

    # ------------------------------------------------------------------
    # Hooks the simulator calls
    # ------------------------------------------------------------------
    def run_started(self) -> None:
        self._run_started_at = perf_counter()

    def run_finished(self, processed: int) -> None:
        if self._run_started_at is not None:
            self.run_wall_s += perf_counter() - self._run_started_at
            self._run_started_at = None
        self.events += processed

    def record_event_core(self, stats: dict) -> None:
        """Store the queue's cumulative counter snapshot (the counters
        only grow, so the latest snapshot covers all profiled runs)."""
        self.event_core = dict(stats)

    def record(self, fn: Callable[..., Any], wall_s: float) -> None:
        """Attribute one fired event to its callback."""
        key = getattr(fn, "__qualname__", None) or repr(fn)
        entry = self._stats.get(key)
        if entry is None:
            self._stats[key] = [1, wall_s]
        else:
            entry[0] += 1
            entry[1] += wall_s

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        return self.events / self.run_wall_s if self.run_wall_s > 0 else 0.0

    def callback_stats(self) -> List[dict]:
        """Per-callback rows, heaviest total wall time first."""
        rows = [
            {
                "callback": name,
                "count": int(count),
                "total_s": total,
                "avg_us": (total / count) * 1e6 if count else 0.0,
            }
            for name, (count, total) in self._stats.items()
        ]
        rows.sort(key=lambda row: (-row["total_s"], row["callback"]))
        return rows

    def as_dict(self) -> dict:
        """JSON-ready summary."""
        summary = {
            "events": self.events,
            "wall_s": self.run_wall_s,
            "events_per_second": self.events_per_second,
            "callbacks": self.callback_stats(),
        }
        if self.event_core is not None:
            summary["event_core"] = self.event_core
        return summary

    def report(self, top: Optional[int] = None) -> str:
        """Human-readable table: totals line plus per-callback rows."""
        lines = [
            f"simulator profile: {self.events:,} events in {self.run_wall_s:.3f}s wall "
            f"({self.events_per_second:,.0f} events/s)"
        ]
        core = self.event_core
        if core is not None:
            lines.append(
                f"  event core: {core.get('heap_pushes', 0):,} heap pushes"
                f" (peak heap {core.get('max_heap_len', 0):,}),"
                f" pool hit rate {(core.get('pool_hit_rate') or 0.0):.1%}"
            )
        rows = self.callback_stats()
        if top is not None:
            rows = rows[:top]
        if rows:
            callback_width = max(len(row["callback"]) for row in rows)
            callback_width = min(max(callback_width, 8), 56)
            lines.append(
                f"  {'callback':<{callback_width}} {'count':>10} {'total(s)':>10} "
                f"{'avg(us)':>9} {'share':>6}"
            )
            accounted = sum(row["total_s"] for row in self.callback_stats())
            for row in rows:
                share = row["total_s"] / accounted * 100 if accounted > 0 else 0.0
                name = row["callback"]
                if len(name) > callback_width:
                    name = name[: callback_width - 1] + "…"
                lines.append(
                    f"  {name:<{callback_width}} {row['count']:>10,} {row['total_s']:>10.3f} "
                    f"{row['avg_us']:>9.2f} {share:>5.1f}%"
                )
            overhead = self.run_wall_s - accounted
            if overhead > 0:
                lines.append(
                    f"  {'(event loop overhead)':<{callback_width}} {'':>10} {overhead:>10.3f}"
                )
        return "\n".join(lines)
