"""Unified telemetry: tracepoints, metrics, exporters, profiling.

The simulator-side analogue of the kernel introspection the paper's
evaluation relied on (``ss -ti`` dumps, ``tcp_probe``-style probes):

* :mod:`repro.obs.tracepoints` — named probe points that cost one
  attribute check when disabled;
* :mod:`repro.obs.metrics` — counters, gauges, and log-scale histograms
  with label support;
* :mod:`repro.obs.exporters` — JSONL, Chrome trace-event JSON
  (Perfetto-loadable, TDNs as tracks), and CSV time series;
* :mod:`repro.obs.profiling` — per-callback wall-time attribution for
  ``Simulator.run``;
* :mod:`repro.obs.telemetry` — the facade tying them to one run.

See ``docs/observability.md`` for the tracepoint catalog and the
mapping to the paper's kernel probes.
"""

from repro.obs.exporters import (
    MemoryExporter,
    render_chrome_trace,
    render_jsonl,
    write_csv_series,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, log2_bucket
from repro.obs.profiling import SimulatorProfiler
from repro.obs.telemetry import DISABLED, ObsConfig, Telemetry
from repro.obs.tracepoints import (
    NULL_TRACEPOINT,
    TRACEPOINT_CATALOG,
    Tracepoint,
    TracepointRegistry,
)

__all__ = [
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "MemoryExporter",
    "MetricsRegistry",
    "NULL_TRACEPOINT",
    "ObsConfig",
    "SimulatorProfiler",
    "TRACEPOINT_CATALOG",
    "Telemetry",
    "Tracepoint",
    "TracepointRegistry",
    "log2_bucket",
    "render_chrome_trace",
    "render_jsonl",
    "write_csv_series",
]
