"""Unified telemetry: tracepoints, metrics, exporters, profiling.

The simulator-side analogue of the kernel introspection the paper's
evaluation relied on (``ss -ti`` dumps, ``tcp_probe``-style probes):

* :mod:`repro.obs.tracepoints` — named probe points that cost one
  attribute check when disabled;
* :mod:`repro.obs.metrics` — counters, gauges, log-scale histograms,
  and quantile-sketch families with label support;
* :mod:`repro.obs.sketch` — mergeable constant-memory quantile sketches
  (DDSketch-style) and streaming moment stats;
* :mod:`repro.obs.campaign` — the run-lifecycle event bus (JSONL
  campaign log, worker heartbeats, live TTY view);
* :mod:`repro.obs.exporters` — JSONL, Chrome trace-event JSON
  (Perfetto-loadable, TDNs as tracks), and CSV time series;
* :mod:`repro.obs.profiling` — per-callback wall-time attribution for
  ``Simulator.run``;
* :mod:`repro.obs.telemetry` — the facade tying them to one run.

See ``docs/observability.md`` for the tracepoint catalog and the
mapping to the paper's kernel probes.
"""

from repro.obs.campaign import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignLog,
    LiveCampaignView,
    campaign_summary,
    read_campaign,
    validate_record,
    validate_records,
)
from repro.obs.exporters import (
    MemoryExporter,
    render_chrome_trace,
    render_jsonl,
    write_csv_series,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sketch,
    ZERO_BUCKET,
    bucket_upper_bound,
    log2_bucket,
)
from repro.obs.profiling import SimulatorProfiler
from repro.obs.sketch import (
    DEFAULT_ALPHA,
    PERCENTILE_LABELS,
    QuantileSketch,
    StreamStats,
    sketch_from_samples,
)
from repro.obs.telemetry import DISABLED, ObsConfig, Telemetry
from repro.obs.tracepoints import (
    NULL_TRACEPOINT,
    TRACEPOINT_CATALOG,
    Tracepoint,
    TracepointRegistry,
)

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignLog",
    "Counter",
    "DEFAULT_ALPHA",
    "DISABLED",
    "Gauge",
    "Histogram",
    "LiveCampaignView",
    "MemoryExporter",
    "MetricsRegistry",
    "NULL_TRACEPOINT",
    "ObsConfig",
    "PERCENTILE_LABELS",
    "QuantileSketch",
    "SimulatorProfiler",
    "Sketch",
    "StreamStats",
    "TRACEPOINT_CATALOG",
    "Telemetry",
    "Tracepoint",
    "TracepointRegistry",
    "ZERO_BUCKET",
    "bucket_upper_bound",
    "campaign_summary",
    "log2_bucket",
    "read_campaign",
    "render_chrome_trace",
    "render_jsonl",
    "sketch_from_samples",
    "validate_record",
    "validate_records",
    "write_csv_series",
]
