"""Trace exporters: JSONL, Chrome trace-event JSON, and CSV.

All exporters render the same in-memory event stream — ``(time_ns,
tracepoint_name, fields)`` tuples as captured by :class:`MemoryExporter`
— so one run can ship its raw telemetry in every format at once:

* **JSONL** — one JSON object per line, key-sorted. Byte-identical
  across identical seeded runs (the determinism contract the tests pin).
* **Chrome trace-event JSON** — loadable in Perfetto or
  ``chrome://tracing``. TDNs appear as tracks (one thread per TDN under
  the ``fabric`` process, day spans as slices), connections as tracks
  under the ``tcp`` process, queue occupancy and cwnd as counter series.
* **CSV** — one time-series file per tracepoint family, for spreadsheets
  and plotting scripts.
"""

from __future__ import annotations

import csv
import json
import math
import pathlib
from typing import Any, Dict, Iterable, List, Tuple

# One captured probe event.
TraceEvent = Tuple[int, str, Dict[str, Any]]


class MemoryExporter:
    """Buffers every event it sees; the substrate the file exporters
    render from, and directly usable in tests."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def __call__(self, time_ns: int, name: str, fields: Dict[str, Any]) -> None:
        # No defensive copy: each emit builds a fresh kwargs dict and no
        # subscriber mutates it, so the buffer can keep it as-is.
        self.events.append((time_ns, name, fields))

    def __len__(self) -> int:
        return len(self.events)

    def by_name(self, name: str) -> List[TraceEvent]:
        return [event for event in self.events if event[1] == name]

    def families(self) -> List[str]:
        return sorted({name for _t, name, _f in self.events})


def _clean(value: Any) -> Any:
    """JSON-safe scalar: non-finite floats become None (strict JSON has
    no Infinity literal, and Perfetto rejects it)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def render_jsonl(events: Iterable[TraceEvent]) -> str:
    """One key-sorted JSON object per line: ``{"tp": name, "ts": ns,
    ...fields}``. Deterministic byte-for-byte for a deterministic run."""
    lines = []
    for time_ns, name, fields in events:
        record = {"tp": name, "ts": time_ns}
        for key, value in fields.items():
            record[key] = _clean(value)
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


class _TrackAllocator:
    """Stable small-integer thread ids for string track keys."""

    def __init__(self) -> None:
        self._ids: Dict[Any, int] = {}

    def tid(self, key: Any) -> int:
        if key not in self._ids:
            self._ids[key] = len(self._ids) + 1
        return self._ids[key]

    def items(self):
        return self._ids.items()


# Chrome trace process ids, one per subsystem.
_PID_FABRIC = 1
_PID_TCP = 2
_PID_QUEUES = 3
_PID_NOTIFIER = 4

_PROCESS_NAMES = {
    _PID_FABRIC: "fabric (TDNs)",
    _PID_TCP: "tcp",
    _PID_QUEUES: "queues",
    _PID_NOTIFIER: "notifier",
}


def render_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Chrome trace-event JSON (object format, ``traceEvents`` list).

    Timestamps are microseconds as the format requires. Every emitted
    event carries the ``ph``/``ts``/``pid`` keys tracing frontends need.
    """
    trace: List[dict] = []
    tdn_tracks = _TrackAllocator()
    conn_tracks = _TrackAllocator()
    open_day: List[Tuple[int, int]] = []  # (tid, tdn) of the open day slice

    def us(time_ns: int) -> float:
        return time_ns / 1000.0

    def args_of(fields: Dict[str, Any]) -> Dict[str, Any]:
        return {key: _clean(value) for key, value in fields.items()}

    for time_ns, name, fields in events:
        if name == "rdcn:day_night":
            phase = fields.get("phase")
            if open_day:
                tid, _tdn = open_day.pop()
                trace.append({"ph": "E", "ts": us(time_ns), "pid": _PID_FABRIC, "tid": tid})
            if phase == "day":
                tdn = fields.get("tdn", 0)
                tid = tdn_tracks.tid(tdn)
                trace.append({
                    "ph": "B", "ts": us(time_ns), "pid": _PID_FABRIC, "tid": tid,
                    "name": f"day tdn{tdn}", "cat": "rdcn",
                    "args": {"day_index": fields.get("day_index")},
                })
                open_day.append((tid, tdn))
            active = fields.get("tdn") if phase == "day" else -1
            trace.append({
                "ph": "C", "ts": us(time_ns), "pid": _PID_FABRIC, "tid": 0,
                "name": "active_tdn", "args": {"tdn": -1 if active is None else active},
            })
        elif name == "tcp:cwnd_update":
            conn = fields.get("conn", "?")
            tdn = fields.get("tdn", 0)
            counter_args = {"cwnd": _clean(fields.get("cwnd"))}
            ssthresh = _clean(fields.get("ssthresh"))
            if ssthresh is not None:
                counter_args["ssthresh"] = ssthresh
            trace.append({
                "ph": "C", "ts": us(time_ns), "pid": _PID_TCP,
                "tid": conn_tracks.tid(conn),
                "name": f"cwnd {conn}/tdn{tdn}", "args": counter_args,
            })
        elif name == "queue:occupancy":
            trace.append({
                "ph": "C", "ts": us(time_ns), "pid": _PID_QUEUES, "tid": 0,
                "name": f"occupancy {fields.get('queue', '?')}",
                "args": {"packets": _clean(fields.get("length", 0))},
            })
        else:
            pid = _PID_TCP
            tid = 0
            if name.startswith("queue:"):
                pid = _PID_QUEUES
            elif name.startswith("notifier:"):
                pid = _PID_NOTIFIER
            elif name.startswith("rdcn:"):
                pid = _PID_FABRIC
            elif name.startswith(("tcp:", "tdtcp:")):
                tid = conn_tracks.tid(fields.get("conn", "?"))
            trace.append({
                "ph": "i", "s": "t", "ts": us(time_ns), "pid": pid, "tid": tid,
                "name": name, "cat": name.split(":", 1)[0], "args": args_of(fields),
            })

    # Close any day slice left open at the end of the run.
    if open_day and trace:
        last_ts = trace[-1]["ts"]
        tid, _tdn = open_day.pop()
        trace.append({"ph": "E", "ts": last_ts, "pid": _PID_FABRIC, "tid": tid})

    metadata: List[dict] = []
    for pid, pname in _PROCESS_NAMES.items():
        metadata.append({
            "ph": "M", "ts": 0, "pid": pid, "name": "process_name",
            "args": {"name": pname},
        })
    for tdn, tid in tdn_tracks.items():
        metadata.append({
            "ph": "M", "ts": 0, "pid": _PID_FABRIC, "tid": tid,
            "name": "thread_name", "args": {"name": f"tdn{tdn}"},
        })
    for conn, tid in conn_tracks.items():
        metadata.append({
            "ph": "M", "ts": 0, "pid": _PID_TCP, "tid": tid,
            "name": "thread_name", "args": {"name": str(conn)},
        })
    return {"traceEvents": metadata + trace, "displayTimeUnit": "ns"}


def _family_filename(family: str) -> str:
    return family.replace(":", "_").replace("/", "_")


def write_csv_series(
    events: Iterable[TraceEvent], directory, label: str
) -> List[str]:
    """One CSV per tracepoint family: ``<label>_<family>.csv`` with a
    ``ts_ns`` column plus the union of field names (sorted)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    by_family: Dict[str, List[TraceEvent]] = {}
    for event in events:
        by_family.setdefault(event[1], []).append(event)
    written: List[str] = []
    for family in sorted(by_family):
        rows = by_family[family]
        columns = sorted({key for _t, _n, fields in rows for key in fields})
        path = directory / f"{label}_{_family_filename(family)}.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["ts_ns"] + columns)
            for time_ns, _name, fields in rows:
                writer.writerow(
                    [time_ns] + [_clean(fields.get(column, "")) for column in columns]
                )
        written.append(str(path))
    return written
