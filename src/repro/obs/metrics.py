"""Metrics registry: counters, gauges, and log-scale histograms.

Prometheus-flavoured naming and label semantics, scaled down to what a
deterministic simulator needs: every metric supports a fixed tuple of
label names, and each observed label combination materializes a child
series. Histograms bucket on powers of two (log-scale), which suits the
nanosecond latencies and packet counts this reproduction measures —
seven orders of magnitude fit in ~40 buckets.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

LabelValues = Tuple[Any, ...]


class Metric:
    """Base: a named family of labelled series."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: Dict[LabelValues, Any] = {}

    def _key(self, labels: Dict[str, Any]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(labels[n] for n in self.labelnames)

    def series(self) -> Dict[LabelValues, Any]:
        """label-values -> current value (scalar or histogram state)."""
        return dict(self._series)

    def snapshot(self) -> dict:
        """JSON-ready view: one entry per label combination."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": list(key), "value": self._series_value(value)}
                for key, value in sorted(self._series.items(), key=lambda kv: str(kv[0]))
            ],
        }

    def _series_value(self, value: Any) -> Any:
        return value


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._series.get(self._key(labels), 0)

    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._series.values())


class Gauge(Metric):
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._series[self._key(labels)] = value

    def add(self, delta: float, **labels: Any) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + delta

    def value(self, **labels: Any) -> Optional[float]:
        return self._series.get(self._key(labels))


def log2_bucket(value: float) -> int:
    """Bucket index for a log-scale histogram: the smallest ``k`` with
    ``value <= 2**k`` (0 for values <= 1; negatives clamp to 0)."""
    if value <= 1:
        return 0
    return max(math.ceil(math.log2(value)), 0)


class _HistogramState:
    __slots__ = ("buckets", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None


class Histogram(Metric):
    """Log-scale (power-of-two bucket) histogram.

    ``observe(v)`` lands in the bucket whose upper bound is the smallest
    power of two >= v. Snapshots list cumulative counts so quantile
    estimates read straight off the output.
    """

    kind = "histogram"

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = _HistogramState()
        index = log2_bucket(value)
        state.buckets[index] = state.buckets.get(index, 0) + 1
        state.count += 1
        state.total += value
        state.minimum = value if state.minimum is None else min(state.minimum, value)
        state.maximum = value if state.maximum is None else max(state.maximum, value)

    def count(self, **labels: Any) -> int:
        state = self._series.get(self._key(labels))
        return state.count if state is not None else 0

    def buckets(self, **labels: Any) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, bucket-ordered."""
        state = self._series.get(self._key(labels))
        if state is None:
            return []
        pairs: List[Tuple[float, int]] = []
        running = 0
        for index in sorted(state.buckets):
            running += state.buckets[index]
            pairs.append((float(2 ** index), running))
        return pairs

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        """Upper bound of the bucket containing the q-quantile."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        pairs = self.buckets(**labels)
        if not pairs:
            return None
        target = q * pairs[-1][1]
        for upper, cumulative in pairs:
            if cumulative >= target:
                return upper
        return pairs[-1][0]

    def _series_value(self, state: _HistogramState) -> Any:
        return {
            "count": state.count,
            "sum": state.total,
            "min": state.minimum,
            "max": state.maximum,
            "buckets": [
                {"le": float(2 ** index), "count": state.buckets[index]}
                for index in sorted(state.buckets)
            ],
        }


class MetricsRegistry:
    """The metric families of one telemetry instance."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _register(self, cls, name: str, help: str, labelnames: Tuple[str, ...]):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                raise ValueError(f"metric {name!r} already registered with a different shape")
            return existing
        metric = cls(name, help=help, labelnames=labelnames)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Counter:
        """Get-or-create a counter family."""
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Gauge:
        """Get-or-create a gauge family."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Histogram:
        """Get-or-create a histogram family."""
        return self._register(Histogram, name, help, labelnames)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """JSON-ready dump of every family, name-sorted (deterministic)."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}
