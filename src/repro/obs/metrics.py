"""Metrics registry: counters, gauges, and log-scale histograms.

Prometheus-flavoured naming and label semantics, scaled down to what a
deterministic simulator needs: every metric supports a fixed tuple of
label names, and each observed label combination materializes a child
series. Histograms bucket on powers of two (log-scale), which suits the
nanosecond latencies and packet counts this reproduction measures —
seven orders of magnitude fit in ~40 buckets.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch

LabelValues = Tuple[Any, ...]


class Metric:
    """Base: a named family of labelled series."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: Dict[LabelValues, Any] = {}

    def _key(self, labels: Dict[str, Any]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(labels[n] for n in self.labelnames)

    def series(self) -> Dict[LabelValues, Any]:
        """label-values -> current value (scalar or histogram state)."""
        return dict(self._series)

    def snapshot(self) -> dict:
        """JSON-ready view: one entry per label combination."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": list(key), "value": self._series_value(value)}
                for key, value in sorted(self._series.items(), key=lambda kv: str(kv[0]))
            ],
        }

    def _series_value(self, value: Any) -> Any:
        return value


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._series.get(self._key(labels), 0)

    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._series.values())


class Gauge(Metric):
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._series[self._key(labels)] = value

    def add(self, delta: float, **labels: Any) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + delta

    def value(self, **labels: Any) -> Optional[float]:
        return self._series.get(self._key(labels))


#: Values <= 0 (or denormal-small) land here; rendered with upper
#: bound 0.0. Sub-1 positive values get real negative indices down to
#: ``ZERO_BUCKET + 1`` (2**-63 ~ 1e-19 — far below any simulated
#: quantity), so second-scale FCTs expressed in seconds stay
#: distinguishable instead of collapsing into one bucket.
ZERO_BUCKET = -64


def log2_bucket(value: float) -> int:
    """Bucket index for a log-scale histogram: the smallest ``k`` with
    ``value <= 2**k``. Sub-1 values get negative indices (0.5 -> -1,
    0.3 -> -1, 0.25 -> -2, ...); zero and negative values land in the
    dedicated :data:`ZERO_BUCKET`."""
    if value <= 0:
        return ZERO_BUCKET
    return max(math.ceil(math.log2(value)), ZERO_BUCKET + 1)


def bucket_upper_bound(index: int) -> float:
    """The inclusive upper bound a bucket index renders as (0.0 for the
    zero bucket)."""
    return 0.0 if index <= ZERO_BUCKET else float(2.0 ** index)


class _HistogramState:
    __slots__ = ("buckets", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None


class Histogram(Metric):
    """Log-scale (power-of-two bucket) histogram.

    ``observe(v)`` lands in the bucket whose upper bound is the smallest
    power of two >= v. Snapshots list cumulative counts so quantile
    estimates read straight off the output.
    """

    kind = "histogram"

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = _HistogramState()
        index = log2_bucket(value)
        state.buckets[index] = state.buckets.get(index, 0) + 1
        state.count += 1
        state.total += value
        state.minimum = value if state.minimum is None else min(state.minimum, value)
        state.maximum = value if state.maximum is None else max(state.maximum, value)

    def count(self, **labels: Any) -> int:
        state = self._series.get(self._key(labels))
        return state.count if state is not None else 0

    def buckets(self, **labels: Any) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, bucket-ordered."""
        state = self._series.get(self._key(labels))
        if state is None:
            return []
        pairs: List[Tuple[float, int]] = []
        running = 0
        for index in sorted(state.buckets):
            running += state.buckets[index]
            pairs.append((bucket_upper_bound(index), running))
        return pairs

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        """Upper bound of the bucket containing the q-quantile
        (``q=0.0`` returns the exact observed minimum)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        state = self._series.get(self._key(labels))
        if state is None or state.count == 0:
            return None
        if q == 0.0:
            return state.minimum
        pairs = self.buckets(**labels)
        target = q * pairs[-1][1]
        for upper, cumulative in pairs:
            if cumulative >= target:
                return upper
        return pairs[-1][0]

    def _series_value(self, state: _HistogramState) -> Any:
        return {
            "count": state.count,
            "sum": state.total,
            "min": state.minimum,
            "max": state.maximum,
            "buckets": [
                {"le": bucket_upper_bound(index), "count": state.buckets[index]}
                for index in sorted(state.buckets)
            ],
        }


class Sketch(Metric):
    """A labelled family of :class:`~repro.obs.sketch.QuantileSketch`\\ s.

    Unlike :class:`Histogram`'s fixed power-of-two buckets, a sketch
    series guarantees *relative* accuracy (``alpha``) at every scale and
    merges exactly across workers — the snapshot reports p50/p90/p99/
    p999 alongside the full serialized state, so per-worker snapshots
    can be recombined without losing resolution.
    """

    kind = "sketch"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Tuple[str, ...] = (),
        alpha: float = DEFAULT_ALPHA,
    ):
        super().__init__(name, help=help, labelnames=labelnames)
        self.alpha = alpha

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = QuantileSketch(alpha=self.alpha)
        state.add(value)

    def sketch(self, **labels: Any) -> Optional[QuantileSketch]:
        """The underlying sketch of one label combination (None if the
        series never observed a value)."""
        return self._series.get(self._key(labels))

    def count(self, **labels: Any) -> int:
        state = self._series.get(self._key(labels))
        return state.count if state is not None else 0

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        state = self._series.get(self._key(labels))
        return state.quantile(q) if state is not None else None

    def merge_series(self, other: "Sketch") -> None:
        """Fold every series of ``other`` into this family (exact —
        bucket counts are integers)."""
        if other.labelnames != self.labelnames or other.alpha != self.alpha:
            raise ValueError(f"sketch family {self.name!r}: shape mismatch on merge")
        for key, state in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                self._series[key] = QuantileSketch.from_dict(state.to_dict())
            else:
                mine.merge(state)

    def _series_value(self, state: QuantileSketch) -> Any:
        return {
            "count": state.count,
            "sum": state.stats.total,
            "min": state.stats.minimum,
            "max": state.stats.maximum,
            "percentiles": state.percentiles(),
            "state": state.to_dict(),
        }


class MetricsRegistry:
    """The metric families of one telemetry instance."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _register(self, cls, name: str, help: str, labelnames: Tuple[str, ...]):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                raise ValueError(f"metric {name!r} already registered with a different shape")
            return existing
        metric = cls(name, help=help, labelnames=labelnames)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Counter:
        """Get-or-create a counter family."""
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Gauge:
        """Get-or-create a gauge family."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: Tuple[str, ...] = ()) -> Histogram:
        """Get-or-create a histogram family."""
        return self._register(Histogram, name, help, labelnames)

    def sketch(
        self,
        name: str,
        help: str = "",
        labelnames: Tuple[str, ...] = (),
        alpha: float = DEFAULT_ALPHA,
    ) -> Sketch:
        """Get-or-create a quantile-sketch family (relative accuracy
        ``alpha``; snapshot reports p50/p90/p99/p999)."""
        existing = self._metrics.get(name)
        if existing is not None:
            if (
                not isinstance(existing, Sketch)
                or existing.labelnames != tuple(labelnames)
                or existing.alpha != alpha
            ):
                raise ValueError(f"metric {name!r} already registered with a different shape")
            return existing
        metric = Sketch(name, help=help, labelnames=labelnames, alpha=alpha)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """JSON-ready dump of every family, name-sorted (deterministic)."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}
