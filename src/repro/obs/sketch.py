"""Mergeable, constant-memory streaming aggregates.

Campaign-scale runs (the ROADMAP's 10M-flow workload engine and 10k-run
sweep fabric) cannot keep per-sample lists: a million FCTs per variant
per load point stops fitting in memory long before the simulation stops
fitting in time. This module provides the two streaming summaries the
rest of the stack builds on:

* :class:`StreamStats` — count/sum/min/max plus Welford mean/M2, so
  mean and variance come out of O(1) state.
* :class:`QuantileSketch` — a DDSketch-style log-bucketed quantile
  sketch with **relative-accuracy** guarantee: ``quantile(q)`` is within
  a factor ``(1 ± alpha)`` of the exact q-quantile of everything
  ``add()``-ed, using O(log(max/min)/alpha) integer buckets. Buckets
  carry signed indices, so sub-1 values (seconds-scale FCTs expressed in
  seconds, ratios, fractions) resolve just as finely as large ones.

Both are:

* **merge-associative** — ``a.merge(b)`` accumulates exactly (bucket
  counts are integers), so per-worker partial sketches combine into the
  same quantile answers regardless of merge order or sharding;
* **JSON-round-trippable** — ``from_dict(to_dict(s))`` restores the
  exact state, and :meth:`to_json` emits key-sorted, separator-stable
  bytes so identical seeded runs serialize byte-identically.

Only non-negative values are accepted (every stream we sketch — FCTs,
latencies, byte counts, per-day event counts — is non-negative);
values below ``min_value`` (including exact zeros) land in a dedicated
zero bucket and report as 0.0.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "QuantileSketch",
    "StreamStats",
    "sketch_from_samples",
    "DEFAULT_ALPHA",
    "PERCENTILE_LABELS",
]

#: Default relative accuracy: quantile estimates within ±1%.
DEFAULT_ALPHA = 0.01

#: The snapshot percentiles every consumer reports.
PERCENTILE_LABELS: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
    ("p999", 0.999),
)


class StreamStats:
    """Count/sum/min/max/mean/M2 in O(1) state (Welford online update,
    Chan et al. parallel merge)."""

    __slots__ = ("count", "total", "minimum", "maximum", "mean", "m2")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.mean: float = 0.0
        self.m2: float = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def merge(self, other: "StreamStats") -> "StreamStats":
        """Fold ``other`` into this instance (in place; returns self)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.mean = other.mean
            self.m2 = other.m2
            return self
        delta = other.mean - self.mean
        count = self.count + other.count
        self.mean += delta * other.count / count
        self.m2 += other.m2 + delta * delta * self.count * other.count / count
        self.count = count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def variance(self) -> float:
        """Population variance (0.0 for fewer than two samples)."""
        return self.m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "m2": self.m2,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamStats":
        stats = cls()
        stats.count = int(data["count"])
        stats.total = float(data["sum"])
        stats.minimum = None if data["min"] is None else float(data["min"])
        stats.maximum = None if data["max"] is None else float(data["max"])
        stats.mean = float(data["mean"])
        stats.m2 = float(data["m2"])
        return stats

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamStats):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"StreamStats(count={self.count}, mean={self.mean:.6g}, "
            f"min={self.minimum}, max={self.maximum})"
        )


class QuantileSketch:
    """DDSketch-style quantile sketch with relative-accuracy ``alpha``.

    A value ``v >= min_value`` lands in bucket ``ceil(log_gamma(v))``
    with ``gamma = (1 + alpha) / (1 - alpha)``; the bucket's
    representative value ``2 * gamma^i / (gamma + 1)`` (the geometric
    bucket midpoint) is then within a relative factor ``alpha`` of every
    value the bucket holds. Indices are signed, so sub-1 values get
    negative buckets instead of collapsing. Values in ``[0, min_value)``
    count into a dedicated zero bucket reported as 0.0; negative values
    raise ``ValueError``.

    The bucket map is a plain ``dict[int, int]``; memory is bounded by
    the dynamic range of the data, not its volume (~920 buckets span
    1 ns..1000 s at ``alpha=0.01``).
    """

    __slots__ = ("alpha", "min_value", "gamma", "_log_gamma", "zero_count", "buckets", "stats")

    def __init__(self, alpha: float = DEFAULT_ALPHA, min_value: float = 1e-9) -> None:
        if not (0.0 < alpha < 1.0):
            raise ValueError("alpha must be in (0, 1)")
        if min_value <= 0.0:
            raise ValueError("min_value must be positive")
        self.alpha = float(alpha)
        self.min_value = float(min_value)
        self.gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self.gamma)
        self.zero_count: int = 0
        self.buckets: Dict[int, int] = {}
        self.stats = StreamStats()

    # ------------------------------------------------------------------
    # Ingest / merge
    # ------------------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """The signed log-bucket index of a value >= ``min_value``."""
        return math.ceil(math.log(value) / self._log_gamma)

    def add(self, value: float, count: int = 1) -> None:
        if value < 0.0:
            raise ValueError(f"QuantileSketch takes non-negative values, got {value}")
        if count < 1:
            raise ValueError("count must be >= 1")
        for _ in range(count):
            self.stats.add(value)
        if value < self.min_value:
            self.zero_count += count
            return
        index = self.bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + count

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place; returns self).

        Bucket counts are integers, so the merged bucket state — and
        therefore every quantile answer — is exactly associative and
        commutative across any merge tree. The float ``sum``/``mean``
        carried by :class:`StreamStats` merge with ordinary float
        arithmetic (associative only up to rounding).
        """
        if (other.alpha, other.min_value) != (self.alpha, self.min_value):
            raise ValueError(
                f"cannot merge sketches with different shapes: "
                f"(alpha={self.alpha}, min_value={self.min_value}) vs "
                f"(alpha={other.alpha}, min_value={other.min_value})"
            )
        self.zero_count += other.zero_count
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.stats.merge(other.stats)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self.zero_count + sum(self.buckets.values())

    def bucket_value(self, index: int) -> float:
        """The representative (relative-error-minimizing) value of one
        bucket: the geometric midpoint ``2 * gamma^i / (gamma + 1)``."""
        return 2.0 * self.gamma ** index / (self.gamma + 1.0)

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile estimate (None for an empty sketch).

        Within relative error ``alpha`` of the exact quantile, clamped
        to the observed [min, max] so degenerate tails cannot escape the
        data range.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        total = self.count
        if total == 0:
            return None
        if q == 0.0:
            return self.stats.minimum
        if q == 1.0:
            return self.stats.maximum
        rank = q * (total - 1)
        if rank < self.zero_count:
            return 0.0
        cumulative = self.zero_count
        estimate = 0.0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative > rank:
                estimate = self.bucket_value(index)
                break
        else:
            estimate = self.bucket_value(max(self.buckets))
        low = self.stats.minimum if self.stats.minimum is not None else estimate
        high = self.stats.maximum if self.stats.maximum is not None else estimate
        return min(max(estimate, low), high)

    def percentiles(self) -> Dict[str, Optional[float]]:
        """The standard snapshot percentiles (p50/p90/p99/p999)."""
        return {label: self.quantile(q) for label, q in PERCENTILE_LABELS}

    def cdf_points(self) -> List[Tuple[float, float]]:
        """The sketch's empirical CDF as ``(value, P[X <= value])``
        pairs, one per occupied bucket in increasing value order.

        Values are bucket representatives (geometric midpoints), so each
        point is within relative error ``alpha`` of the exact curve; the
        zero bucket contributes a leading ``(0.0, p)`` step. Empty
        sketch -> empty list. The walk is over sorted integer bucket
        indices with integer cumulative counts, so the same state always
        yields the same points (merge-order independent).
        """
        total = self.count
        if total == 0:
            return []
        points: List[Tuple[float, float]] = []
        cumulative = 0
        if self.zero_count:
            cumulative += self.zero_count
            points.append((0.0, cumulative / total))
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            points.append((self.bucket_value(index), cumulative / total))
        return points

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": "ddsketch",
            "alpha": self.alpha,
            "min_value": self.min_value,
            "zero_count": self.zero_count,
            "buckets": [[index, self.buckets[index]] for index in sorted(self.buckets)],
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        if data.get("kind") != "ddsketch":
            raise ValueError(f"not a ddsketch payload: kind={data.get('kind')!r}")
        sketch = cls(alpha=float(data["alpha"]), min_value=float(data["min_value"]))
        sketch.zero_count = int(data["zero_count"])
        sketch.buckets = {int(index): int(count) for index, count in data["buckets"]}
        sketch.stats = StreamStats.from_dict(data["stats"])
        return sketch

    def to_json(self) -> str:
        """Canonical byte-stable encoding (key-sorted, fixed separators):
        identical states serialize to identical bytes."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "QuantileSketch":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __len__(self) -> int:
        return len(self.buckets) + (1 if self.zero_count else 0)

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={len(self.buckets)})"
        )


def sketch_from_samples(
    samples: Iterable[float],
    alpha: float = DEFAULT_ALPHA,
    min_value: float = 1e-9,
) -> QuantileSketch:
    """Stream a sample iterable into a fresh sketch (convenience for
    migrating list-based collectors)."""
    sketch = QuantileSketch(alpha=alpha, min_value=min_value)
    sketch.extend(samples)
    return sketch
