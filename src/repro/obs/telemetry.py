"""The telemetry facade: one object wiring tracepoints, metrics,
exporters, and the simulator profiler together.

Lifecycle::

    from repro.obs import ObsConfig, Telemetry
    from repro.sim import Simulator

    telemetry = Telemetry(ObsConfig(trace_dir="out", profile=True))
    sim = Simulator()
    telemetry.attach(sim)          # BEFORE building the testbed/stack
    ...build testbed, run...
    artifacts = telemetry.finish() # writes JSONL / Chrome trace / CSVs

Instrumented code never imports this module's state directly; it calls
``Telemetry.of(sim)``, which returns the attached instance or a shared
disabled stand-in whose tracepoints never enable. A probe site in a run
without telemetry therefore costs one attribute check.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, fields, replace
from typing import Any, List, Optional

from repro.obs.exporters import (
    MemoryExporter,
    render_chrome_trace,
    render_jsonl,
    write_csv_series,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import SimulatorProfiler
from repro.obs.tracepoints import (
    NULL_TRACEPOINT,
    Subscriber,
    Tracepoint,
    TracepointRegistry,
)


@dataclass(frozen=True)
class ObsConfig:
    """What a run should record and where the artifacts go.

    ``tracepoints`` is a glob over tracepoint names (``"tcp:*"`` records
    only the TCP families); exporters subscribe to the matching set.
    """

    trace_dir: Optional[str] = None       # JSONL + Chrome trace + CSVs
    metrics_dir: Optional[str] = None     # metrics registry snapshot (JSON)
    profile: bool = False                 # simulator wall-time attribution
    tracepoints: str = "*"
    label: str = "run"
    jsonl: bool = True
    chrome_trace: bool = True
    csv: bool = True

    @property
    def active(self) -> bool:
        """Does this configuration record anything at all?"""
        return bool(self.trace_dir or self.metrics_dir or self.profile)

    def for_run(self, label: str) -> "ObsConfig":
        """Copy with a run-specific artifact label (figure_variant)."""
        return replace(self, label=label)

    def to_dict(self) -> dict:
        """Canonical JSON-ready view (every field, declaration order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ObsConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ObsConfig fields {sorted(unknown)}")
        return cls(**data)


class Telemetry:
    """Owns the tracepoint registry, metrics registry, event buffer,
    exporters, and (optionally) the simulator profiler for one run."""

    enabled = True

    def __init__(self, config: Optional[ObsConfig] = None):
        self.config = config or ObsConfig()
        self.tracepoints = TracepointRegistry()
        self.metrics = MetricsRegistry()
        self.recorder = MemoryExporter()
        self.profiler: Optional[SimulatorProfiler] = None
        self.sim: Any = None
        self._artifacts: List[str] = []
        if self.config.trace_dir:
            self.tracepoints.subscribe(self.config.tracepoints, self.recorder)
        if self.config.metrics_dir:
            self.enable_metrics_bridge()

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    @staticmethod
    def of(sim: Any) -> "Telemetry":
        """The telemetry attached to ``sim``, or the disabled stand-in."""
        telemetry = getattr(sim, "telemetry", None)
        return telemetry if telemetry is not None else DISABLED

    def attach(self, sim: Any) -> "Telemetry":
        """Bind to a simulator. Must happen before instrumented objects
        (connections, testbeds) are constructed — they fetch their
        tracepoints at construction time."""
        sim.telemetry = self
        self.sim = sim
        if self.config.profile:
            self.enable_profiling()
        return self

    # ------------------------------------------------------------------
    # Tracepoints / metrics
    # ------------------------------------------------------------------
    def tracepoint(self, name: str) -> Tracepoint:
        """Fetch a probe point by name (one dict lookup)."""
        return self.tracepoints.get(name)

    def subscribe(self, pattern: str, fn: Subscriber) -> None:
        """Attach a subscriber to every tracepoint matching the glob."""
        self.tracepoints.subscribe(pattern, fn)

    def enable_metrics_bridge(self) -> None:
        """Derive the standard metric families from the tracepoint
        stream (counters/gauges/histograms with per-connection and
        per-TDN labels)."""
        bridge = _MetricsBridge(self.metrics)
        self.tracepoints.subscribe("*", bridge)

    def enable_profiling(self) -> SimulatorProfiler:
        """Install a wall-time profiler on the attached simulator."""
        if self.sim is None:
            raise RuntimeError("attach() a simulator before enabling profiling")
        if self.profiler is None:
            self.profiler = SimulatorProfiler()
            self.sim.profiler = self.profiler
        return self.profiler

    # ------------------------------------------------------------------
    # Object instrumentation helpers
    # ------------------------------------------------------------------
    def instrument_queue(self, queue: Any, sim: Any) -> None:
        """Wire a :class:`repro.net.queues.DropTailQueue` into the
        ``queue:occupancy`` / ``queue:drop`` tracepoints."""
        tp_occupancy = self.tracepoint("queue:occupancy")
        tp_drop = self.tracepoint("queue:drop")
        qname = queue.name
        # attach/detach mutate the subscriber list in place, so the
        # closure can capture the list itself and skip one lookup.
        occupancy_subs = tp_occupancy._subscribers

        def on_length(length: int) -> None:
            # Dispatches to the subscriber list directly (the loop is
            # exactly Tracepoint.emit's body): queue occupancy is the
            # highest-volume tracepoint and the extra frame shows up.
            if tp_occupancy.enabled:
                now = sim.now
                fields = {"queue": qname, "length": length}
                for fn in occupancy_subs:
                    fn(now, "queue:occupancy", fields)

        def on_drop(_packet: Any) -> None:
            if tp_drop.enabled:
                tp_drop.emit(sim.now, queue=qname, occupancy=len(queue))

        queue.subscribe_length(on_length)
        queue.subscribe_drop(on_drop)

    def instrument_pool(self, pool: Any, sim: Any) -> None:
        """Wire a :class:`repro.net.queues.SharedBufferPool` into the
        ``pool:occupancy`` / ``pool:reject`` tracepoints."""
        tp_occupancy = self.tracepoint("pool:occupancy")
        tp_reject = self.tracepoint("pool:reject")
        pname = pool.name

        def on_used(used: int) -> None:
            if tp_occupancy.enabled:
                tp_occupancy.emit(
                    sim.now, pool=pname, used=used, free=pool.total - used
                )

        def on_reject(queue_name: str, occupancy: int) -> None:
            if tp_reject.enabled:
                tp_reject.emit(
                    sim.now, pool=pname, queue=queue_name, occupancy=occupancy
                )

        pool.subscribe_occupancy(on_used)
        pool.subscribe_reject(on_reject)

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    def profile_report(self) -> Optional[str]:
        return self.profiler.report() if self.profiler is not None else None

    def finish(self) -> List[str]:
        """Write every configured artifact; returns the paths written.
        Idempotent: a second call rewrites the same files."""
        self._artifacts = []
        cfg = self.config
        if cfg.trace_dir:
            directory = pathlib.Path(cfg.trace_dir)
            directory.mkdir(parents=True, exist_ok=True)
            if cfg.jsonl:
                path = directory / f"{cfg.label}.jsonl"
                path.write_text(render_jsonl(self.recorder.events))
                self._artifacts.append(str(path))
            if cfg.chrome_trace:
                path = directory / f"{cfg.label}.trace.json"
                path.write_text(
                    json.dumps(render_chrome_trace(self.recorder.events), sort_keys=True)
                )
                self._artifacts.append(str(path))
            if cfg.csv:
                self._artifacts.extend(
                    write_csv_series(self.recorder.events, directory, cfg.label)
                )
        if cfg.metrics_dir:
            directory = pathlib.Path(cfg.metrics_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{cfg.label}_metrics.json"
            path.write_text(json.dumps(self.metrics.snapshot(), indent=2, sort_keys=True))
            self._artifacts.append(str(path))
        if self.profiler is not None and (cfg.trace_dir or cfg.metrics_dir):
            directory = pathlib.Path(cfg.trace_dir or cfg.metrics_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{cfg.label}_profile.txt"
            path.write_text(self.profiler.report() + "\n")
            self._artifacts.append(str(path))
        return list(self._artifacts)

    @property
    def artifacts(self) -> List[str]:
        """Paths written by the last :meth:`finish` call."""
        return list(self._artifacts)


class _MetricsBridge:
    """Maps the standard tracepoint families onto metric families."""

    def __init__(self, registry: MetricsRegistry):
        self._retransmits = registry.counter(
            "tcp_retransmits_total", "retransmissions", ("conn", "tdn")
        )
        self._cwnd = registry.gauge("tcp_cwnd", "congestion window (MSS)", ("conn", "tdn"))
        self._ca_transitions = registry.counter(
            "tcp_ca_transitions_total", "CA state machine transitions", ("conn", "state")
        )
        self._switches = registry.counter(
            "tdtcp_switches_total", "TDN state-set switches", ("conn",)
        )
        self._day_night = registry.counter(
            "rdcn_transitions_total", "fabric day/night transitions", ("phase",)
        )
        self._drops = registry.counter("queue_drops_total", "VOQ drop-tail drops", ("queue",))
        self._occupancy = registry.gauge("queue_occupancy", "VOQ length (packets)", ("queue",))
        self._occupancy_dist = registry.histogram(
            "queue_occupancy_dist", "VOQ length distribution", ("queue",)
        )
        self._pool_rejects = registry.counter(
            "pool_rejections_total", "shared-buffer pool admission refusals", ("pool", "queue")
        )
        self._pool_occupancy = registry.gauge(
            "pool_occupancy", "shared-buffer pool cells in use", ("pool",)
        )
        self._notify_latency = registry.histogram(
            "notifier_delivery_latency_ns", "TDN notification end-to-end latency", ()
        )
        self._notify_stale = registry.counter(
            "tdn_notification_stale", "stale/duplicate/unknown TDN notifications ignored",
            ("where", "reason"),
        )
        self._workload_flows = registry.counter(
            "workload_flows_total", "workload-engine flows by lifecycle stage",
            ("stage",),
        )
        self._workload_fct = registry.histogram(
            "workload_fct_ns", "workload-engine flow completion time", ()
        )
        self._workload_offered = registry.gauge(
            "workload_offered_load", "requested offered load (fraction of fabric)", ()
        )
        self._workload_achieved = registry.gauge(
            "workload_achieved_load", "achieved load (delivered bytes / capacity)", ()
        )
        self._fault_injections = registry.counter(
            "fault_injections_total", "injected fault effects", ("kind",)
        )
        self._audit_violations = registry.counter(
            "audit_violations_total", "runtime invariant violations", ("check",)
        )

    def __call__(self, time_ns: int, name: str, fields: dict) -> None:
        if name == "tcp:cwnd_update":
            self._cwnd.set(fields.get("cwnd", 0.0), conn=fields.get("conn"), tdn=fields.get("tdn"))
        elif name == "tcp:retransmit":
            self._retransmits.inc(1, conn=fields.get("conn"), tdn=fields.get("tdn"))
        elif name == "tcp:ca_state":
            self._ca_transitions.inc(1, conn=fields.get("conn"), state=fields.get("state"))
        elif name == "tdtcp:tdn_switch":
            self._switches.inc(1, conn=fields.get("conn"))
        elif name == "rdcn:day_night":
            self._day_night.inc(1, phase=fields.get("phase"))
        elif name == "queue:drop":
            self._drops.inc(1, queue=fields.get("queue"))
        elif name == "queue:occupancy":
            length = fields.get("length", 0)
            self._occupancy.set(length, queue=fields.get("queue"))
            self._occupancy_dist.observe(length, queue=fields.get("queue"))
        elif name == "pool:occupancy":
            self._pool_occupancy.set(fields.get("used", 0), pool=fields.get("pool"))
        elif name == "pool:reject":
            self._pool_rejects.inc(
                1, pool=fields.get("pool"), queue=fields.get("queue")
            )
        elif name == "notifier:deliver":
            self._notify_latency.observe(fields.get("latency_ns", 0))
        elif name == "notifier:stale":
            self._notify_stale.inc(
                1, where=fields.get("where"), reason=fields.get("reason")
            )
        elif name == "workload:flow_start":
            self._workload_flows.inc(1, stage="started")
        elif name == "workload:flow_complete":
            self._workload_flows.inc(1, stage="completed")
            self._workload_fct.observe(fields.get("fct_ns", 0))
        elif name == "workload:load_report":
            self._workload_offered.set(fields.get("offered_load", 0.0))
            self._workload_achieved.set(fields.get("achieved_load", 0.0))
        elif name == "fault:inject":
            self._fault_injections.inc(1, kind=fields.get("kind"))
        elif name == "audit:violation":
            self._audit_violations.inc(1, check=fields.get("check"))


class _DisabledTelemetry:
    """Stand-in returned by :meth:`Telemetry.of` when nothing is
    attached: every tracepoint is the shared disabled sentinel and the
    instrumentation helpers are no-ops."""

    enabled = False

    def tracepoint(self, name: str) -> Tracepoint:
        return NULL_TRACEPOINT

    def instrument_queue(self, queue: Any, sim: Any) -> None:
        pass

    def instrument_pool(self, pool: Any, sim: Any) -> None:
        pass


DISABLED = _DisabledTelemetry()
