"""Tracepoints: named, typed probe points modeled on Linux tracepoints.

The kernel analogue the paper leans on (``tcp_probe``, ``ss -ti`` state
dumps) exposes protocol internals at stable, named probe points; this
module provides the simulator-side equivalent. A :class:`Tracepoint` is
a cheap dispatch object: instrumented code fetches it once (one dict
lookup at construction) and guards every emission with the ``enabled``
attribute, so a run with no subscribers pays one attribute check per
probe site and nothing else.

The catalog of probe points (:data:`TRACEPOINT_CATALOG`) mirrors the
kernel probes the paper's evaluation used — see
``docs/observability.md`` for the mapping.
"""

from __future__ import annotations

import fnmatch
from typing import Any, Callable, Dict, List, Optional, Tuple

# Subscriber signature: fn(time_ns, tracepoint_name, fields_dict).
Subscriber = Callable[[int, str, Dict[str, Any]], None]

# name -> (documented field names, one-line description). Field tuples
# are documentation and export schema, not enforcement: emit() accepts
# arbitrary keywords so instrumentation can evolve without registry
# churn.
TRACEPOINT_CATALOG: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "tcp:cwnd_update": (
        ("conn", "tdn", "cwnd", "ssthresh", "ca_state", "reason"),
        "congestion window / ssthresh change on one path (kernel: tcp_probe)",
    ),
    "tcp:retransmit": (
        ("conn", "tdn", "seq", "retx_count", "probe", "spurious"),
        "segment retransmission (kernel: tcp_retransmit_skb)",
    ),
    "tcp:ca_state": (
        ("conn", "tdn", "state", "reason"),
        "congestion-avoidance state machine transition (kernel: tcp_ca_state_set)",
    ),
    "tdtcp:tdn_switch": (
        ("conn", "from_tdn", "to_tdn", "saved_cwnd", "restored_cwnd", "snd_nxt", "switches"),
        "TDTCP state-set save/restore at a TDN change (§3.1)",
    ),
    "rdcn:day_night": (
        ("phase", "tdn", "day_index"),
        "fabric day start / night (reconfiguration blackout) start (§2.1)",
    ),
    "queue:drop": (
        ("queue", "occupancy"),
        "drop-tail overflow at a VOQ",
    ),
    "queue:occupancy": (
        ("queue", "length"),
        "VOQ length change (enqueue or dequeue)",
    ),
    "pool:occupancy": (
        ("pool", "used", "free"),
        "shared ToR buffer pool occupancy change (repro.net.queues.SharedBufferPool)",
    ),
    "pool:reject": (
        ("pool", "queue", "occupancy"),
        "pool admission refusal (complete-sharing full / dynamic threshold hit)",
    ),
    "notifier:deliver": (
        ("host", "tdn", "latency_ns"),
        "TDN-change notification processed by a host (§5.4 end-to-end latency)",
    ),
    "notifier:stale": (
        ("where", "name", "tdn", "reason"),
        "stale/duplicate/unknown TDN notification counted and ignored (§3.2 tolerance)",
    ),
    "workload:flow_start": (
        ("src", "dst", "size_bytes"),
        "workload-engine flow launched (repro.apps.engine)",
    ),
    "workload:flow_complete": (
        ("src", "dst", "size_bytes", "fct_ns", "slowdown"),
        "workload-engine flow fully delivered: FCT and line-rate slowdown",
    ),
    "workload:load_report": (
        ("offered_load", "achieved_load", "started", "completed", "truncated"),
        "end-of-run offered vs achieved load digest (one emission per engine run)",
    ),
    "fault:inject": (
        ("kind", "target", "detail"),
        "one injected fault effect (repro.faults: drop, flap, stall, skew, ...)",
    ),
    "executor:cache_write_error": (
        ("key", "error"),
        "result-cache write failed (e.g. ENOSPC); the batch continues uncached "
        "(process-level probe: repro.experiments.executor.CACHE_WRITE_ERROR_TP)",
    ),
    "audit:violation": (
        ("check", "subject", "detail"),
        "runtime invariant auditor found corrupted state (repro.faults.audit)",
    ),
}


class Tracepoint:
    """One named probe point.

    ``enabled`` flips to True while at least one subscriber is attached;
    instrumented code is expected to guard with it::

        if self._tp_cwnd.enabled:
            self._tp_cwnd.emit(self.sim.now, conn=self.name, cwnd=cwnd)
    """

    __slots__ = ("name", "fields", "description", "enabled", "_subscribers")

    def __init__(
        self,
        name: str,
        fields: Tuple[str, ...] = (),
        description: str = "",
    ):
        self.name = name
        self.fields = fields
        self.description = description
        self.enabled = False
        self._subscribers: List[Subscriber] = []

    def __bool__(self) -> bool:
        return self.enabled

    def subscribe(self, fn: Subscriber) -> None:
        """Attach a subscriber; enables the tracepoint."""
        self._subscribers.append(fn)
        self.enabled = True

    def unsubscribe(self, fn: Subscriber) -> None:
        """Detach a subscriber (no-op if absent); disables when empty."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass
        self.enabled = bool(self._subscribers)

    def emit(self, time_ns: int, **fields: Any) -> None:
        """Dispatch one event to every subscriber, in subscription
        order (deterministic given a deterministic simulation)."""
        for fn in self._subscribers:
            fn(time_ns, self.name, fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<Tracepoint {self.name} [{state}] subs={len(self._subscribers)}>"


#: Shared disabled sentinel handed out when no telemetry is attached;
#: subscribing to it is a programming error, so it raises.
class _NullTracepoint(Tracepoint):
    __slots__ = ()

    def subscribe(self, fn: Subscriber) -> None:
        raise RuntimeError(
            "cannot subscribe to NULL_TRACEPOINT; attach a Telemetry to the "
            "simulator before constructing the instrumented object"
        )


NULL_TRACEPOINT = _NullTracepoint("null", (), "disabled sentinel")


class TracepointRegistry:
    """The named probe points of one telemetry instance.

    Lookup is a single dict access; tracepoint objects are identity-
    stable, so instrumented code can fetch them once at construction and
    later ``subscribe`` calls take effect at the same object.
    """

    def __init__(self, catalog: Optional[Dict[str, Tuple[Tuple[str, ...], str]]] = None):
        self._tracepoints: Dict[str, Tracepoint] = {}
        for name, (fields, description) in (catalog or TRACEPOINT_CATALOG).items():
            self._tracepoints[name] = Tracepoint(name, fields, description)

    def get(self, name: str) -> Tracepoint:
        """The tracepoint registered under ``name``; unknown names are
        auto-registered (ad-hoc probes in tests and extensions)."""
        tp = self._tracepoints.get(name)
        if tp is None:
            tp = Tracepoint(name)
            self._tracepoints[name] = tp
        return tp

    def names(self) -> List[str]:
        return sorted(self._tracepoints)

    def match(self, pattern: str) -> List[Tracepoint]:
        """Tracepoints whose name matches a glob (``tcp:*``, ``*``)."""
        return [
            self._tracepoints[name]
            for name in sorted(self._tracepoints)
            if fnmatch.fnmatchcase(name, pattern)
        ]

    def subscribe(self, pattern: str, fn: Subscriber) -> List[Tracepoint]:
        """Subscribe ``fn`` to every tracepoint matching ``pattern``;
        returns the tracepoints touched."""
        touched = self.match(pattern)
        for tp in touched:
            tp.subscribe(fn)
        return touched

    def unsubscribe(self, pattern: str, fn: Subscriber) -> None:
        for tp in self.match(pattern):
            tp.unsubscribe(fn)
