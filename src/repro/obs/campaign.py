"""Campaign observability: the run-lifecycle event bus.

A *campaign* is one executor batch — a figure, a sweep, or a
variants × seeds grid — observed while it runs. The ROADMAP's sweep
fabric requires that "a 10k-run campaign is observable while it runs";
this module is the transport and the vocabulary:

* :class:`CampaignLog` — an append-only JSONL event bus. Every record
  is a key-sorted JSON object with a monotonic ``seq``, flushed per
  line so ``tail -f`` (and the live renderer) see events as they
  happen. Subscribers attached to the log receive each record in
  process, so the same stream drives the file, the live TTY view, and
  tests.
* The **event schema** (:data:`EVENT_SCHEMA`): ``campaign_start``,
  ``queued``, ``started``, ``heartbeat``, ``cache_hit``, ``retry``,
  ``finished``, ``failed``, ``quarantined``, ``campaign_end``, plus the
  crash-safety meta events ``campaign_resume`` and ``campaign_abort``
  (schema v2). :func:`validate_record` / :func:`validate_records` check
  field presence, types, and seq monotonicity — CI validates every
  record of a smoke campaign.
* :func:`campaign_summary` — a deterministic digest: wall-clock-derived
  fields (:data:`WALL_FIELDS`) are stripped and runs are keyed by
  label, so two identical seeded campaigns produce **byte-identical**
  summaries no matter how their events interleaved across workers.
* :class:`LiveCampaignView` — a TTY renderer for ``--live``: per-run
  state, EWMA-based ETA, cache-hit rate, and worker utilization,
  repainted in place from the event stream.

Heartbeats originate in :meth:`repro.sim.simulator.Simulator.run` (the
``set_heartbeat`` hook) and are relayed by the executor — over a
multiprocessing queue for pooled workers, directly for inline runs.
Every executed run emits at least one heartbeat (a final flush fires at
run end), so a silent worker is always distinguishable from a short
run.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Sequence

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "META_EVENTS",
    "TERMINAL_EVENTS",
    "WALL_FIELDS",
    "CampaignLog",
    "LiveCampaignView",
    "campaign_summary",
    "read_campaign",
    "read_campaign_with_tail",
    "validate_record",
    "validate_records",
]

#: Bumped when record shapes change; stamped on ``campaign_start``.
#: v2: ``campaign_abort`` (graceful shutdown), ``campaign_resume``
#: (checkpoint replay), and ``quarantined`` (poison-run marking).
CAMPAIGN_SCHEMA_VERSION = 2

_NUM = (int, float)

#: event type -> {field: allowed types}. Fields beyond the schema are
#: permitted (the schema is a floor, like the tracepoint catalog);
#: missing or mistyped required fields fail validation.
EVENT_SCHEMA: Dict[str, Dict[str, tuple]] = {
    "campaign_start": {"schema": (int,), "total": (int,), "jobs": (int,)},
    "queued": {"run": (str,), "index": (int,), "total": (int,)},
    "started": {"run": (str,), "attempt": (int,)},
    "heartbeat": {
        "run": (str,),
        "sim_now": (int,),
        "events": (int,),
        "events_per_s": _NUM,
        "pending_events": (int,),
    },
    "cache_hit": {"run": (str,), "index": (int,)},
    "retry": {"run": (str,), "attempt": (int,)},
    "finished": {"run": (str,), "outcome": (str,)},
    "failed": {"run": (str,), "error_type": (str,), "error_message": (str,)},
    "quarantined": {"run": (str,), "attempts": (int,)},
    "campaign_end": {"stats": (dict,)},
    "campaign_resume": {
        "schema": (int,),
        "total": (int,),
        "replayed": (int,),
        "remaining": (int,),
        "jobs": (int,),
    },
    "campaign_abort": {"reason": (str,), "done": (int,), "total": (int,)},
}

EVENT_TYPES = tuple(EVENT_SCHEMA)

#: Events that end a run's lifecycle.
TERMINAL_EVENTS = ("cache_hit", "finished", "failed")

#: Crash-safety bookkeeping events that describe *how this particular
#: journal came to be* rather than what the campaign computed. They are
#: excluded from :func:`campaign_summary` so an uninterrupted journal
#: and a kill-then-resume journal of the same seeded campaign digest
#: byte-identically.
META_EVENTS = ("campaign_resume", "campaign_abort")

#: Wall-clock-derived fields, stripped (recursively) by
#: :func:`campaign_summary` so summaries of identical seeded campaigns
#: compare byte-identical.
WALL_FIELDS = ("wall_ms", "wall_s", "events_per_s", "eta_s")


def validate_record(record: Any) -> List[str]:
    """Schema errors of one parsed record ([] when valid)."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record is not an object: {type(record).__name__}"]
    event = record.get("event")
    if event not in EVENT_SCHEMA:
        return [f"unknown event type {event!r}"]
    if not isinstance(record.get("seq"), int) or record["seq"] < 0:
        errors.append(f"{event}: seq must be a non-negative int")
    if not isinstance(record.get("wall_ms"), _NUM):
        errors.append(f"{event}: wall_ms must be a number")
    for name, types in EVENT_SCHEMA[event].items():
        if name not in record:
            errors.append(f"{event}: missing field {name!r}")
        elif not isinstance(record[name], types):
            errors.append(
                f"{event}: field {name!r} has type "
                f"{type(record[name]).__name__}, expected {'/'.join(t.__name__ for t in types)}"
            )
    return errors


def validate_records(records: Sequence[dict]) -> List[str]:
    """Validate a whole campaign stream: per-record schema plus the
    cross-record invariants (strictly monotonic ``seq``, start first)."""
    errors: List[str] = []
    last_seq = -1
    for position, record in enumerate(records):
        for error in validate_record(record):
            errors.append(f"record {position}: {error}")
        seq = record.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                errors.append(
                    f"record {position}: seq {seq} not strictly greater than {last_seq}"
                )
            last_seq = max(last_seq, seq)
    if records and records[0].get("event") != "campaign_start":
        errors.append("record 0: campaign must open with campaign_start")
    return errors


def read_campaign_with_tail(path) -> tuple:
    """Parse a campaign JSONL file, tolerating a truncated final line.

    A process killed mid-``write`` leaves exactly one artifact: a
    partial last line. Returns ``(records, partial_tail)`` where
    ``partial_tail`` is the unparseable trailing fragment (``None`` for
    a clean file). Corruption anywhere *before* the final non-empty
    line is not a crash artifact and still raises ``ValueError``.
    """
    records: List[dict] = []
    lines: List[tuple] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if line:
                lines.append((number, line))
    for position, (number, line) in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            if position == len(lines) - 1:
                return records, line
            raise ValueError(
                f"{path}: corrupt record on line {number} "
                f"(not a truncated tail): {error}"
            ) from error
    return records, None


def read_campaign(path, strict: bool = False) -> List[dict]:
    """Parse a campaign JSONL file into record dicts.

    By default a truncated final line (the artifact of a mid-write
    crash) is dropped; pass ``strict=True`` to raise on it instead.
    """
    records, tail = read_campaign_with_tail(path)
    if tail is not None and strict:
        raise ValueError(f"{path}: truncated final record: {tail[:80]!r}")
    return records


class CampaignLog:
    """Append-only, key-sorted JSONL event bus with a monotonic ``seq``.

    ``path=None`` keeps the bus purely in process (subscribers still
    fire) — the live renderer without a log file. Records carry
    ``wall_ms`` (milliseconds since the log opened); every field that
    depends on wall time is listed in :data:`WALL_FIELDS` so
    deterministic digests can strip them.
    """

    def __init__(self, path=None, clock: Callable[[], float] = time.monotonic) -> None:
        self.path = str(path) if path is not None else None
        self._clock = clock
        self._started = clock()
        self._seq = 0
        self._subscribers: List[Callable[[dict], None]] = []
        self._handle: Optional[IO[str]] = None
        self.records: List[dict] = []
        if self.path is not None:
            self._handle = open(self.path, "w")

    def subscribe(self, fn: Callable[[dict], None]) -> None:
        """Receive every record as it is emitted (in process)."""
        self._subscribers.append(fn)

    def emit(self, event: str, **fields: Any) -> dict:
        """Append one record; returns the record dict."""
        if event not in EVENT_SCHEMA:
            raise ValueError(f"unknown campaign event {event!r}")
        record = dict(fields)
        record["event"] = event
        record["seq"] = self._seq
        record["wall_ms"] = round((self._clock() - self._started) * 1000.0, 3)
        self._seq += 1
        self.records.append(record)
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()  # live tailing sees events as they happen
        for fn in self._subscribers:
            fn(record)
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _strip_wall(value: Any) -> Any:
    if isinstance(value, dict):
        return {
            key: _strip_wall(item)
            for key, item in value.items()
            if key not in WALL_FIELDS
        }
    if isinstance(value, list):
        return [_strip_wall(item) for item in value]
    return value


def campaign_summary(records: Sequence[dict]) -> dict:
    """Deterministic digest of a campaign stream.

    Wall-time fields are stripped and ordering artifacts removed (runs
    are keyed by label, counters are order-free), so two identical
    seeded campaigns — whatever their worker interleaving — summarize
    byte-identically under ``json.dumps(..., sort_keys=True)``.
    """
    runs: Dict[str, dict] = {}
    counts: Dict[str, int] = {}
    stats: Optional[dict] = None
    total = 0
    for record in records:
        event = record.get("event")
        if event in META_EVENTS:
            # How this journal came to be (resume/abort), not what the
            # campaign computed — excluded so kill-then-resume digests
            # match the uninterrupted run byte-for-byte.
            continue
        counts[event] = counts.get(event, 0) + 1
        if event == "campaign_start":
            # One log may carry several batches; totals accumulate.
            total += record.get("total", 0)
            continue
        if event == "campaign_end":
            batch_stats = _strip_wall(record.get("stats", {}))
            if stats is None:
                stats = batch_stats
            else:  # several batches: numeric counters accumulate
                for key, value in batch_stats.items():
                    if isinstance(value, (int, float)) and isinstance(
                        stats.get(key), (int, float)
                    ):
                        stats[key] += value
                    else:
                        stats[key] = value
            continue
        label = record.get("run")
        if not label:
            continue
        run = runs.setdefault(
            label,
            {
                "state": "queued",
                "attempts": 0,
                "retries": 0,
                "heartbeats": 0,
                "cache_hit": False,
                "last_heartbeat": None,
            },
        )
        if event == "queued":
            run["index"] = record.get("index")
            if "variant" in record:
                run["variant"] = record["variant"]
            if "seed" in record:
                run["seed"] = record["seed"]
        elif event == "started":
            run["attempts"] += 1
            run["state"] = "running"
        elif event == "retry":
            run["retries"] += 1
            run["state"] = "retrying"
        elif event == "heartbeat":
            run["heartbeats"] += 1
            run["last_heartbeat"] = {
                "sim_now": record.get("sim_now"),
                "events": record.get("events"),
                "pending_events": record.get("pending_events"),
            }
        elif event == "cache_hit":
            run["cache_hit"] = True
            run["state"] = "cached"
        elif event == "finished":
            run["state"] = "finished"
            run["outcome"] = record.get("outcome")
            if "sketches" in record:
                run["sketches"] = record["sketches"]
        elif event == "failed":
            run["state"] = "failed"
            run["error_type"] = record.get("error_type")
        elif event == "quarantined":
            run["state"] = "quarantined"
    return {
        "schema": CAMPAIGN_SCHEMA_VERSION,
        "total": total,
        "event_counts": {name: counts[name] for name in sorted(counts)},
        "runs": {label: runs[label] for label in sorted(runs)},
        "stats": stats,
    }


class LiveCampaignView:
    """``--live``: repaint campaign progress in place on a TTY.

    Shows done/total with an EWMA-based ETA, the cache-hit rate, worker
    utilization (running / jobs), and one line per in-flight run with
    its latest heartbeat (sim time, events, events/s). Subscribes to a
    :class:`CampaignLog`; when the stream isn't a TTY the caller should
    keep the plain per-event stderr lines instead (the CLI does).
    """

    #: EWMA gain for the per-completion interval (like TCP's SRTT 1/8).
    GAIN = 0.25
    #: Minimum seconds between heartbeat-driven repaints.
    REPAINT_S = 0.1

    def __init__(
        self,
        stream,
        jobs: int = 1,
        clock: Callable[[], float] = time.monotonic,
        max_run_lines: int = 8,
    ) -> None:
        self.stream = stream
        self.jobs = max(jobs, 1)
        self._clock = clock
        self.max_run_lines = max_run_lines
        self.total = 0
        self.done = 0
        self.cache_hits = 0
        self.failures = 0
        self.retries = 0
        self._running: Dict[str, dict] = {}
        self._ewma_s: Optional[float] = None
        self._last_done_wall: Optional[float] = None
        self._last_paint = 0.0
        self._painted_lines = 0

    # ------------------------------------------------------------------
    def on_record(self, record: dict) -> None:
        """CampaignLog subscriber entry point."""
        event = record["event"]
        if event == "campaign_start":
            self.total = record.get("total", 0)
            self.jobs = max(record.get("jobs", self.jobs), 1)
            self._last_done_wall = self._clock()
        elif event in ("started", "retry"):
            self._running.setdefault(record["run"], {})
        elif event == "heartbeat":
            state = self._running.setdefault(record["run"], {})
            state["sim_now"] = record.get("sim_now")
            state["events"] = record.get("events")
            state["events_per_s"] = record.get("events_per_s")
            if event == "heartbeat" and self._clock() - self._last_paint < self.REPAINT_S:
                return
        if event in TERMINAL_EVENTS:
            self.done += 1
            self._running.pop(record["run"], None)
            if event == "cache_hit":
                self.cache_hits += 1
            elif event == "failed":
                self.failures += 1
            now = self._clock()
            if self._last_done_wall is not None:
                interval = now - self._last_done_wall
                if self._ewma_s is None:
                    self._ewma_s = interval
                else:
                    self._ewma_s += self.GAIN * (interval - self._ewma_s)
            self._last_done_wall = now
        elif event == "retry":
            self.retries += 1
        elif event == "campaign_abort":
            self._running.clear()
        # quarantined follows a terminal `failed` for the same run, so
        # it never bumps `done`; abort paints final like a clean end.
        self.paint(final=event in ("campaign_end", "campaign_abort"))

    # ------------------------------------------------------------------
    def eta_s(self) -> Optional[float]:
        """EWMA completion-interval ETA for the remaining runs."""
        if self._ewma_s is None or self.total == 0:
            return None
        return (self.total - self.done) * self._ewma_s

    def _lines(self) -> List[str]:
        utilization = min(len(self._running) / self.jobs, 1.0)
        hit_rate = self.cache_hits / self.done if self.done else 0.0
        eta = self.eta_s()
        eta_text = f"{eta:6.1f}s" if eta is not None else "   ?  "
        lines = [
            f"campaign [{self.done}/{self.total}] "
            f"eta {eta_text}  cache {hit_rate * 100:3.0f}%  "
            f"workers {len(self._running)}/{self.jobs} ({utilization * 100:3.0f}%)  "
            f"retries {self.retries}  failures {self.failures}"
        ]
        for label in sorted(self._running)[: self.max_run_lines]:
            state = self._running[label]
            if state.get("sim_now") is not None:
                rate = state.get("events_per_s") or 0.0
                lines.append(
                    f"  {label:<28} sim {state['sim_now'] / 1e6:9.2f} ms  "
                    f"{state.get('events', 0):>10,} ev  {rate / 1e3:7.1f}k ev/s"
                )
            else:
                lines.append(f"  {label:<28} starting…")
        hidden = len(self._running) - self.max_run_lines
        if hidden > 0:
            lines.append(f"  … and {hidden} more")
        return lines

    def paint(self, final: bool = False) -> None:
        self._last_paint = self._clock()
        # Move up over the previous block and repaint in place.
        if self._painted_lines:
            self.stream.write(f"\x1b[{self._painted_lines}F\x1b[J")
        lines = self._lines()
        self.stream.write("\n".join(lines) + "\n")
        self.stream.flush()
        self._painted_lines = 0 if final else len(lines)
