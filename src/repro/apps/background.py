"""Background cross traffic (§2.1: "subject to background traffic, the
bandwidth, latency, and loss rate on a path oscillate within a
comparatively small range").

An on/off source injects opaque packets between a host pair at a
configurable average load. Bursst lengths and gaps are exponentially
distributed (seeded), giving the within-TDN oscillation the paper
describes without changing any transport behaviour.
"""

from __future__ import annotations

from repro.net.node import Host
from repro.net.packet import Packet
from repro.sim.rng import SeededRandom
from repro.sim.simulator import Simulator
from repro.units import SEC, serialization_delay_ns


class BackgroundTraffic:
    """On/off constant-rate packet source between two hosts."""

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        rate_bps: float,
        rng: SeededRandom,
        packet_size: int = 1500,
        mean_burst_ns: int = 100_000,
        mean_gap_ns: int = 100_000,
        name: str = "background",
    ):
        if rate_bps <= 0:
            raise ValueError("background rate must be positive")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.mean_burst_ns = mean_burst_ns
        self.mean_gap_ns = mean_gap_ns
        self.rng = rng.fork(f"bg-{src.address}-{dst.address}")
        self.name = name
        self.packets_sent = 0
        self.bytes_sent = 0
        self._on = False
        self._burst_end_ns = 0
        self._running = False
        # Send interval while "on": packet time at twice the average
        # rate, so on/off duty of ~50% hits the average.
        self._interval_ns = max(
            serialization_delay_ns(packet_size, rate_bps * 2), 1
        )

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._begin_gap()

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _begin_burst(self) -> None:
        if not self._running:
            return
        self._on = True
        burst = max(int(self.rng.expovariate(1.0 / self.mean_burst_ns)), 1_000)
        self._burst_end_ns = self.sim.now + burst
        self._tick()

    def _begin_gap(self) -> None:
        if not self._running:
            return
        self._on = False
        gap = max(int(self.rng.expovariate(1.0 / self.mean_gap_ns)), 1_000)
        self.sim.schedule(gap, self._begin_burst)

    def _tick(self) -> None:
        if not self._running or not self._on:
            return
        if self.sim.now >= self._burst_end_ns:
            self._begin_gap()
            return
        packet = Packet(self.src.address, self.dst.address, self.packet_size, self.sim.now)
        self.src.send(packet)
        self.packets_sent += 1
        self.bytes_sent += self.packet_size
        self.sim.schedule(self._interval_ns, self._tick)

    def average_rate_bps(self, duration_ns: int) -> float:
        if duration_ns <= 0:
            return 0.0
        return self.bytes_sent * 8 * SEC / duration_ns
