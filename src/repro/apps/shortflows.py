"""Short-lived RPC-style flows and flow-completion-time measurement.

§5.1: "We focus exclusively on long-lived flows because short-lived
flows are unlikely to benefit from TDTCP. For example, RPC workloads
that last a few RTTs likely only exist during one TDN. [...] Overall,
we do not expect TDTCP to impact the completion time of short-lived
flows." This module makes that expectation measurable: a generator
starts fixed-size transfers at seeded intervals between host pairs and
records each flow's completion time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Type

from repro.net.node import Host
from repro.obs.sketch import QuantileSketch
from repro.rdcn.topology import TwoRackTestbed
from repro.sim.rng import SeededRandom
from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair


@dataclass
class ShortFlowRecord:
    """One short flow's outcome."""

    index: int
    start_ns: int
    size_bytes: int
    completed_ns: Optional[int] = None

    @property
    def completed(self) -> bool:
        return self.completed_ns is not None

    @property
    def fct_ns(self) -> Optional[int]:
        if self.completed_ns is None:
            return None
        return self.completed_ns - self.start_ns


@dataclass
class ShortFlowStats:
    records: List[ShortFlowRecord] = field(default_factory=list)
    # Streaming FCT aggregate (microseconds), fed on every completion:
    # the constant-memory view that survives when per-record lists stop
    # scaling (the ROADMAP's 10M-flow workload engine).
    fct_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    # Streaming counters: flows launched / delivered, and — after
    # finalize() — flows still open at the horizon. Flows the run cut
    # off used to simply vanish from the FCT view (``completed`` filters
    # them out), silently censoring the tail of the distribution.
    started: int = 0
    completed_count: int = 0
    truncated_flows: int = 0

    @property
    def completed(self) -> List[ShortFlowRecord]:
        return [r for r in self.records if r.completed]

    def completion_rate(self) -> float:
        """Delivered fraction of every flow *launched* — truncated
        flows stay in the denominator instead of disappearing."""
        if not self.started:
            return 0.0
        return self.completed_count / self.started

    def finalize(self) -> None:
        """Account for flows still open when the run ended."""
        self.truncated_flows = self.started - self.completed_count

    def fct_values_us(self) -> List[float]:
        return [r.fct_ns / 1000 for r in self.completed]


class ShortFlowGenerator:
    """Start ``flow_size_bytes`` transfers at fixed mean intervals
    between one host pair; each flow is a fresh connection that closes
    when its payload is acknowledged."""

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        rng: SeededRandom,
        connection_cls: Type[TCPConnection] = TCPConnection,
        tcp_config: Optional[TCPConfig] = None,
        flow_size_bytes: int = 15_000,
        mean_interarrival_ns: int = 200_000,
        cc_name: str = "cubic",
        **conn_kwargs,
    ):
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rng = rng.fork(f"shortflows-{src.address}")
        self.connection_cls = connection_cls
        self.tcp_config = tcp_config or TCPConfig()
        self.flow_size_bytes = flow_size_bytes
        self.mean_interarrival_ns = mean_interarrival_ns
        self.cc_name = cc_name
        self.conn_kwargs = conn_kwargs
        self.stats = ShortFlowStats()
        self._running = False
        self._next_port = 20_000

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        if not self._running:
            return
        gap = max(int(self.rng.expovariate(1.0 / self.mean_interarrival_ns)), 1_000)
        self.sim.schedule(gap, self._launch)

    def _launch(self) -> None:
        if not self._running:
            return
        record = ShortFlowRecord(
            index=len(self.stats.records),
            start_ns=self.sim.now,
            size_bytes=self.flow_size_bytes,
        )
        self.stats.records.append(record)
        self.stats.started += 1
        server_port = self._next_port
        self._next_port += 1
        client, server = create_connection_pair(
            self.sim, self.src, self.dst,
            cc_name=self.cc_name, config=self.tcp_config,
            connection_cls=self.connection_cls,
            server_port=server_port, connect=False,
            **self.conn_kwargs,
        )

        def on_established(c=client, r=record):
            c.write(r.size_bytes)
            c.close()

        def on_delivered(time_ns, total, r=record, c=client, s=server):
            if total >= r.size_bytes and r.completed_ns is None:
                r.completed_ns = time_ns
                self.stats.completed_count += 1
                self.stats.fct_sketch.add(r.fct_ns / 1000)
                # Free the demux slots so long runs don't accumulate.
                self.sim.schedule(1_000_000, self._cleanup, c, s)

        client.on_established = on_established
        server.on_delivered = on_delivered
        client.connect()
        self._schedule_next()

    def _cleanup(self, client: TCPConnection, server: TCPConnection) -> None:
        client.host.unregister_connection(client.flow_key)
        server.host.unregister_connection(server.flow_key)
        client.rto_timer.cancel()
        client.reorder_timer.cancel()
        client.tlp_timer.cancel()
        server.rto_timer.cancel()
        server.reorder_timer.cancel()
        server.tlp_timer.cancel()


def run_short_flow_study(
    testbed: TwoRackTestbed,
    connection_cls: Type[TCPConnection],
    duration_ns: int,
    flow_size_bytes: int = 15_000,
    mean_interarrival_ns: int = 200_000,
    host_index: int = 0,
    **conn_kwargs,
) -> ShortFlowStats:
    """Convenience: run a generator on a built (unstarted) testbed."""
    generator = ShortFlowGenerator(
        testbed.sim,
        testbed.host(0, host_index),
        testbed.host(1, host_index),
        testbed.rng,
        connection_cls=connection_cls,
        tcp_config=TCPConfig(mss=testbed.config.mss),
        flow_size_bytes=flow_size_bytes,
        mean_interarrival_ns=mean_interarrival_ns,
        **conn_kwargs,
    )
    generator.start()
    testbed.start()
    testbed.sim.run(until=duration_ns)
    generator.stop()
    generator.stats.finalize()
    return generator.stats
