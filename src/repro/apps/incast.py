"""Incast: synchronized many-to-one transfers.

The classic data center stress pattern (and the reason DCTCP exists):
one aggregator requests a block from N workers simultaneously; all
responses converge on the aggregator's access link and the shared VOQ.
Rounds proceed barrier-style — the next round starts only when every
worker's block has arrived — so one slow/timed-out flow stalls the
whole round, making goodput collapse visible as round-time inflation.

Not a figure in the paper; included because any credible RDCN transport
repo must show how its variants behave under incast, and because the
per-TDN state machinery must survive N-to-1 convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Type

from repro.rdcn.topology import TwoRackTestbed
from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair


@dataclass
class IncastRound:
    index: int
    start_ns: int
    completed_ns: Optional[int] = None

    @property
    def duration_ns(self) -> Optional[int]:
        if self.completed_ns is None:
            return None
        return self.completed_ns - self.start_ns


@dataclass
class IncastStats:
    rounds: List[IncastRound] = field(default_factory=list)

    @property
    def completed(self) -> List[IncastRound]:
        return [r for r in self.rounds if r.completed_ns is not None]

    def round_times_us(self) -> List[float]:
        return [r.duration_ns / 1000 for r in self.completed]


class IncastCoordinator:
    """N workers (rack 0) responding to one aggregator host (rack 1)."""

    def __init__(
        self,
        sim: Simulator,
        worker_hosts,
        aggregator_host,
        block_bytes: int = 30_000,
        think_time_ns: int = 10_000,
        connection_cls: Type[TCPConnection] = TCPConnection,
        tcp_config: Optional[TCPConfig] = None,
        **conn_kwargs,
    ):
        self.sim = sim
        self.block_bytes = block_bytes
        self.think_time_ns = think_time_ns
        self.stats = IncastStats()
        self._expected: int = 0
        self._received_this_round = 0
        self._running = False
        self.senders: List[TCPConnection] = []
        self.receivers: List[TCPConnection] = []
        for index, worker in enumerate(worker_hosts):
            client, server = create_connection_pair(
                sim, worker, aggregator_host,
                connection_cls=connection_cls,
                config=tcp_config or TCPConfig(),
                server_port=6000 + index,
                **conn_kwargs,
            )
            server.on_delivered = self._make_progress_cb(index)
            self.senders.append(client)
            self.receivers.append(server)
        self._delivered_at_round_start = [0] * len(self.senders)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        # Give handshakes a moment, then fire the first round.
        self.sim.schedule(200_000, self._begin_round)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _make_progress_cb(self, index: int):
        def on_delivered(_time_ns: int, total_bytes: int) -> None:
            target = self._delivered_at_round_start[index] + self.block_bytes
            if self._expected and total_bytes >= target:
                self._delivered_at_round_start[index] = target
                self._expected -= 1
                self._received_this_round += 1
                if self._expected == 0:
                    self._finish_round()

        return on_delivered

    def _begin_round(self) -> None:
        if not self._running:
            return
        round_ = IncastRound(index=len(self.stats.rounds), start_ns=self.sim.now)
        self.stats.rounds.append(round_)
        self._expected = len(self.senders)
        self._received_this_round = 0
        for sender in self.senders:
            sender.write(self.block_bytes)

    def _finish_round(self) -> None:
        round_ = self.stats.rounds[-1]
        round_.completed_ns = self.sim.now
        if self._running:
            self.sim.schedule(self.think_time_ns, self._begin_round)

    # ------------------------------------------------------------------
    def goodput_gbps(self) -> float:
        done = self.stats.completed
        if not done:
            return 0.0
        span = done[-1].completed_ns - done[0].start_ns
        bytes_moved = len(done) * len(self.senders) * self.block_bytes
        if span <= 0:
            return 0.0
        return bytes_moved * 8 / span


def run_incast(
    testbed: TwoRackTestbed,
    n_workers: int,
    duration_ns: int,
    block_bytes: int = 30_000,
    connection_cls: Type[TCPConnection] = TCPConnection,
    **conn_kwargs,
) -> IncastCoordinator:
    """Convenience: N workers in rack 0 incast to host 0 of rack 1."""
    workers = [testbed.host(0, i) for i in range(n_workers)]
    coordinator = IncastCoordinator(
        testbed.sim,
        workers,
        testbed.host(1, 0),
        block_bytes=block_bytes,
        tcp_config=TCPConfig(mss=testbed.config.mss),
        connection_cls=connection_cls,
        **conn_kwargs,
    )
    coordinator.start()
    testbed.start()
    testbed.sim.run(until=duration_ns)
    coordinator.stop()
    return coordinator
