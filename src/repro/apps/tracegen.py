"""Empirical flow-size workloads.

Data center studies (DCTCP, and most RDCN papers since) describe
traffic with two canonical flow-size distributions measured in
production — *web search* (Alizadeh et al. 2010) and *data mining*
(Greenberg et al. 2009). This module provides both as inverse-CDF
samplers plus a Poisson-arrival generator that drives the short-flow
machinery at a target offered load, for experiments beyond the paper's
long-lived-only workload.
"""

from __future__ import annotations

import bisect
import math
import warnings
from typing import Sequence, Tuple, Type

from repro.apps.shortflows import ShortFlowGenerator
from repro.net.node import Host
from repro.sim.rng import SeededRandom
from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.units import SEC

# (cumulative probability, flow size in bytes) — the widely used
# piecewise approximations of the published CDFs.
WEB_SEARCH_CDF: Tuple[Tuple[float, int], ...] = (
    (0.00, 6_000),
    (0.15, 13_000),
    (0.20, 19_000),
    (0.30, 33_000),
    (0.40, 53_000),
    (0.53, 133_000),
    (0.60, 667_000),
    (0.70, 1_333_000),
    (0.80, 4_000_000),
    (0.90, 8_000_000),
    (0.97, 20_000_000),
    (1.00, 30_000_000),
)

DATA_MINING_CDF: Tuple[Tuple[float, int], ...] = (
    (0.00, 100),
    (0.50, 300),
    (0.60, 1_000),
    (0.70, 2_000),
    (0.80, 10_000),
    (0.85, 100_000),
    (0.90, 1_000_000),
    (0.95, 10_000_000),
    (0.99, 100_000_000),
    (1.00, 1_000_000_000),
)


class EmpiricalFlowSizes:
    """Inverse-CDF sampler over a piecewise-linear size distribution."""

    def __init__(self, cdf: Sequence[Tuple[float, int]], rng: SeededRandom):
        if len(cdf) < 2 or cdf[0][0] != 0.0 or cdf[-1][0] != 1.0:
            raise ValueError("CDF must span probabilities 0.0 .. 1.0")
        probs = [p for p, _s in cdf]
        if probs != sorted(probs):
            raise ValueError("CDF probabilities must be non-decreasing")
        self._probs = probs
        self._sizes = [s for _p, s in cdf]
        self.rng = rng

    def sample(self) -> int:
        """One flow size, log-linearly interpolated within the bin."""
        u = self.rng.random()
        index = bisect.bisect_right(self._probs, u) - 1
        index = min(index, len(self._probs) - 2)
        p0, p1 = self._probs[index], self._probs[index + 1]
        s0, s1 = self._sizes[index], self._sizes[index + 1]
        if p1 == p0:
            return s1
        frac = (u - p0) / (p1 - p0)
        # Interpolate in log space: flow sizes span many decades.
        size = math.exp(math.log(s0) + frac * (math.log(s1) - math.log(s0)))
        return max(int(size), 1)

    def mean(self) -> float:
        """Exact mean flow size of the piecewise log-linear distribution.

        Within a bin, ``sample`` draws ``exp`` of a uniform variable over
        ``[ln s0, ln s1]``, whose expectation is the logarithmic mean
        ``(s1 - s0) / ln(s1 / s0)``. The overall mean is the
        probability-weighted sum over bins. Exact arithmetic here matters:
        the heavy data-mining tail (p99 -> p100 spans 100 MB - 1 GB) made
        the old Monte-Carlo estimate — and therefore the offered load —
        swing by tens of percent across seeds.
        """
        total = 0.0
        for i in range(len(self._probs) - 1):
            weight = self._probs[i + 1] - self._probs[i]
            if weight <= 0.0:
                continue
            s0, s1 = self._sizes[i], self._sizes[i + 1]
            if s0 == s1:
                bin_mean = float(s0)
            else:
                bin_mean = (s1 - s0) / math.log(s1 / s0)
            total += weight * bin_mean
        return total

    def mean_estimate(self, samples: int = 10_000) -> float:
        """Deprecated alias of :meth:`mean`.

        Historically a ``samples``-draw Monte-Carlo estimate; now the
        closed form (``samples`` is ignored).
        """
        warnings.warn(
            "EmpiricalFlowSizes.mean_estimate is deprecated; use the exact "
            "EmpiricalFlowSizes.mean()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.mean()


class EmpiricalWorkload(ShortFlowGenerator):
    """Poisson arrivals with empirically distributed flow sizes at a
    target offered load (fraction of ``capacity_bps``)."""

    def __init__(
        self,
        sim: Simulator,
        src: Host,
        dst: Host,
        rng: SeededRandom,
        cdf: Sequence[Tuple[float, int]],
        load: float,
        capacity_bps: float,
        connection_cls: Type[TCPConnection] = TCPConnection,
        tcp_config: TCPConfig = None,
        **conn_kwargs,
    ):
        if not (0.0 < load <= 1.0):
            raise ValueError("load must be in (0, 1]")
        self.sizes = EmpiricalFlowSizes(cdf, rng.fork("sizes"))
        mean_size = self.sizes.mean()
        arrival_rate = load * capacity_bps / 8.0 / mean_size  # flows/s
        # Round to nearest: truncation shortened every gap, biasing the
        # achieved load above the requested one.
        mean_interarrival_ns = max(int(round(SEC / arrival_rate)), 1)
        super().__init__(
            sim, src, dst, rng,
            connection_cls=connection_cls,
            tcp_config=tcp_config,
            flow_size_bytes=0,  # per-flow, sampled in _launch
            mean_interarrival_ns=mean_interarrival_ns,
            **conn_kwargs,
        )

    def _launch(self) -> None:
        self.flow_size_bytes = self.sizes.sample()
        super()._launch()
