"""Fabric-wide workload engine: empirical traffic at scale.

``repro.apps.tracegen`` drives one host pair; this module drives the
whole fabric. A :class:`WorkloadEngine` places Poisson arrivals with
empirical sizes (web-search / data-mining / custom CDF) across every
source -> destination ToR pair of a testbed — two-rack or Opera N-rack,
anything exposing ``hosts: Dict[rack, List[Host]]`` — under a pluggable
traffic matrix, or replays a CSV trace (``start_ns,src,dst,size_bytes``).

Completion accounting is streaming-first (:class:`CompletionStats`):
counters plus FCT and slowdown :class:`QuantileSketch` families, so
memory is independent of flow count. Per-flow records are opt-in behind
a reservoir-sampling cap (Vitter's Algorithm R) — a million-flow
campaign keeps at most ``record_cap`` of them, each an unbiased sample.

Slowdown is FCT divided by the flow's ideal transfer time at line rate
(``size * 8 / capacity_bps``, floored at 1 ns), the normalized FCT
metric of the traffic-generation literature; it is additionally binned
by flow size so the short-flow tail is not drowned by elephants.
"""

from __future__ import annotations

import csv
import re
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.apps.shortflows import ShortFlowRecord
from repro.apps.tracegen import EmpiricalFlowSizes
from repro.net.addressing import host_address
from repro.obs.sketch import QuantileSketch
from repro.obs.telemetry import Telemetry
from repro.sim.rng import SeededRandom
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import SEC

#: The pluggable traffic matrices (docs/workloads.md).
TRAFFIC_MATRICES = ("permutation", "all-to-all", "hotspot")

#: Flow-size classes for the binned slowdown sketches: boundaries are
#: the conventional short-RPC / medium / elephant split of the DCTCP
#: and data-mining CDFs. ``None`` = unbounded.
SIZE_BINS: Tuple[Tuple[str, Optional[int]], ...] = (
    ("small", 100_000),
    ("medium", 10_000_000),
    ("large", None),
)

#: Documented CSV trace schema, in column order.
TRACE_COLUMNS = ("start_ns", "src", "dst", "size_bytes")

#: Wall-clock keys of :meth:`CompletionStats.summary` — host-dependent,
#: so strip them before any determinism comparison (mirrors
#: ``repro.obs.campaign.WALL_FIELDS``).
WALL_SUMMARY_FIELDS = ("engine_wall_s", "engine_flows_per_sec")


def strip_wall_fields(summary: dict) -> dict:
    """A summary with the :data:`WALL_SUMMARY_FIELDS` removed — the
    byte-stable digest two identical runs must agree on."""
    return {k: v for k, v in summary.items() if k not in WALL_SUMMARY_FIELDS}

_ADDRESS_RE = re.compile(r"^r(\d+)h(\d+)$")


def size_bin(size_bytes: int) -> str:
    """The :data:`SIZE_BINS` label for one flow size."""
    for label, bound in SIZE_BINS:
        if bound is None or size_bytes <= bound:
            return label
    return SIZE_BINS[-1][0]


def average_fabric_rate_bps(config) -> float:
    """Time-averaged per-ToR fabric capacity of a testbed config — the
    denominator of the offered-load definition (nights count as dark).

    Understands :class:`repro.rdcn.config.RDCNConfig` (schedule-weighted
    mean of the TDN rates) and :class:`repro.rdcn.opera.OperaConfig`
    (duty-cycled circuit rate).
    """
    if hasattr(config, "schedule_pattern"):
        active = sum(
            config.day_ns * config.tdn_rate_bps(tdn) for tdn in config.schedule_pattern
        )
        return active / config.week_ns
    if hasattr(config, "link_rate_bps"):
        duty = config.slot_ns / (config.slot_ns + config.night_ns)
        return config.link_rate_bps * duty
    raise TypeError(f"no fabric rate known for config type {type(config).__name__}")


def pair_weights(
    n_racks: int,
    matrix: str,
    rng: SeededRandom,
    hotspot_fraction: float = 0.5,
) -> List[Tuple[Tuple[int, int], float]]:
    """Ordered (src_rack, dst_rack) pairs with arrival-probability
    weights summing to 1.

    * ``permutation``: rack ``i`` sends to rack ``(i + 1) % n`` only —
      each source ToR offers its full per-ToR load to one destination.
    * ``all-to-all``: every ordered pair equally.
    * ``hotspot``: all-to-all background, with ``hotspot_fraction`` of
      all arrivals redirected onto one seeded victim pair (skew).
    """
    if n_racks < 2:
        raise ValueError("need at least two racks for cross-rack traffic")
    if matrix not in TRAFFIC_MATRICES:
        raise ValueError(f"unknown matrix {matrix!r}; known: {TRAFFIC_MATRICES}")
    if matrix == "permutation":
        share = 1.0 / n_racks
        return [((i, (i + 1) % n_racks), share) for i in range(n_racks)]
    pairs = [(i, j) for i in range(n_racks) for j in range(n_racks) if i != j]
    uniform = 1.0 / len(pairs)
    if matrix == "all-to-all":
        return [(pair, uniform) for pair in pairs]
    if not (0.0 <= hotspot_fraction <= 1.0):
        raise ValueError("hotspot_fraction must be in [0, 1]")
    hot_rng = rng.fork("hotspot")
    hot = pairs[int(hot_rng.random() * len(pairs)) % len(pairs)]
    background = (1.0 - hotspot_fraction) * uniform
    return [
        (pair, background + (hotspot_fraction if pair == hot else 0.0))
        for pair in pairs
    ]


# ----------------------------------------------------------------------
# CSV trace replay
# ----------------------------------------------------------------------
@dataclass
class TraceFlow:
    """One row of a workload trace: a flow of ``size_bytes`` from host
    ``src`` to host ``dst`` starting at ``start_ns`` (addresses are the
    canonical ``r<rack>h<index>`` form)."""

    start_ns: int
    src: str
    dst: str
    size_bytes: int


def parse_host_address(address: str) -> Tuple[int, int]:
    """``"r0h3"`` -> ``(0, 3)``; raises ``ValueError`` on anything else."""
    match = _ADDRESS_RE.match(address)
    if match is None:
        raise ValueError(f"malformed host address {address!r} (want r<rack>h<index>)")
    return int(match.group(1)), int(match.group(2))


def _parse_trace_row(row: Sequence[str], line: int) -> TraceFlow:
    if len(row) != len(TRACE_COLUMNS):
        raise ValueError(
            f"line {line}: expected {len(TRACE_COLUMNS)} columns "
            f"{','.join(TRACE_COLUMNS)}, got {len(row)}"
        )
    try:
        start_ns = int(row[0])
        size_bytes = int(row[3])
    except ValueError:
        raise ValueError(f"line {line}: start_ns and size_bytes must be integers") from None
    if start_ns < 0:
        raise ValueError(f"line {line}: start_ns must be >= 0")
    if size_bytes < 1:
        raise ValueError(f"line {line}: size_bytes must be >= 1")
    src, dst = row[1].strip(), row[2].strip()
    for address in (src, dst):
        try:
            parse_host_address(address)
        except ValueError as error:
            raise ValueError(f"line {line}: {error}") from None
    if src == dst:
        raise ValueError(f"line {line}: src and dst must differ")
    return TraceFlow(start_ns=start_ns, src=src, dst=dst, size_bytes=size_bytes)


def load_trace(path, strict: bool = True) -> Tuple[List[TraceFlow], int]:
    """Parse a workload trace CSV.

    Schema: ``start_ns,src,dst,size_bytes`` — an optional literal header
    row, then one flow per row; addresses are ``r<rack>h<index>``.
    Returns ``(flows sorted by start time, skipped_row_count)``.

    ``strict=True`` raises ``ValueError`` (with the line number) on the
    first malformed row; ``strict=False`` skips malformed rows, counting
    them in the second return value.
    """
    flows: List[TraceFlow] = []
    skipped = 0
    with open(path, newline="") as handle:
        for line, row in enumerate(csv.reader(handle), start=1):
            if not row or (line == 1 and tuple(c.strip() for c in row) == TRACE_COLUMNS):
                continue
            try:
                flows.append(_parse_trace_row(row, line))
            except ValueError:
                if strict:
                    raise
                skipped += 1
    flows.sort(key=lambda f: (f.start_ns, f.src, f.dst, f.size_bytes))
    return flows, skipped


def write_trace(path, flows: Sequence[TraceFlow], header: bool = True) -> None:
    """Write flows in the documented CSV schema (``load_trace``'s exact
    inverse)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(TRACE_COLUMNS)
        for flow in flows:
            writer.writerow([flow.start_ns, flow.src, flow.dst, flow.size_bytes])


# ----------------------------------------------------------------------
# Streaming completion accounting
# ----------------------------------------------------------------------
class CompletionStats:
    """Constant-memory flow-completion accounting.

    Counters plus sketches; the optional ``record_cap``-sized reservoir
    (Algorithm R over its own RNG substream, so enabling it never
    perturbs the traffic) is the only per-flow storage. ``finalize()``
    books flows still open at the horizon as ``truncated_flows`` so the
    censored tail is explicit rather than silently missing.
    """

    def __init__(
        self,
        capacity_bps: float,
        record_cap: int = 0,
        rng: Optional[SeededRandom] = None,
    ):
        if record_cap < 0:
            raise ValueError("record_cap must be >= 0")
        self.capacity_bps = capacity_bps
        self.record_cap = record_cap
        self._rng = rng
        if record_cap > 0 and rng is None:
            raise ValueError("record_cap > 0 needs an rng for the reservoir")
        self.started = 0
        self.completed = 0
        self.truncated_flows = 0
        self.trace_rows_skipped = 0
        # Wall-clock run time, set by WorkloadEngine.finish(); feeds the
        # engine_flows_per_sec throughput metric of summary().
        self.wall_seconds: Optional[float] = None
        self.bytes_offered = 0
        self.bytes_completed = 0
        self.fct_sketch = QuantileSketch()
        self.slowdown_sketch = QuantileSketch()
        self.slowdown_by_bin: Dict[str, QuantileSketch] = {
            label: QuantileSketch() for label, _bound in SIZE_BINS
        }
        self.records: List[ShortFlowRecord] = []
        self._reservoir_seen = 0

    def ideal_fct_ns(self, size_bytes: int) -> int:
        """Transfer time at line rate — the slowdown denominator."""
        return max(int(size_bytes * 8 * SEC / self.capacity_bps), 1)

    def on_start(self, size_bytes: int) -> None:
        self.started += 1
        self.bytes_offered += size_bytes

    def on_complete(self, start_ns: int, size_bytes: int, completed_ns: int) -> float:
        """Book one delivered flow; returns its slowdown."""
        self.completed += 1
        self.bytes_completed += size_bytes
        fct_ns = completed_ns - start_ns
        slowdown = fct_ns / self.ideal_fct_ns(size_bytes)
        self.fct_sketch.add(fct_ns / 1000)
        self.slowdown_sketch.add(slowdown)
        self.slowdown_by_bin[size_bin(size_bytes)].add(slowdown)
        if self.record_cap > 0:
            self._reservoir_insert(
                ShortFlowRecord(
                    index=self.started - 1,
                    start_ns=start_ns,
                    size_bytes=size_bytes,
                    completed_ns=completed_ns,
                )
            )
        return slowdown

    def _reservoir_insert(self, record: ShortFlowRecord) -> None:
        self._reservoir_seen += 1
        if len(self.records) < self.record_cap:
            self.records.append(record)
            return
        slot = int(self._rng.random() * self._reservoir_seen)
        if slot < self.record_cap:
            self.records[slot] = record

    def finalize(self) -> None:
        self.truncated_flows = self.started - self.completed

    def completion_rate(self) -> float:
        """Delivered fraction of every flow launched (truncated flows
        stay in the denominator)."""
        if not self.started:
            return 0.0
        return self.completed / self.started

    def achieved_load(self, duration_ns: int, n_src_racks: int) -> float:
        """Delivered bytes as a fraction of the fabric capacity actually
        offered over the run (per source ToR, like the requested load)."""
        if duration_ns <= 0 or n_src_racks <= 0:
            return 0.0
        return (self.bytes_completed * 8.0 * SEC) / (
            duration_ns * self.capacity_bps * n_src_racks
        )

    def sketches(self) -> Dict[str, dict]:
        """Serialized sketch states, ready for ``ExperimentResult`` and
        exact cross-run merging."""
        out = {
            "fct_us": self.fct_sketch.to_dict(),
            "slowdown": self.slowdown_sketch.to_dict(),
        }
        for label, sketch in self.slowdown_by_bin.items():
            out[f"slowdown_{label}"] = sketch.to_dict()
        return out

    def summary(self, duration_ns: int, n_src_racks: int, offered_load: float) -> dict:
        """JSON-ready digest. Deterministic except for the
        :data:`WALL_SUMMARY_FIELDS` (present only when ``finish()``
        recorded a wall clock) — use :func:`strip_wall_fields` before
        byte-comparing two summaries."""
        out = {
            "started": self.started,
            "completed": self.completed,
            "truncated_flows": self.truncated_flows,
            "trace_rows_skipped": self.trace_rows_skipped,
            "completion_rate": self.completion_rate(),
            "bytes_offered": self.bytes_offered,
            "bytes_completed": self.bytes_completed,
            "offered_load": offered_load,
            "achieved_load": self.achieved_load(duration_ns, n_src_racks),
            "fct_us": self.fct_sketch.percentiles(),
            "slowdown": self.slowdown_sketch.percentiles(),
            "slowdown_by_bin": {
                label: sketch.percentiles()
                for label, sketch in self.slowdown_by_bin.items()
            },
        }
        if self.wall_seconds is not None:
            out["engine_wall_s"] = self.wall_seconds
            out["engine_flows_per_sec"] = (
                self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0
            )
        return out


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class WorkloadEngine:
    """Fabric-wide flow launcher over any testbed with rack-indexed
    hosts.

    Two modes, mutually exclusive:

    * empirical (``trace=None``): a single global Poisson arrival
      process at the aggregate rate ``load * n_racks * capacity_bps /
      (8 * mean_size)`` flows/s; each arrival draws a (src, dst) rack
      pair from the traffic matrix, uniform hosts within the racks, and
      a size from the CDF. Separate RNG substreams per decision keep the
      traffic invariant under observer changes (e.g. reservoir on/off).
    * trace replay (``trace=[TraceFlow, ...]``): every flow starts at
      its recorded offset from engine start, between its recorded hosts.

    Each flow is a fresh connection that writes its payload, closes, and
    is unregistered shortly after delivery — the same churn discipline
    as :class:`repro.apps.shortflows.ShortFlowGenerator`, which is what
    keeps host demux tables (and therefore memory) flat at millions of
    flows.
    """

    def __init__(
        self,
        testbed,
        rng: SeededRandom,
        capacity_bps: Optional[float] = None,
        load: float = 0.4,
        cdf=None,
        matrix: str = "permutation",
        hotspot_fraction: float = 0.5,
        trace: Optional[Sequence[TraceFlow]] = None,
        connection_cls: Type[TCPConnection] = TCPConnection,
        cc_name: str = "cubic",
        tcp_config: Optional[TCPConfig] = None,
        record_cap: int = 0,
        max_flows: Optional[int] = None,
        **conn_kwargs,
    ):
        if not (0.0 < load <= 1.0):
            raise ValueError("load must be in (0, 1]")
        self.testbed = testbed
        self.sim = testbed.sim
        self.rng = rng.fork("engine")
        self.capacity_bps = (
            capacity_bps
            if capacity_bps is not None
            else average_fabric_rate_bps(testbed.config)
        )
        self.load = load
        self.matrix = matrix
        self.connection_cls = connection_cls
        self.cc_name = cc_name
        self.tcp_config = tcp_config or TCPConfig(mss=testbed.config.mss)
        self.conn_kwargs = conn_kwargs
        self.max_flows = max_flows
        self.n_racks = len(testbed.hosts)
        self.stats = CompletionStats(
            self.capacity_bps,
            record_cap=record_cap,
            rng=self.rng.fork("reservoir") if record_cap > 0 else None,
        )
        self.trace = list(trace) if trace is not None else None
        if self.trace is None:
            if cdf is None:
                from repro.apps.tracegen import WEB_SEARCH_CDF

                cdf = WEB_SEARCH_CDF
            self.sizes = EmpiricalFlowSizes(cdf, self.rng.fork("sizes"))
            weighted = pair_weights(
                self.n_racks, matrix, self.rng, hotspot_fraction=hotspot_fraction
            )
            self._pairs = [pair for pair, _w in weighted]
            # Cumulative weights for one-uniform-draw pair selection.
            self._cum_weights: List[float] = []
            acc = 0.0
            for _pair, weight in weighted:
                acc += weight
                self._cum_weights.append(acc)
            self._cum_weights[-1] = 1.0  # guard against float drift
            aggregate_rate = (  # flows/s across the whole fabric
                load * self.n_racks * self.capacity_bps / 8.0 / self.sizes.mean()
            )
            self.mean_interarrival_ns = max(int(round(SEC / aggregate_rate)), 1)
            self._arrival_rng = self.rng.fork("arrivals")
            self._pair_rng = self.rng.fork("pairs")
            self._placement_rng = self.rng.fork("placement")
        telemetry = Telemetry.of(self.sim)
        self._tp_start = telemetry.tracepoint("workload:flow_start")
        self._tp_complete = telemetry.tracepoint("workload:flow_complete")
        self._tp_report = telemetry.tracepoint("workload:load_report")
        self._running = False
        self._start_ns = 0
        self._wall_start: Optional[float] = None
        self._next_port = 30_000
        # Tiered fidelity (repro.sim.fastpath): set by the runner on
        # tiered runs; every launched pair is registered so arrivals
        # interrupt fluid spans and steady groups can re-enter them.
        self.fastpath = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin launching flows (idempotent)."""
        if self._running:
            return
        self._running = True
        self._start_ns = self.sim.now
        self._wall_start = perf_counter()
        if self.trace is not None:
            for flow in self.trace:
                if self.max_flows is not None and self.stats.started >= self.max_flows:
                    break
                src_rack, src_index = parse_host_address(flow.src)
                dst_rack, dst_index = parse_host_address(flow.dst)
                self._book_and_schedule(
                    flow.start_ns,
                    self.testbed.host(src_rack, src_index),
                    self.testbed.host(dst_rack, dst_index),
                    flow.size_bytes,
                )
        else:
            self._schedule_next_arrival()

    def stop(self) -> None:
        self._running = False

    def finish(self) -> CompletionStats:
        """Close the books at the horizon: stop arrivals, count open
        flows as truncated, emit the load report tracepoint."""
        self.stop()
        if self._wall_start is not None:
            self.stats.wall_seconds = perf_counter() - self._wall_start
        self.stats.finalize()
        if self._tp_report.enabled:
            duration = max(self.sim.now - self._start_ns, 1)
            self._tp_report.emit(
                self.sim.now,
                offered_load=self.load,
                achieved_load=self.stats.achieved_load(duration, self.n_racks),
                started=self.stats.started,
                completed=self.stats.completed,
                truncated=self.stats.truncated_flows,
            )
        return self.stats

    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        if not self._running:
            return
        if self.max_flows is not None and self.stats.started >= self.max_flows:
            return
        gap = max(
            int(self._arrival_rng.expovariate(1.0 / self.mean_interarrival_ns)), 1
        )
        self.sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        if not self._running:
            return
        u = self._pair_rng.random()
        index = 0
        while index < len(self._cum_weights) - 1 and u > self._cum_weights[index]:
            index += 1
        src_rack, dst_rack = self._pairs[index]
        src = self.testbed.hosts[src_rack]
        dst = self.testbed.hosts[dst_rack]
        src_host = src[self._placement_rng.randint(0, len(src) - 1)]
        dst_host = dst[self._placement_rng.randint(0, len(dst) - 1)]
        size = self.sizes.sample()
        self._book_and_schedule(0, src_host, dst_host, size)
        self._schedule_next_arrival()

    def _book_and_schedule(self, delay_ns: int, src, dst, size_bytes: int) -> None:
        self.stats.on_start(size_bytes)
        if delay_ns <= 0:
            self._launch(src, dst, size_bytes)
        else:
            self.sim.schedule(delay_ns, self._launch, src, dst, size_bytes)

    def _launch(self, src, dst, size_bytes: int) -> None:
        server_port = self._next_port
        self._next_port += 1
        client, server = create_connection_pair(
            self.sim, src, dst,
            cc_name=self.cc_name, config=self.tcp_config,
            connection_cls=self.connection_cls,
            server_port=server_port, connect=False,
            **self.conn_kwargs,
        )
        start_ns = self.sim.now
        if self._tp_start.enabled:
            self._tp_start.emit(
                start_ns, src=src.address, dst=dst.address, size_bytes=size_bytes
            )

        def on_established(c=client):
            c.write(size_bytes)
            c.close()

        def on_delivered(time_ns, total, c=client, s=server):
            if total >= size_bytes and not getattr(s, "_engine_done", False):
                s._engine_done = True
                slowdown = self.stats.on_complete(start_ns, size_bytes, time_ns)
                if self._tp_complete.enabled:
                    self._tp_complete.emit(
                        time_ns,
                        src=c.host.address, dst=s.host.address,
                        size_bytes=size_bytes,
                        fct_ns=time_ns - start_ns,
                        slowdown=slowdown,
                    )
                # Free the demux slots so campaigns don't accumulate.
                self.sim.schedule(1_000_000, self._cleanup, c, s)

        client.on_established = on_established
        server.on_delivered = on_delivered
        if self.fastpath is not None:
            # Register before the handshake: the arrival interrupts any
            # live fluid span on this direction, and the pair becomes a
            # candidate for the group's next span.
            self.fastpath.register_flow(client, server)
        client.connect()

    def _cleanup(self, client: TCPConnection, server: TCPConnection) -> None:
        if self.fastpath is not None:
            self.fastpath.unregister_flow(client)
        for conn in (client, server):
            conn.host.unregister_connection(conn.flow_key)
            conn.rto_timer.cancel()
            conn.reorder_timer.cancel()
            conn.tlp_timer.cancel()


def permutation_pairs_example(n_racks: int) -> List[Tuple[str, str]]:
    """Address-level view of the permutation matrix (docs/tests)."""
    return [
        (host_address(i, 0), host_address((i + 1) % n_racks, 0))
        for i in range(n_racks)
    ]
