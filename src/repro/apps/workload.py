"""Experiment workload: N parallel long-lived cross-rack flows (§5.1).

Host *i* in rack 0 sends bulk data to host *i* in rack 1; all flows
start together (with an optional tiny jitter so event ordering is not
pathological) and run for the whole experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.apps.bulk import BulkReceiver, BulkSender
from repro.rdcn.topology import TwoRackTestbed

# A flow factory returns (sender_endpoint, receiver_endpoint) wired
# between the two hosts; endpoints must expose the bulk/delivery API.
FlowFactory = Callable[[TwoRackTestbed, object, object, int], Tuple[object, object]]


@dataclass
class Flow:
    """One cross-rack flow and its application endpoints."""

    index: int
    sender: object
    receiver: object
    app_sender: BulkSender
    app_receiver: BulkReceiver

    @property
    def delivered_bytes(self) -> int:
        return self.app_receiver.delivered_bytes


@dataclass
class Workload:
    """All flows of one experiment run."""

    flows: List[Flow] = field(default_factory=list)

    @property
    def total_delivered_bytes(self) -> int:
        return sum(flow.delivered_bytes for flow in self.flows)

    def sequence_samples(self) -> List[List[Tuple[int, int]]]:
        return [flow.app_receiver.samples for flow in self.flows]


def build_workload(
    testbed: TwoRackTestbed,
    flow_factory: FlowFactory,
    n_flows: Optional[int] = None,
    trace_sequence: bool = True,
) -> Workload:
    """Create ``n_flows`` flows, host i (rack 0) -> host i (rack 1).

    All flows start at the same time, as in §5.1 ("all flows are
    configured to start at the same time").
    """
    n_flows = n_flows if n_flows is not None else testbed.config.n_hosts_per_rack
    if n_flows > testbed.config.n_hosts_per_rack:
        raise ValueError(
            f"{n_flows} flows need {n_flows} hosts per rack, "
            f"only {testbed.config.n_hosts_per_rack} configured"
        )
    workload = Workload()
    for index in range(n_flows):
        src = testbed.host(0, index)
        dst = testbed.host(1, index)
        sender, receiver = flow_factory(testbed, src, dst, index)
        app_receiver = BulkReceiver(receiver, trace=trace_sequence)
        app_sender = BulkSender(sender)
        workload.flows.append(Flow(index, sender, receiver, app_sender, app_receiver))
    return workload
