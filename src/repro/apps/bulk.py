"""Bulk-transfer applications (the paper's flowgrind workload).

A :class:`BulkSender` pours bytes into a connection as soon as it is
established — either a fixed transfer size or an endless stream for
long-lived flows. A :class:`BulkReceiver` counts delivered bytes and
exposes the receiver-side sequence trace the figures plot.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple


class BulkSender:
    """Drives a sending endpoint (TCPConnection or MPTCPConnection)."""

    def __init__(self, connection, total_bytes: Optional[int] = None):
        self.connection = connection
        self.total_bytes = total_bytes
        self.started = False
        # TCPConnection exposes on_established; MPTCPConnection
        # establishes subflows independently, so we start eagerly and
        # let the connection buffer the backlog.
        if hasattr(connection, "on_established") and connection.on_established is None:
            connection.on_established = self.start
        else:
            self.start()

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        if self.total_bytes is None:
            self.connection.start_bulk()
        else:
            self.connection.write(self.total_bytes)

    def finish(self) -> None:
        """Stop an endless stream and close cleanly."""
        self.connection.send_buffer.unlimited = False
        if hasattr(self.connection, "close"):
            self.connection.close()


class BulkReceiver:
    """Counts delivered bytes; optionally records the sequence trace."""

    def __init__(self, connection, trace: bool = False):
        self.connection = connection
        self.trace_enabled = trace
        self.samples: List[Tuple[int, int]] = []  # (time_ns, rcv_nxt)
        self.delivered_bytes = 0
        self._chain: Optional[Callable[[int, int], None]] = connection.on_delivered
        connection.on_delivered = self._on_delivered

    def _on_delivered(self, time_ns: int, rcv_nxt: int) -> None:
        self.delivered_bytes = rcv_nxt
        if self.trace_enabled:
            self.samples.append((time_ns, rcv_nxt))
        if self._chain is not None:
            self._chain(time_ns, rcv_nxt)
