"""Workload applications: bulk flows (flowgrind-like), short RPC
flows, empirical flow-size mixes, incast rounds, background cross
traffic, and the fabric-wide workload engine."""

from repro.apps.bulk import BulkReceiver, BulkSender
from repro.apps.engine import (
    CompletionStats,
    TraceFlow,
    WorkloadEngine,
    load_trace,
    write_trace,
)
from repro.apps.workload import Flow, Workload
from repro.apps.background import BackgroundTraffic
from repro.apps.incast import IncastCoordinator, IncastStats, run_incast
from repro.apps.shortflows import ShortFlowGenerator, ShortFlowStats
from repro.apps.tracegen import (
    DATA_MINING_CDF,
    EmpiricalFlowSizes,
    EmpiricalWorkload,
    WEB_SEARCH_CDF,
)

__all__ = [
    "BulkSender",
    "BulkReceiver",
    "Flow",
    "Workload",
    "BackgroundTraffic",
    "IncastCoordinator",
    "IncastStats",
    "run_incast",
    "ShortFlowGenerator",
    "ShortFlowStats",
    "EmpiricalFlowSizes",
    "EmpiricalWorkload",
    "WEB_SEARCH_CDF",
    "DATA_MINING_CDF",
    "WorkloadEngine",
    "CompletionStats",
    "TraceFlow",
    "load_trace",
    "write_trace",
]
