"""Point-to-point links.

A :class:`Link` is unidirectional: it serializes packets one at a time at
``rate_bps``, then delivers them ``prop_delay_ns`` later to a handler.
An optional bounded FIFO absorbs bursts; when it overflows, packets are
dropped (and flagged, so loss accounting sees ground truth).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.net.packet import Packet
from repro.sim.simulator import Simulator
from repro.units import serialization_delay_ns


class Link:
    """Unidirectional serializing link with an internal FIFO.

    ``deliver`` is called with each packet after serialization plus
    propagation. ``queue_capacity`` of None means unbounded (used for
    host access links where the sender is already window-limited).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        prop_delay_ns: int,
        deliver: Callable[[Packet], None],
        queue_capacity: Optional[int] = None,
        name: str = "link",
    ):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if prop_delay_ns < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.deliver = deliver
        self.queue_capacity = queue_capacity
        self.name = name
        self._fifo: deque[Packet] = deque()
        self._busy = False
        self.tx_packets = 0
        self.tx_bytes = 0
        self.drops = 0
        self.queued_bytes = 0

    def __len__(self) -> int:
        return len(self._fifo)

    def send(self, packet: Packet) -> bool:
        """Enqueue a packet for transmission. Returns False on drop."""
        if self.queue_capacity is not None and len(self._fifo) >= self.queue_capacity:
            packet.dropped = True
            self.drops += 1
            return False
        self._fifo.append(packet)
        self.queued_bytes += packet.size
        if not self._busy:
            self._start_next()
        return True

    def backlog_ns(self) -> int:
        """Drain time of the bytes currently waiting on this link —
        what anything sharing the interface must sit behind."""
        return serialization_delay_ns(self.queued_bytes, self.rate_bps)

    def _start_next(self) -> None:
        if not self._fifo:
            self._busy = False
            return
        self._busy = True
        packet = self._fifo.popleft()
        self.queued_bytes -= packet.size
        tx_delay = serialization_delay_ns(packet.size, self.rate_bps)
        self.tx_packets += 1
        self.tx_bytes += packet.size
        self.sim.schedule(tx_delay, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        self.sim.schedule(self.prop_delay_ns, self.deliver, packet)
        self._start_next()
