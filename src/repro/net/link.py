"""Point-to-point links.

A :class:`Link` is unidirectional: it serializes packets one at a time at
``rate_bps``, then delivers them ``prop_delay_ns`` later to a handler.
An optional bounded FIFO absorbs bursts; when it overflows, packets are
dropped (and flagged, so loss accounting sees ground truth).

Scheduling uses the event core's pooled primitives instead of fresh
allocations into the global heap (see :mod:`repro.sim.events`):

* serialization (``_tx_done``) events go through the event free-list
  pool (``EventQueue.push_pooled``) — the link serializes one packet
  at a time, so there is never more than one pending and a channel
  deque would always be empty;
* arrivals ride the ``prop`` :class:`~repro.sim.events.Channel` — the
  propagation pipe. Departures happen at monotonically increasing
  times and the propagation delay is a per-link constant, so arrivals
  are FIFO: every packet in flight on the wire waits in the channel's
  local deque, and only the next arrival occupies a global heap slot.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.net.packet import Packet
from repro.sim.simulator import Simulator
from repro.units import serialization_delay_ns


class Link:
    """Unidirectional serializing link with an internal FIFO.

    ``deliver`` is called with each packet after serialization plus
    propagation. ``queue_capacity`` of None means unbounded (used for
    host access links where the sender is already window-limited).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        prop_delay_ns: int,
        deliver: Callable[[Packet], None],
        queue_capacity: Optional[int] = None,
        name: str = "link",
    ):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if prop_delay_ns < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.deliver = deliver
        self.queue_capacity = queue_capacity
        self.name = name
        self._fifo: deque[Packet] = deque()
        self._busy = False
        self.tx_packets = 0
        self.tx_bytes = 0
        self.drops = 0
        self.queued_bytes = 0
        # Fault-injection gate (repro.faults link_flap): while down, new
        # sends are refused and packets finishing serialization die on
        # the wire instead of being delivered.
        self.down = False
        self.fault_drops = 0
        # Per-size serialization delay memo: packet sizes in a run come
        # from a handful of fixed values (MSS + header combinations), so
        # the float division/round is paid once per distinct size.
        self._tx_delay_cache: dict = {}
        self._prop_channel = sim.channel(f"{name}:prop")

    def __len__(self) -> int:
        return len(self._fifo)

    def send(self, packet: Packet) -> bool:
        """Enqueue a packet for transmission. Returns False on drop."""
        if self.down:
            packet.dropped = True
            self.fault_drops += 1
            return False
        fifo = self._fifo
        if self.queue_capacity is not None and len(fifo) >= self.queue_capacity:
            packet.dropped = True
            self.drops += 1
            return False
        if self._busy:
            fifo.append(packet)
            self.queued_bytes += packet.size
            return True
        # Idle link: start serializing immediately, skipping the FIFO
        # append/popleft round-trip (queued_bytes nets to the same value
        # either way, and nothing observes the transient). _start_next
        # stays as the reference for the busy path.
        self._busy = True
        size = packet.size
        tx_delay = self._tx_delay_cache.get(size)
        if tx_delay is None:
            tx_delay = serialization_delay_ns(size, self.rate_bps)
            self._tx_delay_cache[size] = tx_delay
        self.tx_packets += 1
        self.tx_bytes += size
        sim = self.sim
        sim._queue.push_pooled(sim.now + tx_delay, self._tx_done, (packet,))
        return True

    def backlog_ns(self) -> int:
        """Drain time of the bytes currently waiting on this link —
        what anything sharing the interface must sit behind."""
        return serialization_delay_ns(self.queued_bytes, self.rate_bps)

    def _start_next(self) -> None:
        if not self._fifo:
            self._busy = False
            return
        self._busy = True
        packet = self._fifo.popleft()
        size = packet.size
        self.queued_bytes -= size
        tx_delay = self._tx_delay_cache.get(size)
        if tx_delay is None:
            tx_delay = serialization_delay_ns(size, self.rate_bps)
            self._tx_delay_cache[size] = tx_delay
        self.tx_packets += 1
        self.tx_bytes += size
        # Links schedule two events per forwarded packet — the busiest
        # schedule sites in the whole simulator. Serialization timers
        # are pooled one-shots (never more than one pending per link).
        sim = self.sim
        sim._queue.push_pooled(sim.now + tx_delay, self._tx_done, (packet,))

    def _tx_done(self, packet: Packet) -> None:
        if self.down:
            # The wire died mid-flight: the packet is lost, but keep
            # draining the FIFO so the link recovers cleanly on revival.
            packet.dropped = True
            self.fault_drops += 1
            if self._fifo:
                self._start_next()
            else:
                self._busy = False
            return
        self._prop_channel.push(
            self.sim.now + self.prop_delay_ns, self.deliver, (packet,)
        )
        # _start_next's empty-FIFO early-out inlined: most _tx_done
        # calls find nothing else queued.
        if self._fifo:
            self._start_next()
        else:
            self._busy = False
