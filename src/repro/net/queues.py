"""Queues: drop-tail with runtime-resizable capacity, ECN marking, and
shared-memory buffer pools.

The ToR virtual output queue (VOQ) in the paper is a 16-packet drop-tail
queue; ``retcpdyn`` resizes it to 50 packets ahead of the circuit day.
DCTCP needs CE marking above a threshold K. Both behaviours live here so
the fabric code stays small.

Real switch ASICs do not carve a fixed buffer per queue: the VOQs of one
ToR draw from one shared memory, with an admission policy deciding when
a queue may still grow (see "Analyzing DCTCP and Cubic Buffer Sharing
under Diverse Router Configurations", PAPERS.md).
:class:`SharedBufferPool` models that shared memory with three pluggable
admission policies:

* ``static`` — per-queue carving: each queue gets a fixed reservation
  (the pre-pool behaviour; fabrics keep building plain
  :class:`DropTailQueue` objects for this policy so traces stay
  byte-identical).
* ``complete-sharing`` — any queue may use any free cell; a packet is
  only dropped when the whole pool is full.
* ``dynamic-threshold`` — Choudhury–Hahne dynamic thresholds: a queue
  may enqueue only while its own occupancy is below
  ``alpha × (total − used)``, so a lone hot queue can borrow most of
  the pool while competing queues converge to fair shares.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Tuple

from repro.net.packet import Packet

#: The admission policies a shared ToR buffer supports, in the order
#: they appear in config schemas and sweep grids.
BUFFER_POLICIES = ("static", "complete-sharing", "dynamic-threshold")


class DropTailQueue:
    """A bounded FIFO in packets with runtime-resizable capacity.

    Resizing smaller does not evict already-queued packets (matching how
    switch buffer carving behaves); it only affects future enqueues.

    Observation points: ``on_length_change`` is a single replaceable
    observer (legacy hook); :meth:`subscribe_length` and
    :meth:`subscribe_drop` attach any number of listeners — the
    ``queue:occupancy`` / ``queue:drop`` tracepoints hang off these (see
    :meth:`repro.obs.telemetry.Telemetry.instrument_queue`).
    """

    # Class-level gate: subclasses that implement :meth:`_mark` set this
    # True so the base push() skips a no-op method call per enqueue.
    _marks = False

    # Class-level gate: pool-backed subclasses set this True so inlined
    # dequeue sites (the fabric drain) know to release the pool cell
    # without paying a getattr on the plain-queue fast path.
    _pooled = False

    # Slots: a two-rack testbed carries one VOQ per (ToR, remote rack)
    # pair plus per-host access queues, and sweep/executor runs build
    # thousands of testbeds — keeping these off the instance-dict path
    # also makes every attribute read in the inlined fabric drain a
    # slot load.
    __slots__ = (
        "capacity", "name", "_fifo", "drops", "enqueued", "max_occupancy",
        "on_length_change", "_length_listeners", "_drop_listeners",
        "_pre_squeeze_capacity", "_squeeze_capacity",
    )

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._fifo: deque[Packet] = deque()
        self.drops = 0
        self.enqueued = 0
        self.max_occupancy = 0
        # Optional observer called as fn(length) after every length change.
        self.on_length_change: Optional[Callable[[int], None]] = None
        self._length_listeners: List[Callable[[int], None]] = []
        self._drop_listeners: List[Callable[[Packet], None]] = []
        self._pre_squeeze_capacity: Optional[int] = None
        self._squeeze_capacity: Optional[int] = None

    def __len__(self) -> int:
        return len(self._fifo)

    def subscribe_length(self, fn: Callable[[int], None]) -> None:
        """Add a listener called as ``fn(length)`` after every change."""
        self._length_listeners.append(fn)

    def subscribe_drop(self, fn: Callable[[Packet], None]) -> None:
        """Add a listener called as ``fn(packet)`` on every tail drop."""
        self._drop_listeners.append(fn)

    def _notify_length(self) -> None:
        # Zero-listener fast path: most simulations attach no occupancy
        # observers, so the per-enqueue/per-pop cost must stay at one
        # branch, not a len() plus an empty-loop setup.
        if self.on_length_change is None and not self._length_listeners:
            return
        length = len(self._fifo)
        if self.on_length_change is not None:
            self.on_length_change(length)
        for fn in self._length_listeners:
            fn(length)

    def resize(self, capacity: int) -> None:
        """Change capacity at runtime (used by the reTCP-dyn controller).

        Clamp-composes with an active :meth:`squeeze`: the resize
        becomes the value :meth:`unsqueeze` will restore, but while the
        squeeze is in force the effective capacity stays at
        ``min(squeeze, resize)`` — a fault-injected squeeze is never
        silently overridden by the buffer controller (and the later
        unsqueeze restores the *controller's* capacity, not the stale
        pre-squeeze one).
        """
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        if self._squeeze_capacity is not None:
            self._pre_squeeze_capacity = capacity
            self.capacity = min(self._squeeze_capacity, capacity)
        else:
            self.capacity = capacity

    def squeeze(self, capacity: int) -> None:
        """Fault-injection capacity squeeze: clamps the capacity to at
        most ``capacity`` and remembers the pre-squeeze value so
        :meth:`unsqueeze` can restore it. Re-squeezing keeps the
        original saved value; a :meth:`resize` while squeezed updates
        the saved value instead of the live capacity."""
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        if self._pre_squeeze_capacity is None:
            self._pre_squeeze_capacity = self.capacity
        self._squeeze_capacity = capacity
        self.capacity = min(capacity, self._pre_squeeze_capacity)

    def unsqueeze(self) -> None:
        """Restore the capacity saved by :meth:`squeeze` — including
        any :meth:`resize` issued while the squeeze was in force (no-op
        if not squeezed)."""
        if self._pre_squeeze_capacity is not None:
            self.capacity = self._pre_squeeze_capacity
            self._pre_squeeze_capacity = None
            self._squeeze_capacity = None

    def push(self, packet: Packet, now: int) -> bool:
        """Enqueue; returns False (and flags the packet) on overflow."""
        if len(self._fifo) >= self.capacity:
            packet.dropped = True
            self.drops += 1
            for fn in self._drop_listeners:
                fn(packet)
            return False
        packet.enqueued_ns = now
        if self._marks:
            self._mark(packet)
        fifo = self._fifo
        fifo.append(packet)
        self.enqueued += 1
        length = len(fifo)
        if length > self.max_occupancy:
            self.max_occupancy = length
        # _notify_length inlined (kept as the reference dispatch): the
        # occupancy already computed above is reused for the observers.
        on_change = self.on_length_change
        listeners = self._length_listeners
        if on_change is not None or listeners:
            if on_change is not None:
                on_change(length)
            for fn in listeners:
                fn(length)
        return True

    def pop(self) -> Optional[Packet]:
        fifo = self._fifo
        if not fifo:
            return None
        packet = fifo.popleft()
        on_change = self.on_length_change
        listeners = self._length_listeners
        if on_change is not None or listeners:
            length = len(fifo)
            if on_change is not None:
                on_change(length)
            for fn in listeners:
                fn(length)
        return packet

    def peek(self) -> Optional[Packet]:
        return self._fifo[0] if self._fifo else None

    def _mark(self, packet: Packet) -> None:
        """Hook for subclasses (ECN). Called before enqueue."""


class ECNMarkingQueue(DropTailQueue):
    """Drop-tail queue that CE-marks ECN-capable packets when the
    instantaneous occupancy is at or above threshold K (DCTCP-style)."""

    _marks = True

    __slots__ = ("mark_threshold", "marks")

    def __init__(self, capacity: int, mark_threshold: int, name: str = "ecn-queue"):
        super().__init__(capacity, name)
        if mark_threshold <= 0:
            raise ValueError("mark threshold must be positive")
        self.mark_threshold = mark_threshold
        self.marks = 0

    def _mark(self, packet: Packet) -> None:
        if packet.ecn_capable and len(self._fifo) >= self.mark_threshold:
            packet.ce = True
            self.marks += 1


class SharedBufferPool:
    """One ToR's shared packet memory, drawn from by pool-backed VOQs.

    The pool counts cells (packets), mirroring how the fabric's VOQ
    capacities are expressed. Queues register at construction
    (:class:`PooledDropTailQueue` does this itself); every accepted
    enqueue acquires one cell, every dequeue releases it. Admission is
    decided by :meth:`admits` per the configured policy; a refusal is a
    *pool rejection* (counted separately from per-queue drop-tail
    overflows, and surfaced through its own listener so the
    ``pool:reject`` tracepoint can hang off it).

    Like :meth:`DropTailQueue.resize`, shrinking the pool never evicts:
    ``used`` may temporarily exceed ``total`` after a shrink, during
    which every admission is refused until the backlog drains.
    """

    __slots__ = (
        "total", "policy", "alpha", "name", "used", "peak_used",
        "rejections", "queues", "_occupancy_listeners", "_reject_listeners",
    )

    def __init__(
        self,
        total: int,
        policy: str = "dynamic-threshold",
        alpha: float = 1.0,
        name: str = "pool",
    ):
        if total <= 0:
            raise ValueError("pool capacity must be positive")
        if policy not in BUFFER_POLICIES:
            raise ValueError(
                f"unknown buffer policy {policy!r}; known: {BUFFER_POLICIES}"
            )
        if alpha <= 0:
            raise ValueError("dynamic-threshold alpha must be positive")
        self.total = total
        self.policy = policy
        self.alpha = alpha
        self.name = name
        self.used = 0
        self.peak_used = 0
        self.rejections = 0
        self.queues: List["PooledDropTailQueue"] = []
        self._occupancy_listeners: List[Callable[[int], None]] = []
        self._reject_listeners: List[Callable[[str, int], None]] = []

    @property
    def free(self) -> int:
        return self.total - self.used

    def register(self, queue: "PooledDropTailQueue") -> None:
        if queue not in self.queues:
            self.queues.append(queue)

    def subscribe_occupancy(self, fn: Callable[[int], None]) -> None:
        """Add a listener called as ``fn(used)`` after every change."""
        self._occupancy_listeners.append(fn)

    def subscribe_reject(self, fn: Callable[[str, int], None]) -> None:
        """Add a listener called as ``fn(queue_name, queue_length)`` on
        every pool-admission refusal."""
        self._reject_listeners.append(fn)

    def admits(self, queue_length: int) -> bool:
        """Would the pool accept one more cell for a queue currently
        holding ``queue_length`` packets?"""
        free = self.total - self.used
        if free <= 0:
            return False
        if self.policy == "complete-sharing":
            return True
        # dynamic-threshold (Choudhury–Hahne): T(t) = alpha * free(t).
        # ("static" pools never reach here: static fabrics carve plain
        # per-VOQ queues and construct no pool at all.)
        return queue_length < self.alpha * free

    def acquire(self, queue: "PooledDropTailQueue") -> None:
        used = self.used + 1
        self.used = used
        if used > self.peak_used:
            self.peak_used = used
        for fn in self._occupancy_listeners:
            fn(used)

    def release(self, queue: "PooledDropTailQueue") -> None:
        self.used -= 1
        used = self.used
        for fn in self._occupancy_listeners:
            fn(used)

    def reject(self, queue: "PooledDropTailQueue") -> None:
        self.rejections += 1
        if self._reject_listeners:
            length = len(queue)
            for fn in self._reject_listeners:
                fn(queue.name, length)

    def resize_total(self, total: int) -> None:
        """Grow/shrink the shared memory at runtime (the retcpdyn
        controller's pre-circuit enlargement, pool form). Registered
        queues' per-queue hard caps track the new total so the pool
        stays the binding constraint."""
        if total <= 0:
            raise ValueError("pool capacity must be positive")
        self.total = total
        for queue in self.queues:
            queue.resize(total)

    def occupancies(self) -> List[Tuple[str, int]]:
        """(queue name, length) snapshot, registration order."""
        return [(queue.name, len(queue)) for queue in self.queues]

    def stable_limit(self, n_hot: int = 1) -> float:
        """Closed-form maximum stable occupancy one of ``n_hot`` equally
        hot member queues can sustain (the tiered fluid model's analytic
        admission check). Complete sharing admits until the pool is
        full; dynamic thresholds settle where ``q = alpha * free``, i.e.
        ``q = alpha * total / (1 + n_hot * alpha)`` per hot queue."""
        if self.policy == "complete-sharing":
            return self.total / max(n_hot, 1)
        return self.alpha * self.total / (1.0 + max(n_hot, 1) * self.alpha)


def fluid_queue_capacity(queue: DropTailQueue, n_hot: int = 1) -> float:
    """Effective steady-state packet capacity of ``queue`` for the fluid
    fast path: the per-queue cap, further bounded by the shared pool's
    closed-form stable limit when the queue is pool-backed."""
    if queue._pooled:
        return min(queue.capacity, queue.pool.stable_limit(n_hot))
    return float(queue.capacity)


class PooledDropTailQueue(DropTailQueue):
    """A VOQ drawing from a :class:`SharedBufferPool`.

    The per-queue ``capacity`` stays enforced as a hard cap on top of
    pool admission — fabrics set it to the pool total (so the pool is
    the binding constraint) and fault injection squeezes it down
    exactly like a plain queue's. A pool-admission refusal drops the
    packet at the tail (counted in both ``drops`` and the pool's
    ``rejections``).
    """

    _pooled = True

    __slots__ = ("pool",)

    def __init__(self, pool: SharedBufferPool, capacity: Optional[int] = None,
                 name: str = "pooled-queue"):
        super().__init__(pool.total if capacity is None else capacity, name)
        self.pool = pool
        pool.register(self)

    def push(self, packet: Packet, now: int) -> bool:
        """Enqueue; False (packet flagged, pool rejection or tail drop
        counted) when either the per-queue cap or pool admission says
        no."""
        pool = self.pool
        length = len(self._fifo)
        admitted = pool.admits(length)
        if length >= self.capacity or not admitted:
            packet.dropped = True
            self.drops += 1
            if not admitted:
                # The pool refused (full, or dynamic threshold hit) —
                # counted as a pool rejection even when the per-queue
                # cap binds at the same point (fabrics default the cap
                # to the pool total, so they often coincide).
                pool.reject(self)
            for fn in self._drop_listeners:
                fn(packet)
            return False
        packet.enqueued_ns = now
        if self._marks:
            self._mark(packet)
        fifo = self._fifo
        fifo.append(packet)
        self.enqueued += 1
        pool.acquire(self)
        length += 1
        if length > self.max_occupancy:
            self.max_occupancy = length
        on_change = self.on_length_change
        listeners = self._length_listeners
        if on_change is not None or listeners:
            if on_change is not None:
                on_change(length)
            for fn in listeners:
                fn(length)
        return True

    def pop(self) -> Optional[Packet]:
        packet = super().pop()
        if packet is not None:
            self.pool.release(self)
        return packet


class PooledECNMarkingQueue(PooledDropTailQueue):
    """Pool-backed VOQ that CE-marks like :class:`ECNMarkingQueue`:
    post-enqueue occupancy > K (equivalently pre-enqueue >= K)."""

    _marks = True

    __slots__ = ("mark_threshold", "marks")

    def __init__(self, pool: SharedBufferPool, mark_threshold: int,
                 capacity: Optional[int] = None, name: str = "pooled-ecn-queue"):
        super().__init__(pool, capacity, name)
        if mark_threshold <= 0:
            raise ValueError("mark threshold must be positive")
        self.mark_threshold = mark_threshold
        self.marks = 0

    def _mark(self, packet: Packet) -> None:
        if packet.ecn_capable and len(self._fifo) >= self.mark_threshold:
            packet.ce = True
            self.marks += 1
