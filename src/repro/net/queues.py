"""Queues: drop-tail with runtime-resizable capacity and ECN marking.

The ToR virtual output queue (VOQ) in the paper is a 16-packet drop-tail
queue; ``retcpdyn`` resizes it to 50 packets ahead of the circuit day.
DCTCP needs CE marking above a threshold K. Both behaviours live here so
the fabric code stays small.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

from repro.net.packet import Packet


class DropTailQueue:
    """A bounded FIFO in packets with runtime-resizable capacity.

    Resizing smaller does not evict already-queued packets (matching how
    switch buffer carving behaves); it only affects future enqueues.

    Observation points: ``on_length_change`` is a single replaceable
    observer (legacy hook); :meth:`subscribe_length` and
    :meth:`subscribe_drop` attach any number of listeners — the
    ``queue:occupancy`` / ``queue:drop`` tracepoints hang off these (see
    :meth:`repro.obs.telemetry.Telemetry.instrument_queue`).
    """

    # Class-level gate: subclasses that implement :meth:`_mark` set this
    # True so the base push() skips a no-op method call per enqueue.
    _marks = False

    # Slots: a two-rack testbed carries one VOQ per (ToR, remote rack)
    # pair plus per-host access queues, and sweep/executor runs build
    # thousands of testbeds — keeping these off the instance-dict path
    # also makes every attribute read in the inlined fabric drain a
    # slot load.
    __slots__ = (
        "capacity", "name", "_fifo", "drops", "enqueued", "max_occupancy",
        "on_length_change", "_length_listeners", "_drop_listeners",
        "_pre_squeeze_capacity",
    )

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._fifo: deque[Packet] = deque()
        self.drops = 0
        self.enqueued = 0
        self.max_occupancy = 0
        # Optional observer called as fn(length) after every length change.
        self.on_length_change: Optional[Callable[[int], None]] = None
        self._length_listeners: List[Callable[[int], None]] = []
        self._drop_listeners: List[Callable[[Packet], None]] = []
        self._pre_squeeze_capacity: Optional[int] = None

    def __len__(self) -> int:
        return len(self._fifo)

    def subscribe_length(self, fn: Callable[[int], None]) -> None:
        """Add a listener called as ``fn(length)`` after every change."""
        self._length_listeners.append(fn)

    def subscribe_drop(self, fn: Callable[[Packet], None]) -> None:
        """Add a listener called as ``fn(packet)`` on every tail drop."""
        self._drop_listeners.append(fn)

    def _notify_length(self) -> None:
        # Zero-listener fast path: most simulations attach no occupancy
        # observers, so the per-enqueue/per-pop cost must stay at one
        # branch, not a len() plus an empty-loop setup.
        if self.on_length_change is None and not self._length_listeners:
            return
        length = len(self._fifo)
        if self.on_length_change is not None:
            self.on_length_change(length)
        for fn in self._length_listeners:
            fn(length)

    def resize(self, capacity: int) -> None:
        """Change capacity at runtime (used by the reTCP-dyn controller)."""
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity

    def squeeze(self, capacity: int) -> None:
        """Fault-injection capacity squeeze: like :meth:`resize` but
        remembers the pre-squeeze capacity so :meth:`unsqueeze` can
        restore it (re-squeezing keeps the original saved value)."""
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        if self._pre_squeeze_capacity is None:
            self._pre_squeeze_capacity = self.capacity
        self.capacity = capacity

    def unsqueeze(self) -> None:
        """Restore the capacity saved by :meth:`squeeze` (no-op if not
        squeezed)."""
        if self._pre_squeeze_capacity is not None:
            self.capacity = self._pre_squeeze_capacity
            self._pre_squeeze_capacity = None

    def push(self, packet: Packet, now: int) -> bool:
        """Enqueue; returns False (and flags the packet) on overflow."""
        if len(self._fifo) >= self.capacity:
            packet.dropped = True
            self.drops += 1
            for fn in self._drop_listeners:
                fn(packet)
            return False
        packet.enqueued_ns = now
        if self._marks:
            self._mark(packet)
        fifo = self._fifo
        fifo.append(packet)
        self.enqueued += 1
        length = len(fifo)
        if length > self.max_occupancy:
            self.max_occupancy = length
        # _notify_length inlined (kept as the reference dispatch): the
        # occupancy already computed above is reused for the observers.
        on_change = self.on_length_change
        listeners = self._length_listeners
        if on_change is not None or listeners:
            if on_change is not None:
                on_change(length)
            for fn in listeners:
                fn(length)
        return True

    def pop(self) -> Optional[Packet]:
        fifo = self._fifo
        if not fifo:
            return None
        packet = fifo.popleft()
        on_change = self.on_length_change
        listeners = self._length_listeners
        if on_change is not None or listeners:
            length = len(fifo)
            if on_change is not None:
                on_change(length)
            for fn in listeners:
                fn(length)
        return packet

    def peek(self) -> Optional[Packet]:
        return self._fifo[0] if self._fifo else None

    def _mark(self, packet: Packet) -> None:
        """Hook for subclasses (ECN). Called before enqueue."""


class ECNMarkingQueue(DropTailQueue):
    """Drop-tail queue that CE-marks ECN-capable packets when the
    instantaneous occupancy is at or above threshold K (DCTCP-style)."""

    _marks = True

    __slots__ = ("mark_threshold", "marks")

    def __init__(self, capacity: int, mark_threshold: int, name: str = "ecn-queue"):
        super().__init__(capacity, name)
        if mark_threshold <= 0:
            raise ValueError("mark threshold must be positive")
        self.mark_threshold = mark_threshold
        self.marks = 0

    def _mark(self, packet: Packet) -> None:
        if packet.ecn_capable and len(self._fifo) >= self.mark_threshold:
            packet.ce = True
            self.marks += 1
