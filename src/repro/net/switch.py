"""Switches.

:class:`ToRSwitch` is the top-of-rack switch of Figure 1/6: it forwards
rack-local traffic straight down the destination host's access link, and
cross-rack traffic into a time-multiplexed uplink (the RDCN fabric,
provided by :mod:`repro.rdcn.fabric`). The ToR is also the entity that
generates TDN-change notifications (wired up by the notifier).

:class:`EPSSwitch` is a plain store-and-forward electrical packet switch
used by unit tests and non-RDCN examples.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from repro.net.addressing import _rack_of_cache, rack_of
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.simulator import Simulator


class Uplink(Protocol):
    """What a ToR needs from its fabric uplink."""

    def enqueue(self, packet: Packet) -> bool: ...


class EPSSwitch:
    """Store-and-forward packet switch with a static routing table."""

    def __init__(self, sim: Simulator, name: str = "eps"):
        self.sim = sim
        self.name = name
        self._routes: Dict[str, Link] = {}
        self.forwarded = 0

    def add_route(self, dst_addr: str, link: Link) -> None:
        self._routes[dst_addr] = link

    def forward(self, packet: Packet) -> None:
        link = self._routes.get(packet.dst)
        if link is None:
            raise KeyError(f"{self.name}: no route to {packet.dst}")
        self.forwarded += 1
        link.send(packet)


class ToRSwitch:
    """Top-of-rack switch: local delivery plus one fabric uplink per
    remote rack (this reproduction uses the paper's two-rack topology,
    so there is a single remote rack, but the structure generalizes)."""

    def __init__(self, sim: Simulator, rack: int, name: Optional[str] = None):
        self.sim = sim
        self.rack = rack
        self.name = name or f"tor{rack}"
        self._downlinks: Dict[str, Link] = {}
        self._uplinks: Dict[int, Uplink] = {}
        self.forwarded_local = 0
        self.forwarded_fabric = 0

    def add_downlink(self, host_addr: str, link: Link) -> None:
        if rack_of(host_addr) != self.rack:
            raise ValueError(f"{host_addr} is not in rack {self.rack}")
        self._downlinks[host_addr] = link

    def add_uplink(self, remote_rack: int, uplink: Uplink) -> None:
        self._uplinks[remote_rack] = uplink

    @property
    def host_addresses(self) -> tuple:
        return tuple(sorted(self._downlinks))

    def forward(self, packet: Packet) -> None:
        """Forward a packet from a local host or from the fabric."""
        dst = packet.dst
        # Inline the rack_of memo hit (every forwarded packet pays this).
        dst_rack = _rack_of_cache.get(dst)
        if dst_rack is None:
            dst_rack = rack_of(dst)
        if dst_rack == self.rack:
            link = self._downlinks.get(dst)
            if link is None:
                raise KeyError(f"{self.name}: unknown local host {dst}")
            self.forwarded_local += 1
            link.send(packet)
            return
        uplink = self._uplinks.get(dst_rack)
        if uplink is None:
            raise KeyError(f"{self.name}: no uplink toward rack {dst_rack}")
        self.forwarded_fabric += 1
        uplink.enqueue(packet)

    def deliver_local(self, packet: Packet) -> None:
        """Entry point for packets arriving from the fabric."""
        self.forward(packet)

    def broadcast_to_hosts(self, make_packet) -> None:
        """Send ``make_packet(host_addr)`` down every host access link.

        Used by the notifier to fan TDN-change ICMPs out to the rack.
        """
        for addr, link in self._downlinks.items():
            link.send(make_packet(addr))
