"""Network substrate: packets, links, queues, hosts, and switches."""

from repro.net.addressing import FlowKey, flow_key_of, reverse_flow_key
from repro.net.packet import Packet, TCPSegment, TDNNotification
from repro.net.link import Link
from repro.net.queues import DropTailQueue, ECNMarkingQueue
from repro.net.node import Host, PacketHandler
from repro.net.switch import EPSSwitch, ToRSwitch
from repro.net.capture import PacketCapture, dissect
from repro.net.pcap import write_pcap

__all__ = [
    "PacketCapture",
    "dissect",
    "write_pcap",
    "FlowKey",
    "flow_key_of",
    "reverse_flow_key",
    "Packet",
    "TCPSegment",
    "TDNNotification",
    "Link",
    "DropTailQueue",
    "ECNMarkingQueue",
    "Host",
    "PacketHandler",
    "EPSSwitch",
    "ToRSwitch",
]
