"""Addressing: host addresses and flow identification.

Hosts are addressed by strings like ``"r0h3"`` (rack 0, host 3) produced
by :func:`host_address`. A flow is a classic 4-tuple; :class:`FlowKey`
is the hashable demux key connections register under.
"""

from __future__ import annotations

from typing import NamedTuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.net.packet import TCPSegment


class FlowKey(NamedTuple):
    """Demux key from the point of view of the *local* endpoint."""

    local_addr: str
    local_port: int
    remote_addr: str
    remote_port: int


def host_address(rack: int, host: int) -> str:
    """Canonical address for host ``host`` in rack ``rack``."""
    return f"r{rack}h{host}"


_rack_of_cache: dict = {}


def rack_of(address: str) -> int:
    """Rack index encoded in a host address.

    Memoized: the fabric consults this per packet hop, and the universe
    of addresses in a run is tiny and fixed.

    >>> rack_of("r1h7")
    1
    """
    rack = _rack_of_cache.get(address)
    if rack is not None:
        return rack
    if not address.startswith("r") or "h" not in address:
        raise ValueError(f"not a host address: {address!r}")
    rack = int(address[1:address.index("h")])
    _rack_of_cache[address] = rack
    return rack


def host_index_of(address: str) -> int:
    """Host index within its rack encoded in an address."""
    if "h" not in address:
        raise ValueError(f"not a host address: {address!r}")
    return int(address[address.index("h") + 1:])


def flow_key_of(segment: "TCPSegment") -> FlowKey:
    """The :class:`FlowKey` a *receiving* host demuxes this segment to."""
    return FlowKey(segment.dst, segment.dport, segment.src, segment.sport)


def reverse_flow_key(key: FlowKey) -> FlowKey:
    """The peer's view of the same flow."""
    return FlowKey(key.remote_addr, key.remote_port, key.local_addr, key.local_port)
