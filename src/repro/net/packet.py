"""Packet model.

Three packet types mirror §4.1 of the paper:

* :class:`TCPSegment` — data/ACK segments carrying the TDTCP
  ``TD_CAPABLE`` and ``TD_DATA_ACK`` options, SACK blocks, ECN bits, the
  reTCP circuit mark, and MPTCP DSS fields. A single segment class keeps
  the fast path simple; unused option fields stay at their defaults and
  contribute nothing to the wire size.
* :class:`TDNNotification` — the ICMP path-change notification carrying
  the active TDN ID (Figure 5a).
* :class:`Packet` — base class used directly for opaque background
  traffic.

Wire sizes are computed from header constants so that serialization
delays are realistic (jumbo data segments vs. 66-byte pure ACKs).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

# Header size constants (bytes).
ETH_IP_TCP_HEADER = 14 + 20 + 20  # Ethernet + IPv4 + base TCP
SACK_BLOCK_SIZE = 8
SACK_OPTION_BASE = 2
TD_DATA_ACK_OPTION = 4  # kind, len, flags, tdn ids (Figure 5c)
TD_CAPABLE_OPTION = 4   # kind, len, subtype, num_tdns (Figure 5b)
ICMP_NOTIFICATION_SIZE = 14 + 20 + 8 + 1  # Eth + IP + ICMP header + TDN ID byte

#: Ceiling on TDN ids a notification may legitimately carry. The id
#: travels in one byte (Figure 5a) and real schedules use a handful;
#: ids above this are treated as corruption and ignored by receivers
#: rather than allocating unbounded per-TDN state. Runtime schedule
#: changes (§4.2) may still introduce new ids up to this cap.
MAX_TDN_ID = 63

_packet_ids = itertools.count()


class Packet:
    """Base packet: addressing, wire size, and bookkeeping fields."""

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size",
        "created_ns",
        "ce",
        "ecn_capable",
        "dropped",
        "enqueued_ns",
        "network_id",
        "relayed",
    )

    def __init__(self, src: str, dst: str, size: int, created_ns: int = 0):
        self.pid = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.size = size
        self.created_ns = created_ns
        # ECN: Congestion Experienced mark set by queues, echoed by receivers.
        self.ce = False
        self.ecn_capable = False
        # Set True by a queue that drops the packet; used by spurious-
        # retransmission accounting (ground truth the simulator knows).
        self.dropped = False
        self.enqueued_ns = 0
        # Which fabric network actually carried the packet (filled in by
        # the uplink at dequeue time). None until it crosses the fabric.
        self.network_id: Optional[int] = None
        # OCS-only fabrics: has this packet already taken its one
        # permitted indirection hop (RotorNet/Opera two-hop routing)?
        self.relayed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} #{self.pid} {self.src}->{self.dst} {self.size}B>"


class TCPSegment(Packet):
    """A TCP segment (data and/or ACK) with all options used in the paper."""

    __slots__ = (
        "sport",
        "dport",
        "seq",
        "payload_len",
        "ack",
        "syn",
        "fin",
        "is_ack",
        "sack_blocks",
        "ece",
        # TDTCP TD_CAPABLE (handshake) and TD_DATA_ACK (per-segment) options.
        "td_capable_tdns",
        "data_tdn",
        "ack_tdn",
        # reTCP: switch sets when the segment traversed the circuit network;
        # the receiver echoes the mark back on ACKs.
        "circuit_mark",
        "circuit_echo",
        # MPTCP data sequence signal (subflow-level seq/ack live in
        # seq/ack; these carry the connection-level mapping).
        "subflow_id",
        "dss_seq",
        "dss_ack",
        "rwnd",
        "sent_ns",
        "retransmission",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        sport: int,
        dport: int,
        seq: int = 0,
        payload_len: int = 0,
        ack: int = 0,
        is_ack: bool = False,
        syn: bool = False,
        fin: bool = False,
        created_ns: int = 0,
    ):
        # Base-class attributes set inline: this constructor runs once
        # per simulated packet, and the super().__init__ dispatch is
        # measurable there.
        self.pid = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.size = ETH_IP_TCP_HEADER + payload_len
        self.created_ns = created_ns
        self.ce = False
        self.ecn_capable = False
        self.dropped = False
        self.enqueued_ns = 0
        self.network_id = None
        self.relayed = False
        self.sport = sport
        self.dport = dport
        self.seq = seq
        self.payload_len = payload_len
        self.ack = ack
        self.syn = syn
        self.fin = fin
        self.is_ack = is_ack
        self.sack_blocks: Tuple[Tuple[int, int], ...] = ()
        self.ece = False
        self.td_capable_tdns: Optional[int] = None
        self.data_tdn: Optional[int] = None
        self.ack_tdn: Optional[int] = None
        self.circuit_mark = False
        self.circuit_echo = False
        self.subflow_id: Optional[int] = None
        self.dss_seq: Optional[int] = None
        self.dss_ack: Optional[int] = None
        self.rwnd: int = 2 ** 40  # advertised receive window (bytes)
        self.sent_ns = 0
        self.retransmission = False

    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment's payload."""
        return self.seq + self.payload_len

    def add_option_sizes(self) -> None:
        """Grow the wire size to account for options actually carried.

        Called once by the sending stack after all options are filled in.
        """
        extra = 0
        if self.sack_blocks:
            extra += SACK_OPTION_BASE + SACK_BLOCK_SIZE * len(self.sack_blocks)
        if self.td_capable_tdns is not None:
            extra += TD_CAPABLE_OPTION
        if self.data_tdn is not None or self.ack_tdn is not None:
            extra += TD_DATA_ACK_OPTION
        if self.dss_seq is not None or self.dss_ack is not None:
            extra += 12
        self.size += extra

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "SYN" if self.syn else ("FIN" if self.fin else ("ACK" if self.is_ack and not self.payload_len else "DATA"))
        return (
            f"<TCPSegment #{self.pid} {kind} {self.src}:{self.sport}->"
            f"{self.dst}:{self.dport} seq={self.seq} len={self.payload_len} ack={self.ack}>"
        )


class TDNNotification(Packet):
    """ICMP path-change notification (Figure 5a).

    Carries the TDN ID that just became active. ``generated_ns`` is when
    the ToR decided to send it; the difference to delivery time is the
    notification latency studied in §5.4.
    """

    __slots__ = ("tdn_id", "generated_ns", "notify_seq")

    def __init__(self, src: str, dst: str, tdn_id: int, created_ns: int = 0):
        super().__init__(src, dst, ICMP_NOTIFICATION_SIZE, created_ns)
        self.tdn_id = tdn_id
        self.generated_ns = created_ns
        # Monotonic emission counter stamped by the TDNNotifier; hosts
        # use it to discard stale/duplicate/reordered notifications
        # (§3.2 degraded-signal tolerance). None when hand-constructed.
        self.notify_seq: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TDNNotification #{self.pid} {self.src}->{self.dst} tdn={self.tdn_id}>"
