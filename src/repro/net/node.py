"""Hosts: endpoints that run transport connections.

A :class:`Host` owns an egress link toward its ToR, demuxes incoming
TCP segments to registered connections, and fans TDN-change
notifications out to subscribed listeners (TDTCP/reTCP stacks).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.net.addressing import FlowKey
from repro.net.link import Link
from repro.net.packet import Packet, TCPSegment, TDNNotification
from repro.sim.simulator import Simulator


class PacketHandler(Protocol):
    """Anything that can receive a packet (connections implement this)."""

    def receive(self, packet: Packet) -> None: ...


class Host:
    """An end host attached to a ToR switch."""

    def __init__(self, sim: Simulator, address: str):
        self.sim = sim
        self.address = address
        self.egress: Optional[Link] = None
        self._connections: Dict[FlowKey, PacketHandler] = {}
        self._tdn_listeners: List[Callable[[TDNNotification], None]] = []
        self._next_port = 10_000
        self.rx_packets = 0
        self.tx_packets = 0
        # §5.4 host-side notification processing cost model: a per-host
        # delay applied to every notification before listeners see it.
        # The push/pull optimization in the notifier manipulates this.
        self.notification_processing_ns = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_egress(self, link: Link) -> None:
        """Connect the host's NIC to its ToR via ``link``."""
        self.egress = link

    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    def register_connection(self, key: FlowKey, handler: PacketHandler) -> None:
        if key in self._connections:
            raise ValueError(f"flow already registered: {key}")
        self._connections[key] = handler

    def unregister_connection(self, key: FlowKey) -> None:
        self._connections.pop(key, None)

    def subscribe_tdn_changes(self, callback: Callable[[TDNNotification], None]) -> None:
        """Subscribe to ICMP TDN-change notifications delivered to this host."""
        self._tdn_listeners.append(callback)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit a packet toward the fabric via the access link."""
        if self.egress is None:
            raise RuntimeError(f"host {self.address} has no egress link")
        self.tx_packets += 1
        self.egress.send(packet)

    def deliver(self, packet: Packet) -> None:
        """Entry point for packets arriving from the ToR."""
        self.rx_packets += 1
        # TCP segments dominate; test for them first.
        if isinstance(packet, TCPSegment):
            # Plain tuple instead of flow_key_of(): a NamedTuple hashes
            # and compares like the tuple of its fields, so the demux
            # lookup skips the FlowKey construction on the per-packet path.
            handler = self._connections.get(
                (packet.dst, packet.dport, packet.src, packet.sport)
            )
            if handler is not None:
                handler.receive(packet)
            # Unmatched segments are dropped silently (no RST modelling).
            return
        if isinstance(packet, TDNNotification):
            if self.notification_processing_ns > 0:
                self.sim.schedule(self.notification_processing_ns, self._dispatch_notification, packet)
            else:
                self._dispatch_notification(packet)
            return
        # Opaque packets (background traffic) are sinks.

    def _dispatch_notification(self, notification: TDNNotification) -> None:
        for listener in self._tdn_listeners:
            listener(notification)
