"""Hosts: endpoints that run transport connections.

A :class:`Host` owns an egress link toward its ToR, demuxes incoming
TCP segments to registered connections, and fans TDN-change
notifications out to subscribed listeners (TDTCP/reTCP stacks).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.net.addressing import FlowKey
from repro.net.link import Link
from repro.net.packet import Packet, TCPSegment, TDNNotification
from repro.obs.telemetry import Telemetry
from repro.sim.simulator import Simulator


class PacketHandler(Protocol):
    """Anything that can receive a packet (connections implement this)."""

    def receive(self, packet: Packet) -> None: ...


class Host:
    """An end host attached to a ToR switch."""

    def __init__(self, sim: Simulator, address: str):
        self.sim = sim
        self.address = address
        self.egress: Optional[Link] = None
        self._connections: Dict[FlowKey, PacketHandler] = {}
        self._tdn_listeners: List[Callable[[TDNNotification], None]] = []
        self._next_port = 10_000
        self.rx_packets = 0
        self.tx_packets = 0
        # §5.4 host-side notification processing cost model: a per-host
        # delay applied to every notification before listeners see it.
        # The push/pull optimization in the notifier manipulates this.
        self.notification_processing_ns = 0
        # §3.2 degraded-signal tolerance: notifications with an unknown
        # TDN id or a non-increasing notify_seq (duplicates, reordered
        # late arrivals) are counted and ignored, never dispatched.
        # max_tdn_id is set by the notifier from the schedule; None
        # disables the id check (hand-wired unit-test hosts).
        self.max_tdn_id: Optional[int] = None
        self.stale_notifications = 0
        self._last_notify_seq: Optional[int] = None
        self._tp_stale = Telemetry.of(sim).tracepoint("notifier:stale")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_egress(self, link: Link) -> None:
        """Connect the host's NIC to its ToR via ``link``."""
        self.egress = link

    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    def register_connection(self, key: FlowKey, handler: PacketHandler) -> None:
        if key in self._connections:
            raise ValueError(f"flow already registered: {key}")
        self._connections[key] = handler

    def unregister_connection(self, key: FlowKey) -> None:
        self._connections.pop(key, None)

    def subscribe_tdn_changes(self, callback: Callable[[TDNNotification], None]) -> None:
        """Subscribe to ICMP TDN-change notifications delivered to this host."""
        self._tdn_listeners.append(callback)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Transmit a packet toward the fabric via the access link."""
        if self.egress is None:
            raise RuntimeError(f"host {self.address} has no egress link")
        self.tx_packets += 1
        self.egress.send(packet)

    def deliver(self, packet: Packet) -> None:
        """Entry point for packets arriving from the ToR."""
        self.rx_packets += 1
        # TCP segments dominate; test for them first.
        if isinstance(packet, TCPSegment):
            # Plain tuple instead of flow_key_of(): a NamedTuple hashes
            # and compares like the tuple of its fields, so the demux
            # lookup skips the FlowKey construction on the per-packet path.
            handler = self._connections.get(
                (packet.dst, packet.dport, packet.src, packet.sport)
            )
            if handler is not None:
                handler.receive(packet)
            # Unmatched segments are dropped silently (no RST modelling).
            return
        if isinstance(packet, TDNNotification):
            if not self._notification_fresh(packet):
                return
            if self.notification_processing_ns > 0:
                self.sim.schedule(self.notification_processing_ns, self._dispatch_notification, packet)
            else:
                self._dispatch_notification(packet)
            return
        # Opaque packets (background traffic) are sinks.

    def _notification_fresh(self, notification: TDNNotification) -> bool:
        """Filter stale/duplicate/unknown TDN notifications: count them
        and refuse dispatch; the stack resyncs on the next valid one."""
        seq = notification.notify_seq
        if seq is not None:
            last = self._last_notify_seq
            if last is not None and seq <= last:
                self._count_stale(notification, "stale_seq")
                return False
            self._last_notify_seq = seq
        if self.max_tdn_id is not None and not (0 <= notification.tdn_id <= self.max_tdn_id):
            self._count_stale(notification, "unknown_tdn")
            return False
        return True

    def _count_stale(self, notification: TDNNotification, reason: str) -> None:
        self.stale_notifications += 1
        if self._tp_stale.enabled:
            self._tp_stale.emit(
                self.sim.now,
                where="host",
                name=self.address,
                tdn=notification.tdn_id,
                reason=reason,
            )

    def _dispatch_notification(self, notification: TDNNotification) -> None:
        for listener in self._tdn_listeners:
            listener(notification)
