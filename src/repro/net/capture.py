"""Packet capture and dissection.

The paper's artifact ships a Wireshark build with a TDTCP protocol
dissector as its debugging tool; this module is that tool's simulator
counterpart. A :class:`PacketCapture` taps any delivery point (link,
host, uplink) and records structured capture records; :func:`dissect`
renders one packet the way the dissector would — TCP flags, SACK
blocks, and the TD_CAPABLE / TD_DATA_ACK options of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.net.packet import Packet, TCPSegment, TDNNotification
from repro.sim.simulator import Simulator


@dataclass
class CaptureRecord:
    """One captured packet with its capture timestamp."""

    time_ns: int
    packet: Packet

    def __str__(self) -> str:
        return f"{self.time_ns / 1000:10.2f}us  {dissect(self.packet)}"


class PacketCapture:
    """Tap a delivery callable and record everything passing through.

    Example::

        capture = PacketCapture(sim)
        link.deliver = capture.tap(link.deliver)
    """

    def __init__(
        self,
        sim: Simulator,
        max_records: Optional[int] = None,
        predicate: Optional[Callable[[Packet], bool]] = None,
    ):
        self.sim = sim
        self.max_records = max_records
        self.predicate = predicate
        self.records: List[CaptureRecord] = []
        self.dropped_records = 0

    def tap(self, deliver: Callable[[Packet], None]) -> Callable[[Packet], None]:
        """Wrap ``deliver`` so every packet is recorded, then passed on."""

        def tapped(packet: Packet) -> None:
            self.observe(packet)
            deliver(packet)

        return tapped

    def observe(self, packet: Packet) -> None:
        """Record a packet without forwarding it anywhere."""
        if self.predicate is not None and not self.predicate(packet):
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped_records += 1
            return
        self.records.append(CaptureRecord(self.sim.now, packet))

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def segments(self) -> List[CaptureRecord]:
        return [r for r in self.records if isinstance(r.packet, TCPSegment)]

    def notifications(self) -> List[CaptureRecord]:
        return [r for r in self.records if isinstance(r.packet, TDNNotification)]

    def data_segments(self) -> List[CaptureRecord]:
        return [
            r for r in self.segments()
            if r.packet.payload_len > 0  # type: ignore[union-attr]
        ]

    def summary(self) -> str:
        """One-paragraph traffic summary (counts by kind and TDN tag)."""
        segments = self.segments()
        data = [r for r in segments if r.packet.payload_len > 0]
        acks = [r for r in segments if r.packet.payload_len == 0]
        notifications = self.notifications()
        by_tdn: dict = {}
        for record in data:
            tag = record.packet.data_tdn
            by_tdn[tag] = by_tdn.get(tag, 0) + 1
        tdn_text = ", ".join(
            f"TDN {tag}: {count}" for tag, count in sorted(
                by_tdn.items(), key=lambda item: (item[0] is None, item[0])
            )
        )
        return (
            f"{len(self.records)} packets captured: {len(data)} data, "
            f"{len(acks)} pure ACKs, {len(notifications)} TDN notifications"
            + (f" | data by TDN tag: {tdn_text}" if tdn_text else "")
        )

    def render(self, limit: int = 50) -> str:
        """The capture as dissector text, most recent last."""
        lines = [str(record) for record in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more")
        return "\n".join(lines)


def dissect(packet: Packet) -> str:
    """Render one packet the way the artifact's TDTCP dissector would."""
    if isinstance(packet, TDNNotification):
        return (
            f"ICMP TDN-change {packet.src} -> {packet.dst} "
            f"[active TDN ID: {packet.tdn_id}]"
        )
    if isinstance(packet, TCPSegment):
        flags = "".join(
            flag
            for flag, on in (
                ("S", packet.syn),
                ("F", packet.fin),
                ("A", packet.is_ack),
                ("E", packet.ece),
                ("C", packet.ce),
            )
            if on
        )
        parts = [
            f"TCP {packet.src}:{packet.sport} -> {packet.dst}:{packet.dport}",
            f"[{flags or '.'}]",
            f"seq={packet.seq}",
        ]
        if packet.payload_len:
            parts.append(f"len={packet.payload_len}")
        if packet.is_ack:
            parts.append(f"ack={packet.ack}")
        if packet.sack_blocks:
            blocks = " ".join(f"{s}-{e}" for s, e in packet.sack_blocks)
            parts.append(f"SACK{{{blocks}}}")
        if packet.td_capable_tdns is not None:
            parts.append(f"TD_CAPABLE{{num_tdns={packet.td_capable_tdns}}}")
        if packet.data_tdn is not None or packet.ack_tdn is not None:
            fields = []
            if packet.data_tdn is not None and packet.payload_len:
                fields.append(f"D data_tdn={packet.data_tdn}")
            if packet.ack_tdn is not None and packet.is_ack:
                fields.append(f"A ack_tdn={packet.ack_tdn}")
            if fields:
                parts.append(f"TD_DATA_ACK{{{' '.join(fields)}}}")
        if packet.dss_seq is not None:
            parts.append(f"DSS{{seq={packet.dss_seq}}}")
        if packet.dss_ack is not None:
            parts.append(f"DSS{{ack={packet.dss_ack}}}")
        if packet.circuit_mark:
            parts.append("CIRCUIT-MARK")
        if packet.subflow_id is not None:
            parts.append(f"subflow={packet.subflow_id}")
        return " ".join(parts)
    return f"RAW {packet.src} -> {packet.dst} len={packet.size}"
