"""Export simulated captures to real pcap files.

The paper's artifact ships a Wireshark with a TDTCP dissector; this
module closes the loop from our side: a :class:`PacketCapture` can be
written as a classic little-endian pcap (LINKTYPE_ETHERNET) with
synthesized Ethernet/IPv4/TCP headers, openable in stock Wireshark or
tcpdump. TDTCP's experimental options are encoded as TCP options with
kind 253 (RFC 6994 experimental), mirroring Figure 5:

* TD_CAPABLE:  kind=253 len=4 subtype=0 num_tdns
* TD_DATA_ACK: kind=253 len=6 subtype=1 flags data_tdn ack_tdn

Payload bytes are zero-filled (the simulation carries sizes, not
contents); sequence numbers, ports, flags, and options are real.
"""

from __future__ import annotations

import struct
from typing import Iterable, Union

from repro.net.capture import CaptureRecord, PacketCapture
from repro.net.packet import Packet, TCPSegment

PCAP_MAGIC = 0xA1B2C3D9  # microsecond-resolution, little-endian when packed <
LINKTYPE_ETHERNET = 1
EXPERIMENTAL_OPTION_KIND = 253
TD_CAPABLE_SUBTYPE = 0
TD_DATA_ACK_SUBTYPE = 1


def _mac(address: str) -> bytes:
    """A stable fake MAC derived from the host address string."""
    digest = sum(address.encode()) & 0xFF
    tail = (address.encode() + b"\x00" * 5)[:5]
    return bytes([0x02, digest]) + tail[:4]


def _ip(address: str) -> bytes:
    """10.rack.0.host for r<rack>h<host> addresses; hashed otherwise."""
    try:
        from repro.net.addressing import host_index_of, rack_of

        return bytes([10, rack_of(address) & 0xFF, 0, host_index_of(address) & 0xFF])
    except (ValueError, IndexError):
        digest = sum(address.encode())
        return bytes([10, 255, (digest >> 8) & 0xFF, digest & 0xFF])


def _tcp_options(segment: TCPSegment) -> bytes:
    options = b""
    if segment.td_capable_tdns is not None:
        options += struct.pack(
            "!BBBB", EXPERIMENTAL_OPTION_KIND, 4, TD_CAPABLE_SUBTYPE,
            segment.td_capable_tdns & 0xFF,
        )
    data_tdn = segment.data_tdn if segment.payload_len else None
    ack_tdn = segment.ack_tdn if segment.is_ack else None
    if data_tdn is not None or ack_tdn is not None:
        flags = (0x2 if data_tdn is not None else 0) | (0x1 if ack_tdn is not None else 0)
        options += struct.pack(
            "!BBBBBB", EXPERIMENTAL_OPTION_KIND, 6, TD_DATA_ACK_SUBTYPE,
            flags, (data_tdn or 0) & 0xFF, (ack_tdn or 0) & 0xFF,
        )
    for start, end in segment.sack_blocks[:3]:
        # RFC 2018 SACK option, one block per option for simplicity.
        options += struct.pack("!BBII", 5, 10, start & 0xFFFFFFFF, end & 0xFFFFFFFF)
    # Pad to a 4-byte boundary with NOPs.
    while len(options) % 4:
        options += b"\x01"
    return options


def _frame_for(packet: Packet) -> bytes:
    """Synthesize an Ethernet/IPv4(/TCP) frame for one packet."""
    src_ip = _ip(packet.src)
    dst_ip = _ip(packet.dst)
    if isinstance(packet, TCPSegment):
        options = _tcp_options(packet)
        payload = b"\x00" * min(packet.payload_len, 64)  # truncated snaplen
        data_offset = (20 + len(options)) // 4
        flags = 0x10 if packet.is_ack else 0
        if packet.syn:
            flags |= 0x02
        if packet.fin:
            flags |= 0x01
        if packet.ece:
            flags |= 0x40
        tcp = struct.pack(
            "!HHIIBBHHH",
            packet.sport & 0xFFFF,
            packet.dport & 0xFFFF,
            packet.seq & 0xFFFFFFFF,
            packet.ack & 0xFFFFFFFF,
            data_offset << 4,
            flags,
            65_535,
            0,  # checksum left zero
            0,
        ) + options + payload
        proto = 6
        body = tcp
    else:
        proto = 253  # "use for experimentation"
        body = b"\x00" * min(packet.size, 32)
    total_len = 20 + len(body)
    ip = struct.pack(
        "!BBHHHBBH4s4s",
        0x45, 0, total_len, 0, 0, 64, proto, 0, src_ip, dst_ip,
    ) + body
    eth = _mac(packet.dst) + _mac(packet.src) + struct.pack("!H", 0x0800)
    return eth + ip


def write_pcap(
    records: Union[PacketCapture, Iterable[CaptureRecord]],
    path,
) -> int:
    """Write capture records as a pcap file; returns packets written."""
    if isinstance(records, PacketCapture):
        records = records.records
    count = 0
    with open(path, "wb") as handle:
        handle.write(
            struct.pack(
                "<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65_535, LINKTYPE_ETHERNET
            )
        )
        for record in records:
            frame = _frame_for(record.packet)
            seconds, nanos = divmod(record.time_ns, 1_000_000_000)
            handle.write(
                struct.pack(
                    "<IIII", seconds, nanos // 1000, len(frame), len(frame)
                )
            )
            handle.write(frame)
            count += 1
    return count
