"""Empirical CDF helpers for the Figure 10 distributions."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted values and their cumulative probabilities.

    Returns ``(x, p)`` with ``p[i]`` = fraction of samples <= ``x[i]``.
    Empty input yields empty arrays.
    """
    if len(samples) == 0:
        return np.asarray([]), np.asarray([])
    x = np.sort(np.asarray(samples, dtype=float))
    p = np.arange(1, len(x) + 1) / len(x)
    return x, p


def quantile(samples: Sequence[float], q: float) -> float:
    """The q-quantile (0..1) of the samples; 0.0 for empty input."""
    if len(samples) == 0:
        return 0.0
    if not (0.0 <= q <= 1.0):
        raise ValueError("quantile must be within [0, 1]")
    return float(np.quantile(np.asarray(samples, dtype=float), q))


def fraction_at_or_below(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples <= threshold (e.g. '80% of days see zero')."""
    if len(samples) == 0:
        return 0.0
    arr = np.asarray(samples, dtype=float)
    return float(np.mean(arr <= threshold))
