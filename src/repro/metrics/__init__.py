"""Measurement: trace collectors and figure-series post-processing."""

from repro.metrics.collectors import QueueOccupancyCollector, EventCounterCollector
from repro.metrics.seqgraph import (
    fold_series_by_week,
    tile_weeks,
    optimal_curve,
    constant_rate_curve,
    step_interpolate,
)
from repro.metrics.cdf import empirical_cdf, quantile
from repro.metrics.fairness import jain_index, max_min_ratio

__all__ = [
    "jain_index",
    "max_min_ratio",
    "QueueOccupancyCollector",
    "EventCounterCollector",
    "fold_series_by_week",
    "tile_weeks",
    "optimal_curve",
    "constant_rate_curve",
    "step_interpolate",
    "empirical_cdf",
    "quantile",
]
