"""Fairness metrics (§3.5: "We expect CCAs used within each TDN to have
similar fairness properties as their single-path siblings").

Jain's fairness index over per-flow allocations: 1.0 = perfectly fair,
1/n = one flow takes everything.
"""

from __future__ import annotations

from typing import Sequence


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index; 0.0 for empty or all-zero input."""
    values = [max(float(v), 0.0) for v in allocations]
    if not values:
        return 0.0
    total = sum(values)
    if total == 0.0:
        return 0.0
    squares = sum(v * v for v in values)
    return total * total / (len(values) * squares)


def max_min_ratio(allocations: Sequence[float]) -> float:
    """max/min allocation ratio (1.0 = equal); inf when a flow starves."""
    values = [float(v) for v in allocations]
    if not values:
        return 1.0
    low = min(values)
    high = max(values)
    if low <= 0.0:
        return float("inf") if high > 0 else 1.0
    return high / low
