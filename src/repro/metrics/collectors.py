"""Trace collectors.

:class:`QueueOccupancyCollector` hooks a queue's length-change callback
and records a (time, length) step series — Figure 7b/8b/13/14 material.

:class:`EventCounterCollector` buckets timestamped events (reordering
events, retransmission marks) into per-optical-day counts for the
Figure 10 CDFs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.net.queues import DropTailQueue
from repro.rdcn.schedule import TDNSchedule
from repro.sim.simulator import Simulator


class QueueOccupancyCollector:
    """Records every queue-length change as a step series.

    A thin adapter over the queue's multi-listener observation hook
    (:meth:`DropTailQueue.subscribe_length`), so it coexists with the
    ``queue:occupancy`` tracepoint instead of clobbering a single
    callback slot."""

    def __init__(self, sim: Simulator, queue: DropTailQueue):
        self.sim = sim
        self.queue = queue
        # Anchor the step series at the attach time, not time 0: a
        # collector attached mid-run (deferred executor attach) must not
        # claim the queue held its current length since the epoch.
        self.samples: List[Tuple[int, int]] = [(sim.now, len(queue))]
        queue.subscribe_length(self._on_change)

    def _on_change(self, length: int) -> None:
        self.samples.append((self.sim.now, length))

    def max_occupancy(self) -> int:
        return max((length for _t, length in self.samples), default=0)


class EventCounterCollector:
    """Buckets events into optical days.

    Cross-TDN reordering happens around the transition *into* the
    low-latency (optical) day, so an event at time ``t`` is attributed
    to the week containing ``t`` (equivalently, to that week's optical
    day). Days with zero events still appear in the distribution —
    crucial for the paper's "80% of transitions see no reordering".
    """

    def __init__(self, schedule: TDNSchedule, optical_tdn: int = 1):
        self.schedule = schedule
        self.optical_tdn = optical_tdn
        self._buckets: Dict[int, int] = {}

    def record(self, time_ns: int, count: int = 1) -> None:
        week = time_ns // self.schedule.week_ns
        self._buckets[week] = self._buckets.get(week, 0) + count

    def record_events(self, events: List[Tuple[int, int]]) -> None:
        for time_ns, count in events:
            self.record(time_ns, count)

    def __call__(self, time_ns: int, name: str, fields: Dict[str, Any]) -> None:
        """Tracepoint-subscriber entry point: each event counts once, so
        the collector can be attached to e.g. ``tcp:retransmit``."""
        self.record(time_ns, 1)

    def per_day_counts(self, total_weeks: int, warmup_weeks: int = 0) -> List[int]:
        """Counts per optical day across the experiment, zero-filled."""
        return [
            self._buckets.get(week, 0)
            for week in range(warmup_weeks, total_weeks)
        ]
