"""Sequence-graph machinery (Figures 2, 7a, 8a, 9, 11).

The paper's sequence graphs average "results across thousands of
optical weeks": for each week after a warm-up, the within-week progress
curve ``seq(t0 + tau) - seq(t0)`` is sampled on a common grid and
averaged. To plot several consecutive weeks (the figures show ~3), the
averaged one-week curve is tiled with the mean weekly progress as the
offset.

The analytic ``optimal`` and ``packet only`` reference curves integrate
the schedule's rate profile directly.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.rdcn.schedule import TDNSchedule


def step_interpolate(
    times: np.ndarray, values: np.ndarray, grid: np.ndarray, initial: float = 0.0
) -> np.ndarray:
    """Previous-value (step) interpolation of a step series onto a grid.

    Queue lengths and rcv_nxt are right-continuous step functions; the
    value at grid point g is the sample at the latest time <= g.
    """
    if len(times) == 0:
        return np.full(len(grid), initial, dtype=float)
    idx = np.searchsorted(times, grid, side="right") - 1
    out = np.where(idx >= 0, values[np.clip(idx, 0, None)], initial)
    return out.astype(float)


def fold_series_by_week(
    samples: Sequence[Tuple[int, float]],
    week_ns: int,
    total_weeks: int,
    warmup_weeks: int = 2,
    grid_points: int = 400,
    cumulative: bool = True,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Average a step series across weeks.

    Returns ``(grid_ns, mean_curve, mean_week_progress)``:

    * for ``cumulative`` series (sequence numbers), each week's curve is
      re-based to zero at the week start, so ``mean_curve[j]`` is the
      average progress ``tau = grid_ns[j]`` into a week and
      ``mean_week_progress`` is the average total progress per week;
    * for level series (queue occupancy), values are averaged as-is and
      ``mean_week_progress`` is 0.
    """
    if total_weeks <= warmup_weeks:
        raise ValueError("need at least one week after warm-up")
    times = np.asarray([t for t, _v in samples], dtype=np.int64)
    values = np.asarray([v for _t, v in samples], dtype=float)
    grid = np.linspace(0, week_ns, grid_points, endpoint=False).astype(np.int64)
    curves = []
    progresses = []
    for week in range(warmup_weeks, total_weeks):
        start = week * week_ns
        week_grid = grid + start
        curve = step_interpolate(times, values, week_grid)
        if cumulative:
            base = step_interpolate(times, values, np.asarray([start]))[0]
            end = step_interpolate(times, values, np.asarray([start + week_ns]))[0]
            curve = curve - base
            progresses.append(end - base)
        curves.append(curve)
    mean_curve = np.mean(np.asarray(curves), axis=0)
    mean_progress = float(np.mean(progresses)) if progresses else 0.0
    return grid, mean_curve, mean_progress


def tile_weeks(
    grid_ns: np.ndarray,
    mean_curve: np.ndarray,
    mean_week_progress: float,
    week_ns: int,
    n_weeks: int = 3,
) -> Tuple[np.ndarray, np.ndarray]:
    """Tile an averaged one-week curve over ``n_weeks`` for plotting."""
    times = []
    values = []
    for week in range(n_weeks):
        times.append(grid_ns + week * week_ns)
        values.append(mean_curve + week * mean_week_progress)
    return np.concatenate(times), np.concatenate(values)


def optimal_curve(
    schedule: TDNSchedule,
    rates_bps: Sequence[float],
    n_weeks: int = 3,
    grid_points_per_week: int = 400,
    night_rate_bps: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """The paper's 'optimal' line: an idealized TCP that fully uses the
    active TDN's bottleneck bandwidth, and nothing during nights."""
    pieces = schedule.rate_profile(list(rates_bps))
    grid = np.linspace(
        0, n_weeks * schedule.week_ns, n_weeks * grid_points_per_week, endpoint=False
    )
    # Cumulative bytes at each phase boundary of one week.
    week_bytes = 0.0
    boundaries = []  # (phase_start, cumulative_bytes_at_start, rate)
    for start, end, rate in pieces:
        effective = rate if rate > 0 else night_rate_bps
        boundaries.append((start, week_bytes, effective))
        week_bytes += effective / 8.0 * (end - start) / 1e9
    times = np.asarray(grid, dtype=np.int64)
    out = np.empty(len(times), dtype=float)
    starts = np.asarray([b[0] for b in boundaries], dtype=np.int64)
    for i, t in enumerate(times):
        week, phase = divmod(int(t), schedule.week_ns)
        j = int(np.searchsorted(starts, phase, side="right") - 1)
        start, cum, rate = boundaries[j]
        out[i] = week * week_bytes + cum + rate / 8.0 * (phase - start) / 1e9
    return times, out


def constant_rate_curve(
    rate_bps: float, duration_ns: int, grid_points: int = 1200
) -> Tuple[np.ndarray, np.ndarray]:
    """The 'packet only' line: a constant-slope reference that never
    experiences reconfiguration blackouts."""
    times = np.linspace(0, duration_ns, grid_points, endpoint=False)
    return times.astype(np.int64), rate_bps / 8.0 * times / 1e9
