"""Unit helpers.

All simulation time is integer nanoseconds; all sizes are integer bytes;
bandwidths are floats in bits per second. These helpers keep call sites
readable (``usec(180)`` instead of ``180_000``) and centralize the
conversions so no module invents its own scale.
"""

from __future__ import annotations

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000

KBPS = 1e3
MBPS = 1e6
GBPS = 1e9


def nsec(value: float) -> int:
    """Nanoseconds as integer simulation time."""
    return int(round(value * NSEC))


def usec(value: float) -> int:
    """Microseconds as integer simulation time."""
    return int(round(value * USEC))


def msec(value: float) -> int:
    """Milliseconds as integer simulation time."""
    return int(round(value * MSEC))


def sec(value: float) -> int:
    """Seconds as integer simulation time."""
    return int(round(value * SEC))


def gbps(value: float) -> float:
    """Gigabits per second as bits per second."""
    return value * GBPS


def mbps(value: float) -> float:
    """Megabits per second as bits per second."""
    return value * MBPS


def serialization_delay_ns(size_bytes: int, rate_bps: float) -> int:
    """Time to push ``size_bytes`` onto a wire running at ``rate_bps``.

    Always at least 1 ns for a non-empty packet so that events caused by a
    transmission strictly follow the event that started it.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    if size_bytes <= 0:
        return 0
    delay = int(round(size_bytes * 8 * SEC / rate_bps))
    return max(delay, 1)


def to_usec(time_ns: int) -> float:
    """Integer simulation time to float microseconds (for reporting)."""
    return time_ns / USEC


def to_sec(time_ns: int) -> float:
    """Integer simulation time to float seconds (for reporting)."""
    return time_ns / SEC


def throughput_gbps(byte_count: int, duration_ns: int) -> float:
    """Average throughput in Gbps over a duration."""
    if duration_ns <= 0:
        return 0.0
    return byte_count * 8 / (duration_ns / SEC) / GBPS
