"""Trace sinks: lightweight probes the simulation writes samples into.

Collectors in :mod:`repro.metrics` subscribe to these; the hot path pays
one attribute lookup and one call when tracing is enabled, nothing when
the :class:`NullTraceSink` is installed.

Since the unified telemetry subsystem (:mod:`repro.obs`) landed, the
sinks are thin adapters over its event buffer: a :class:`ListTraceSink`
stores its samples in a :class:`repro.obs.exporters.MemoryExporter` and
doubles as a tracepoint subscriber, so legacy ``record`` call sites and
new tracepoint streams land in the same substrate and can be rendered
by the same exporters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.exporters import MemoryExporter


class TraceSink:
    """Interface: receive (time, key, value) samples."""

    enabled = True

    def record(self, time: int, key: str, value: Any) -> None:
        raise NotImplementedError


class NullTraceSink(TraceSink):
    """Discards everything; used when a run does not need traces."""

    enabled = False

    def record(self, time: int, key: str, value: Any) -> None:
        pass


class ListTraceSink(TraceSink):
    """Appends samples to per-key lists, backed by a
    :class:`repro.obs.exporters.MemoryExporter`.

    Besides the legacy ``record(time, key, value)`` entry point it is a
    valid tracepoint subscriber (``sink(time_ns, name, fields)``), so it
    can be attached to a :class:`repro.obs.tracepoints.TracepointRegistry`
    directly; tracepoint events appear under their tracepoint name with
    the fields dict as the value.
    """

    def __init__(self) -> None:
        self.buffer = MemoryExporter()

    def record(self, time: int, key: str, value: Any) -> None:
        self.buffer(time, key, {"value": value})

    def __call__(self, time_ns: int, name: str, fields: Dict[str, Any]) -> None:
        """Tracepoint-subscriber entry point."""
        self.buffer(time_ns, name, fields)

    @property
    def samples(self) -> Dict[str, List[Tuple[int, Any]]]:
        """Per-key sample lists (legacy view of the event buffer)."""
        view: Dict[str, List[Tuple[int, Any]]] = {}
        for time_ns, name, fields in self.buffer.events:
            value = fields["value"] if set(fields) == {"value"} else fields
            view.setdefault(name, []).append((time_ns, value))
        return view

    def series(self, key: str) -> List[Tuple[int, Any]]:
        """All samples recorded under ``key`` (empty list if none)."""
        return self.samples.get(key, [])

    def keys(self) -> List[str]:
        return self.buffer.families()
