"""Trace sinks: lightweight probes the simulation writes samples into.

Collectors in :mod:`repro.metrics` subscribe to these; the hot path pays
one attribute lookup and one call when tracing is enabled, nothing when
the :class:`NullTraceSink` is installed.
"""

from __future__ import annotations

from typing import Any, List, Tuple


class TraceSink:
    """Interface: receive (time, key, value) samples."""

    enabled = True

    def record(self, time: int, key: str, value: Any) -> None:
        raise NotImplementedError


class NullTraceSink(TraceSink):
    """Discards everything; used when a run does not need traces."""

    enabled = False

    def record(self, time: int, key: str, value: Any) -> None:
        pass


class ListTraceSink(TraceSink):
    """Appends samples to per-key lists. Good enough for experiments at
    the scale this reproduction runs (tens of ms of simulated time)."""

    def __init__(self) -> None:
        self.samples: dict[str, List[Tuple[int, Any]]] = {}

    def record(self, time: int, key: str, value: Any) -> None:
        self.samples.setdefault(key, []).append((time, value))

    def series(self, key: str) -> List[Tuple[int, Any]]:
        """All samples recorded under ``key`` (empty list if none)."""
        return self.samples.get(key, [])

    def keys(self) -> List[str]:
        return sorted(self.samples)
