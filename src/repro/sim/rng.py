"""Seeded randomness for reproducible experiments.

Every stochastic decision in the simulation (flow start jitter, loss
injection, background traffic) draws from a :class:`SeededRandom` handed
down from the experiment config, never from the global ``random`` module.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")


class SeededRandom:
    """Thin wrapper around :class:`random.Random` with named substreams.

    ``fork(name)`` derives an independent, deterministic substream so
    that adding a new consumer of randomness does not perturb existing
    ones (a classic reproducibility bug in simulators).
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, name: str) -> "SeededRandom":
        """Derive an independent substream keyed by ``name``.

        Uses CRC32 (stable across processes, unlike ``hash()`` on str)
        mixed with the parent seed.
        """
        digest = zlib.crc32(name.encode("utf-8"))
        child_seed = (self.seed * 2654435761 + digest) & 0x7FFFFFFFFFFFFFFF
        return SeededRandom(child_seed)

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def jitter_ns(self, max_jitter_ns: int) -> int:
        """A uniform jitter in [0, max_jitter_ns]."""
        if max_jitter_ns <= 0:
            return 0
        return self._rng.randint(0, max_jitter_ns)
