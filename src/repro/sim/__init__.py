"""Discrete-event simulation core.

The simulator keeps an integer-nanosecond clock and a binary-heap event
queue with deterministic FIFO tie-breaking, so two runs with the same seed
produce byte-identical traces.
"""

from repro.sim.events import Channel, Event, EventQueue
from repro.sim.simulator import Simulator
from repro.sim.timers import Timer
from repro.sim.rng import SeededRandom
from repro.sim.trace import TraceSink, NullTraceSink, ListTraceSink

__all__ = [
    "Channel",
    "Event",
    "EventQueue",
    "Simulator",
    "Timer",
    "SeededRandom",
    "TraceSink",
    "NullTraceSink",
    "ListTraceSink",
]
