"""The simulator: an integer-nanosecond clock driving an event queue."""

from __future__ import annotations

from heapq import (
    heappop as _heappop,
    heapreplace as _heapreplace,
)
from time import perf_counter
from typing import Any, Callable, Optional

from repro.sim.events import Channel, Event, EventQueue


class Simulator:
    """Discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1000, lambda: print("one microsecond in"))
        sim.run(until=1_000_000)

    Observability hooks (both optional, both None by default so the hot
    loop pays a single hoisted check):

    * ``profiler`` — duck-typed per-callback wall-time profiler
      (:class:`repro.obs.profiling.SimulatorProfiler`); set before
      :meth:`run`.
    * ``telemetry`` — set by :meth:`repro.obs.telemetry.Telemetry.attach`;
      instrumented objects discover it via ``Telemetry.of(sim)``.
    * heartbeat — :meth:`set_heartbeat` installs a worker-liveness hook
      fired every ~N processed events with
      ``(sim_now, lifetime_events, events_per_s, pending_events)``; the
      campaign layer relays it across process boundaries.
    """

    # ``sim.now`` is the single most-read attribute in the simulator;
    # slots keep that lookup off the instance-dict path.
    __slots__ = (
        "now", "_queue", "_running", "_event_count", "profiler", "telemetry",
        "_hb_fn", "_hb_every", "_hb_next", "_hb_last_events", "_hb_last_wall",
        "fluid_spans", "fluid_time_ns",
    )

    def __init__(self) -> None:
        self.now: int = 0
        self._queue = EventQueue()
        self._running = False
        self._event_count = 0
        self.profiler: Optional[Any] = None
        self.telemetry: Optional[Any] = None
        # Tiered-fidelity accounting (repro.sim.fastpath): number of
        # fluid spans entered and total simulated time covered by them.
        # Zero on packet-fidelity runs.
        self.fluid_spans: int = 0
        self.fluid_time_ns: int = 0
        self._hb_fn: Optional[Callable[[int, int, float, int], None]] = None
        self._hb_every: int = 0
        self._hb_next: int = 1 << 62
        self._hb_last_events: int = 0
        self._hb_last_wall: float = 0.0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` ``delay`` ns from now. ``delay`` must be >= 0.

        Delegates to :meth:`EventQueue.push` — the single one-shot
        schedule body every former inline copy now shares. The returned
        event is pinned (never pooled), so ``event.cancel()`` stays
        safe to call at any later point.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, fn, args)

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        return self._queue.push(time, fn, args)

    def channel(self, name: str = "channel") -> Channel:
        """Create a FIFO :class:`~repro.sim.events.Channel` on this
        simulator's queue — for sources whose scheduled times never
        decrease (serializers, propagation pipes, circuit paths)."""
        return self._queue.channel(name)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already fired or cancelled).

        Equivalent to ``event.cancel()`` — the event itself keeps the
        queue's live count exact, so either spelling is safe."""
        event.cancel()

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def set_heartbeat(self, fn: Callable[[int, int, float, int], None], every_events: int) -> None:
        """Install a liveness hook: ``fn(sim_now, lifetime_events,
        events_per_s, pending_events)`` fires every ``every_events``
        processed events (checked between timestamps, so the cadence is
        approximate; same-timestamp batches never split).

        The hook is None by default and its check is hoisted once per
        run, so an un-heartbeated run pays a single pointer comparison
        per timestamp — see docs/performance.md for the measured cost.
        """
        if every_events < 1:
            raise ValueError("every_events must be >= 1")
        self._hb_fn = fn
        self._hb_every = every_events
        self._hb_next = self._event_count + every_events
        self._hb_last_events = self._event_count
        self._hb_last_wall = perf_counter()

    def clear_heartbeat(self) -> None:
        self._hb_fn = None
        self._hb_next = 1 << 62

    def flush_heartbeat(self) -> None:
        """Fire the heartbeat hook immediately (used at end of run so
        every executed run emits at least one heartbeat)."""
        if self._hb_fn is not None:
            self._fire_heartbeat(self._event_count)

    def _fire_heartbeat(self, total_events: int) -> None:
        wall = perf_counter()
        delta_wall = wall - self._hb_last_wall
        delta_events = total_events - self._hb_last_events
        events_per_s = delta_events / delta_wall if delta_wall > 0 else 0.0
        self._hb_last_events = total_events
        self._hb_last_wall = wall
        self._hb_next = total_events + self._hb_every
        self._hb_fn(self.now, total_events, events_per_s, len(self._queue))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the number of events processed.

        When the run reaches ``until`` (queue drained up to the horizon),
        the clock is advanced to ``until`` so that subsequent relative
        scheduling behaves intuitively. A run cut short by ``max_events``
        or :meth:`stop` does **not** advance the clock — events are still
        pending before the horizon, and jumping past them would make them
        fire in the past (the chunked watchdog relies on this).

        The loop works on the event queue's heap directly: lazy discard
        of cancelled entries, the ``until`` horizon check, and the pop
        are fused into one pass, and events sharing a timestamp are
        popped in a batch that skips the horizon re-check (the deadline
        was already cleared for that instant). Two channel/pool duties
        are fused in as well (``Channel._promote`` and
        ``EventQueue.recycle`` stay as the reference implementations):

        * every popped or discarded channel head immediately promotes
          its successor into the heap (before the callback runs, so the
          callback sees its channel registered and appends in O(1)) —
          and because the successor always orders strictly after the
          popped head, pop+promote fuse into a single ``heapreplace``
          (one sift instead of two);
        * fired, uncancelled pool-eligible events (``gen >= 0``) go back
          to the free list with a bumped generation stamp.
        """
        processed = 0
        self._running = True
        profiler = self.profiler
        if profiler is not None:
            profiler.run_started()
        hb_fn = self._hb_fn
        base_events = self._event_count
        queue = self._queue
        heap = queue._heap
        heappop = _heappop
        heapreplace = _heapreplace
        pool = queue._pool
        limit = max_events if max_events is not None else (1 << 62)
        horizon = until if until is not None else (1 << 62)
        drained = False
        try:
            while self._running:
                if processed >= limit:
                    break
                if not heap:
                    drained = True
                    break
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    heappop(heap)
                    channel = event._channel
                    if channel is not None:
                        event._channel = None
                        channel._promote()
                    continue
                time = entry[0]
                if time > horizon:
                    drained = True
                    break
                channel = event._channel
                if channel is None:
                    heappop(heap)
                else:
                    # Promote before firing: the callback may push more
                    # entries onto this channel and must find it in its
                    # steady state (head registered, deque for the rest).
                    # The successor orders strictly after the popped
                    # head, so pop+promote is one heapreplace. The slow
                    # path (cancelled successor runs) stays in _promote.
                    event._channel = None
                    dq = channel._deque
                    if dq:
                        nxt_entry = dq[0]
                        nxt = nxt_entry[2]
                        if not nxt.cancelled:
                            dq.popleft()
                            channel._head = nxt
                            heapreplace(heap, nxt_entry)
                            queue.heap_pushes += 1
                        else:
                            heappop(heap)
                            channel._promote()
                    else:
                        channel._head = None
                        heappop(heap)
                queue._live -= 1
                event._queue = None
                self.now = time
                if profiler is None:
                    event.fn(*event.args)
                else:
                    started = perf_counter()
                    event.fn(*event.args)
                    profiler.record(event.fn, perf_counter() - started)
                processed += 1
                if event.gen >= 0 and not event.cancelled:
                    # EventQueue.recycle inlined: bump the generation so
                    # stale (event, gen) holders mismatch, drop refs.
                    event.gen += 1
                    event.fn = None
                    event.args = None
                    pool.append(event)
                # Batch: drain events scheduled for this same instant
                # without re-checking the horizon.
                while self._running and heap and heap[0][0] == time:
                    if processed >= limit:
                        break
                    event = heap[0][2]
                    if event.cancelled:
                        heappop(heap)
                        channel = event._channel
                        if channel is not None:
                            event._channel = None
                            channel._promote()
                        continue
                    channel = event._channel
                    if channel is None:
                        heappop(heap)
                    else:
                        event._channel = None
                        dq = channel._deque
                        if dq:
                            nxt_entry = dq[0]
                            nxt = nxt_entry[2]
                            if not nxt.cancelled:
                                dq.popleft()
                                channel._head = nxt
                                heapreplace(heap, nxt_entry)
                                queue.heap_pushes += 1
                            else:
                                heappop(heap)
                                channel._promote()
                        else:
                            channel._head = None
                            heappop(heap)
                    queue._live -= 1
                    event._queue = None
                    if profiler is None:
                        event.fn(*event.args)
                    else:
                        started = perf_counter()
                        event.fn(*event.args)
                        profiler.record(event.fn, perf_counter() - started)
                    processed += 1
                    if event.gen >= 0 and not event.cancelled:
                        event.gen += 1
                        event.fn = None
                        event.args = None
                        pool.append(event)
                # Heartbeat: checked once per drained timestamp (cheap
                # pointer test when no hook is installed, the default).
                if hb_fn is not None and base_events + processed >= self._hb_next:
                    self._fire_heartbeat(base_events + processed)
        finally:
            self._running = False
            self._event_count += processed
            if profiler is not None:
                profiler.run_finished(processed)
                hook = getattr(profiler, "record_event_core", None)
                if hook is not None:
                    hook(queue.stats())
        if drained and until is not None and self.now < until:
            self.now = until
        return processed

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._running = False

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        return self._event_count

    def event_core_stats(self) -> dict:
        """Event-core counters: heap pushes, peak heap size, pool hit
        rate (see :meth:`repro.sim.events.EventQueue.stats`), plus the
        lifetime processed-event count."""
        stats = self._queue.stats()
        stats["processed_events"] = self._event_count
        stats["pending_events"] = len(self._queue)
        stats["fluid_spans"] = self.fluid_spans
        stats["fluid_time_ns"] = self.fluid_time_ns
        return stats
