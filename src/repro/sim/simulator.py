"""The simulator: an integer-nanosecond clock driving an event queue."""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue


class Simulator:
    """Discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1000, lambda: print("one microsecond in"))
        sim.run(until=1_000_000)

    Observability hooks (both optional, both None by default so the hot
    loop pays a single hoisted check):

    * ``profiler`` — duck-typed per-callback wall-time profiler
      (:class:`repro.obs.profiling.SimulatorProfiler`); set before
      :meth:`run`.
    * ``telemetry`` — set by :meth:`repro.obs.telemetry.Telemetry.attach`;
      instrumented objects discover it via ``Telemetry.of(sim)``.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue = EventQueue()
        self._running = False
        self._event_count = 0
        self.profiler: Optional[Any] = None
        self.telemetry: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` ``delay`` ns from now. ``delay`` must be >= 0."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, fn, args)

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        return self._queue.push(time, fn, args)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already fired or cancelled).

        Equivalent to ``event.cancel()`` — the event itself keeps the
        queue's live count exact, so either spelling is safe."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the number of events processed.

        When stopping at ``until``, the clock is advanced to ``until`` so
        that subsequent relative scheduling behaves intuitively.
        """
        processed = 0
        self._running = True
        profiler = self.profiler
        if profiler is not None:
            profiler.run_started()
        try:
            while self._running:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                assert event is not None
                self.now = event.time
                if profiler is None:
                    event.fn(*event.args)
                else:
                    started = perf_counter()
                    event.fn(*event.args)
                    profiler.record(event.fn, perf_counter() - started)
                processed += 1
                self._event_count += 1
        finally:
            self._running = False
            if profiler is not None:
                profiler.run_finished(processed)
        if until is not None and self.now < until:
            self.now = until
        return processed

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._running = False

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        return self._event_count
