"""The simulator: an integer-nanosecond clock driving an event queue."""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from time import perf_counter
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue

_new_event = object.__new__


class Simulator:
    """Discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1000, lambda: print("one microsecond in"))
        sim.run(until=1_000_000)

    Observability hooks (both optional, both None by default so the hot
    loop pays a single hoisted check):

    * ``profiler`` — duck-typed per-callback wall-time profiler
      (:class:`repro.obs.profiling.SimulatorProfiler`); set before
      :meth:`run`.
    * ``telemetry`` — set by :meth:`repro.obs.telemetry.Telemetry.attach`;
      instrumented objects discover it via ``Telemetry.of(sim)``.
    """

    # ``sim.now`` is the single most-read attribute in the simulator;
    # slots keep that lookup off the instance-dict path.
    __slots__ = ("now", "_queue", "_running", "_event_count", "profiler", "telemetry")

    def __init__(self) -> None:
        self.now: int = 0
        self._queue = EventQueue()
        self._running = False
        self._event_count = 0
        self.profiler: Optional[Any] = None
        self.telemetry: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` ``delay`` ns from now. ``delay`` must be >= 0.

        The queue push is inlined (same layout as
        :meth:`EventQueue.push`): this runs a few hundred thousand times
        per simulated second, so it pays to skip one call layer.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        queue = self._queue
        time = self.now + delay
        seq = queue._seq
        # Event built via __new__ + slot stores: skips the __init__
        # frame on a path that runs once per scheduled event.
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event._queue = queue
        queue._seq = seq + 1
        _heappush(queue._heap, (time, seq, event))
        queue._live += 1
        return event

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        queue = self._queue
        seq = queue._seq
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event._queue = queue
        queue._seq = seq + 1
        _heappush(queue._heap, (time, seq, event))
        queue._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already fired or cancelled).

        Equivalent to ``event.cancel()`` — the event itself keeps the
        queue's live count exact, so either spelling is safe."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the number of events processed.

        When the run reaches ``until`` (queue drained up to the horizon),
        the clock is advanced to ``until`` so that subsequent relative
        scheduling behaves intuitively. A run cut short by ``max_events``
        or :meth:`stop` does **not** advance the clock — events are still
        pending before the horizon, and jumping past them would make them
        fire in the past (the chunked watchdog relies on this).

        The loop works on the event queue's heap directly: lazy discard
        of cancelled entries, the ``until`` horizon check, and the pop
        are fused into one pass, and events sharing a timestamp are
        popped in a batch that skips the horizon re-check (the deadline
        was already cleared for that instant).
        """
        processed = 0
        self._running = True
        profiler = self.profiler
        if profiler is not None:
            profiler.run_started()
        queue = self._queue
        heap = queue._heap
        heappop = _heappop
        limit = max_events if max_events is not None else (1 << 62)
        horizon = until if until is not None else (1 << 62)
        drained = False
        try:
            while self._running:
                if processed >= limit:
                    break
                if not heap:
                    drained = True
                    break
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    heappop(heap)
                    continue
                time = entry[0]
                if time > horizon:
                    drained = True
                    break
                heappop(heap)
                queue._live -= 1
                event._queue = None
                self.now = time
                if profiler is None:
                    event.fn(*event.args)
                else:
                    started = perf_counter()
                    event.fn(*event.args)
                    profiler.record(event.fn, perf_counter() - started)
                processed += 1
                # Batch: drain events scheduled for this same instant
                # without re-checking the horizon.
                while self._running and heap and heap[0][0] == time:
                    if processed >= limit:
                        break
                    event = heap[0][2]
                    if event.cancelled:
                        heappop(heap)
                        continue
                    heappop(heap)
                    queue._live -= 1
                    event._queue = None
                    if profiler is None:
                        event.fn(*event.args)
                    else:
                        started = perf_counter()
                        event.fn(*event.args)
                        profiler.record(event.fn, perf_counter() - started)
                    processed += 1
        finally:
            self._running = False
            self._event_count += processed
            if profiler is not None:
                profiler.run_finished(processed)
        if drained and until is not None and self.now < until:
            self.now = until
        return processed

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._running = False

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        return self._event_count
