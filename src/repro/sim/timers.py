"""Cancellable, restartable timers built on the simulator.

TCP code wants timers with "arm / rearm / cancel" semantics (RTO timer,
RACK reorder timer, TLP probe timer); this wrapper provides them without
each call site juggling raw events.

Restarts are lazy: TCP restarts its RTO/TLP timers on every ACK, almost
always pushing the deadline *further out*, and almost never letting the
timer actually expire. Instead of cancelling and re-inserting a heap
entry per restart, the timer keeps its scheduled event and records the
authoritative deadline; if the event fires before the deadline it
re-arms itself for the remainder (a cheap no-op event) — the callback
only ever runs at the true deadline. A restart therefore costs two
attribute writes in the common extend-the-deadline case.

Timer events come from the event pool (``EventQueue.push_pooled``), so
steady-state re-arms allocate nothing. The timer is a disciplined
holder: it captures ``event.gen`` at schedule time and re-checks it
before every later access, so once a fired event is recycled into some
unrelated role, the stale reference is treated exactly like "no event"
— a recycled event can never be cancelled or misread through a timer.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event
from repro.sim.simulator import Simulator


class Timer:
    """A single-shot timer that can be restarted or cancelled.

    The callback fires once per arming; restarting an armed timer moves
    its deadline. The timer never fires after :meth:`cancel`.
    """

    __slots__ = ("_sim", "_fn", "_event", "_gen", "_deadline", "_args", "name")

    def __init__(self, sim: Simulator, fn: Callable[..., Any], name: str = "timer"):
        self._sim = sim
        self._fn = fn
        self._event: Optional[Event] = None
        self._gen = -1
        self._deadline: Optional[int] = None
        self._args: tuple = ()
        self.name = name

    @property
    def armed(self) -> bool:
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[int]:
        """Absolute expiry time, or None when not armed."""
        return self._deadline

    def start(self, delay: int, *args: Any) -> None:
        """(Re)arm the timer ``delay`` ns from now."""
        self._arm(self._sim.now + delay, args)

    def start_at(self, time: int, *args: Any) -> None:
        """(Re)arm the timer at an absolute time."""
        self._arm(time, args)

    def _arm(self, time: int, args: tuple) -> None:
        """The one (re)arm body ``start``/``start_at`` share.

        Fast path first: with a live event already scheduled at or
        before the new deadline, recording the deadline is enough —
        ``_fire`` re-arms for the remainder. Only a deadline moved
        *earlier* than the scheduled event forces a cancel+reschedule.
        """
        self._deadline = time
        self._args = args
        event = self._event
        if event is not None and event.gen == self._gen and not event.cancelled:
            if event.time <= time:
                return  # fires first; _fire re-arms for the remainder
            event.cancel()  # deadline moved earlier: must reschedule
        sim = self._sim
        if time < sim.now:
            raise ValueError(f"cannot schedule at {time} < now {sim.now}")
        event = sim._queue.push_pooled(time, self._fire)
        self._event = event
        self._gen = event.gen

    def cancel(self) -> None:
        self._deadline = None
        self._args = ()
        event = self._event
        if event is not None:
            if event.gen == self._gen and not event.cancelled:
                event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        deadline = self._deadline
        if deadline is None:
            return  # disarmed since this event was scheduled
        if deadline > self._sim.now:
            # Deadline was pushed out since: re-arm for the remainder.
            event = self._sim._queue.push_pooled(deadline, self._fire)
            self._event = event
            self._gen = event.gen
            return
        self._deadline = None
        args = self._args
        self._args = ()
        self._fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.armed:
            return f"<Timer {self.name} armed deadline={self.deadline}>"
        return f"<Timer {self.name} idle>"
