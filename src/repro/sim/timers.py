"""Cancellable, restartable timers built on the simulator.

TCP code wants timers with "arm / rearm / cancel" semantics (RTO timer,
RACK reorder timer, TLP probe timer); this wrapper provides them without
each call site juggling raw events.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event
from repro.sim.simulator import Simulator


class Timer:
    """A single-shot timer that can be restarted or cancelled.

    The callback fires once per arming; restarting an armed timer moves
    its deadline. The timer never fires after :meth:`cancel`.
    """

    def __init__(self, sim: Simulator, fn: Callable[..., Any], name: str = "timer"):
        self._sim = sim
        self._fn = fn
        self._event: Optional[Event] = None
        self.name = name

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def deadline(self) -> Optional[int]:
        """Absolute expiry time, or None when not armed."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: int, *args: Any) -> None:
        """(Re)arm the timer ``delay`` ns from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire, *args)

    def start_at(self, time: int, *args: Any) -> None:
        """(Re)arm the timer at an absolute time."""
        self.cancel()
        self._event = self._sim.at(time, self._fire, *args)

    def cancel(self) -> None:
        if self._event is not None and not self._event.cancelled:
            self._sim.cancel(self._event)
        self._event = None

    def _fire(self, *args: Any) -> None:
        self._event = None
        self._fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.armed:
            return f"<Timer {self.name} armed deadline={self.deadline}>"
        return f"<Timer {self.name} idle>"
