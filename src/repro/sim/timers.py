"""Cancellable, restartable timers built on the simulator.

TCP code wants timers with "arm / rearm / cancel" semantics (RTO timer,
RACK reorder timer, TLP probe timer); this wrapper provides them without
each call site juggling raw events.

Restarts are lazy: TCP restarts its RTO/TLP timers on every ACK, almost
always pushing the deadline *further out*, and almost never letting the
timer actually expire. Instead of cancelling and re-inserting a heap
entry per restart, the timer keeps its scheduled event and records the
authoritative deadline; if the event fires before the deadline it
re-arms itself for the remainder (a cheap no-op event) — the callback
only ever runs at the true deadline. A restart therefore costs two
attribute writes in the common extend-the-deadline case.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event
from repro.sim.simulator import Simulator


class Timer:
    """A single-shot timer that can be restarted or cancelled.

    The callback fires once per arming; restarting an armed timer moves
    its deadline. The timer never fires after :meth:`cancel`.
    """

    __slots__ = ("_sim", "_fn", "_event", "_deadline", "_args", "name")

    def __init__(self, sim: Simulator, fn: Callable[..., Any], name: str = "timer"):
        self._sim = sim
        self._fn = fn
        self._event: Optional[Event] = None
        self._deadline: Optional[int] = None
        self._args: tuple = ()
        self.name = name

    @property
    def armed(self) -> bool:
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[int]:
        """Absolute expiry time, or None when not armed."""
        return self._deadline

    def start(self, delay: int, *args: Any) -> None:
        """(Re)arm the timer ``delay`` ns from now.

        Duplicates :meth:`start_at`'s body rather than delegating: TCP
        restarts its RTO/TLP timers on every ACK, so the extra frame is
        measurable.
        """
        time = self._sim.now + delay
        self._deadline = time
        self._args = args
        event = self._event
        if event is not None and not event.cancelled:
            if event.time <= time:
                return  # fires first; _fire re-arms for the remainder
            event.cancel()  # deadline moved earlier: must reschedule
        self._event = self._sim.at(time, self._fire)

    def start_at(self, time: int, *args: Any) -> None:
        """(Re)arm the timer at an absolute time."""
        self._deadline = time
        self._args = args
        event = self._event
        if event is not None and not event.cancelled:
            if event.time <= time:
                return  # fires first; _fire re-arms for the remainder
            event.cancel()  # deadline moved earlier: must reschedule
        self._event = self._sim.at(time, self._fire)

    def cancel(self) -> None:
        self._deadline = None
        self._args = ()
        if self._event is not None:
            if not self._event.cancelled:
                self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        deadline = self._deadline
        if deadline is None:
            return  # disarmed since this event was scheduled
        if deadline > self._sim.now:
            # Deadline was pushed out since: re-arm for the remainder.
            self._event = self._sim.at(deadline, self._fire)
            return
        self._deadline = None
        args = self._args
        self._args = ()
        self._fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.armed:
            return f"<Timer {self.name} armed deadline={self.deadline}>"
        return f"<Timer {self.name} idle>"
