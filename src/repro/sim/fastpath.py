"""Tiered-fidelity fluid fast path (``fidelity: tiered``).

The packet-level core spends most of its events grinding through steady
in-slot byte delivery — exactly the regime a fluid model captures in
closed form. This module models groups of connections sharing one
cross-rack uplink direction as a fluid system: per-RTT rounds of
proportional capacity allocation, analytic VOQ occupancy, and
closed-form cwnd growth (``CongestionControl.fluid_advance``), with the
real packet-level machinery quiesced (``TCPConnection._fluid_hold``) for
the duration of a *fluid span*.

Lifecycle of a group (one ``(src_rack, dst_rack)`` direction):

1. **tick** — all registered flows eligible (established, CA-open, no
   outstanding loss/recovery, data pending)?  If yes, quiesce senders
   and start draining; otherwise retry later.
2. **drain** — holds stop new sends; in-flight data ACKs out normally.
   Loss appearing mid-drain aborts back to packet mode.
3. **fluid** — once sender scoreboards and the forward VOQ are empty the
   span begins. No per-segment events run; the model integrates lazily:
   every advance (at an interrupt, a fidelity trigger, or the run
   horizon) walks RTT-sized rounds from the last integrated virtual
   time to the simulator's *current* time, so connection state only
   ever reflects times at or before ``sim.now`` and interrupts never
   need to rewind anything.
4. **exit** — re-materializes exact packet state: ``snd_nxt``/
   ``snd_una`` advanced by the delivered bytes (empty scoreboard, so
   the per-path counters stay invariant-consistent), receiver
   ``rcv_nxt``/delivery counters already advanced round-by-round with
   historical timestamps (figure series and FCT hooks fire with
   correct times), holds cleared, sends resumed staggered over ~1 RTT.

Fidelity triggers that end (or prevent) a span:

* ECN mark-threshold crossing on an ECN-marking VOQ (the fluid model
  cannot produce per-packet CE marks);
* explicit interrupts (fault windows, audits) via :meth:`interrupt`;
* the run horizon.

App flow open/close get *per-flow* packet-fidelity transitions instead
of collapsing the whole group's span. A flow opening against a live
span is held from registration (holds gate only data sends), so its
SYN/SYN-ACK/ACK handshake runs packet-level over the real uplink; once
established it is folded into the fluid group at the next admission
poll, with its slow start handled by the closed-form
``fluid_advance``. A flow completing inside the span is re-materialized
exactly on its own (``_materialize_sender``) and its FIN handshake runs
packet-level while the rest of the group stays fluid. Without this,
arrival churn caps fluid coverage: every open would pay a full
drain/re-enter cycle whose packet episode grows with group size,
making long campaigns super-linear in flow count.

Drop-probability crossings do **not** exit the span: a VOQ overflow in
steady state synchronously cuts every contributing window, which the
model applies analytically (``cc.on_congestion_event()`` directly — the
CUBIC implementation reads no clock there) and counts as a *virtual
loss*. No retransmission happens and ``ConnStats.retransmissions`` is
untouched: loss-episode *accounting* (Figure 10 style) needs packet
fidelity, which the runner forces for fault plans, background traffic,
ECN variants, and fail-mode audits (see ``run_experiment``).

Determinism: everything here is seed-free arithmetic over simulator
state, so a tiered run is byte-identical across repeats of the same
config, and a packet run never constructs this class at all.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.addressing import rack_of
from repro.net.queues import fluid_queue_capacity
from repro.obs.telemetry import Telemetry
from repro.tcp.connection import CLOSE_WAIT, ESTABLISHED, TCPConnection
from repro.tcp.state import CaState
from repro.units import SEC

#: Group states.
PACKET = "packet"
DRAINING = "draining"
FLUID = "fluid"

#: Variants whose in-slot dynamics the fluid model represents. ECN-based
#: variants (dctcp) and MPTCP are excluded: CE-mark fractions and
#: subflow scheduling have no closed form here.
FLUID_VARIANTS = ("tdtcp", "tdtcp-unopt", "cubic", "reno")


def forced_packet_report(reasons: List[str]) -> dict:
    """fidelity_report payload for a tiered-requested run that had to
    run at packet fidelity (shape-identical to
    :meth:`FluidFastPath.finish_report`)."""
    return {
        "mode": "packet",
        "forced_packet": True,
        "forced_reasons": list(reasons),
        "fluid_spans": 0,
        "fluid_time_ns": 0,
        "virtual_losses": 0,
        "exit_reasons": {},
        "groups": 0,
    }


class FluidFlow:
    """Fast-path view of one sender->receiver connection pair."""

    __slots__ = (
        "key", "sender", "receiver", "remaining", "span_bytes", "_acc",
        "admitted", "established",
    )

    def __init__(self, key, sender: TCPConnection, receiver: TCPConnection):
        self.key = key
        self.sender = sender
        self.receiver = receiver
        self.remaining: Optional[int] = None  # None = unlimited backlog
        self.span_bytes = 0       # integer bytes delivered this span
        self._acc = 0.0           # fractional-byte accumulator
        self.admitted = False     # part of the current span's fluid set
        self.established = False  # has ever been seen ESTABLISHED


class _Group:
    """All fluid flows sharing one uplink direction."""

    __slots__ = (
        "pair", "uplink", "flows", "state", "last_ns", "q_pkts",
        "last_cut_ns", "span_event", "retry_event", "admit_event",
        "drain_polls", "span_start_ns",
    )

    def __init__(self, pair: Tuple[int, int], uplink):
        self.pair = pair
        self.uplink = uplink
        self.flows: Dict[object, FluidFlow] = {}
        self.state = PACKET
        self.last_ns = 0
        self.q_pkts = 0.0
        self.last_cut_ns = -(1 << 62)
        self.span_event = None
        self.retry_event = None
        self.admit_event = None
        self.drain_polls = 0
        self.span_start_ns = 0


class FluidFastPath:
    """Per-run fluid fast-path coordinator (one per tiered run)."""

    #: Drain poll cadence and bound: polls are ~RTT/5 apart and a drain
    #: that outlives a whole schedule week aborts back to packet mode.
    DRAIN_POLL_NS = 20_000
    MAX_DRAIN_POLLS = 96

    #: Post-abort / ineligible retry cadence (~1 packet RTT).
    RETRY_NS = 100_000

    def __init__(
        self,
        testbed,
        run_until_ns: int,
        occupancy_hook: Optional[Callable[[int, int], None]] = None,
        occupancy_pair: Tuple[int, int] = (0, 1),
    ):
        self.testbed = testbed
        self.sim = testbed.sim
        self.config = testbed.config
        self.schedule = testbed.schedule
        self.run_until_ns = run_until_ns
        self.occupancy_hook = occupancy_hook
        self.occupancy_pair = occupancy_pair
        self.groups: Dict[Tuple[int, int], _Group] = {}
        # Accounting surfaced through the run's fidelity_report.
        self.spans = 0
        self.fluid_time_ns = 0
        self.virtual_losses = 0
        self.exit_reasons: Dict[str, int] = {}
        telemetry = Telemetry.of(self.sim)
        self._tp_span = telemetry.tracepoint("fastpath:span")
        self._tp_vloss = telemetry.tracepoint("fastpath:virtual_loss")
        self._mss = self.config.mss
        self._host_rate = self.config.host_link_rate_bps
        # The schedule driver's epoch: set once the testbed starts.
        self._base_ns = 0

    # ------------------------------------------------------------------
    # Registration (runner for bulk flows, engine for churn)
    # ------------------------------------------------------------------
    def _group_for(self, src_rack: int, dst_rack: int) -> _Group:
        pair = (src_rack, dst_rack)
        group = self.groups.get(pair)
        if group is None:
            group = _Group(pair, self.testbed.uplinks[src_rack])
            self.groups[pair] = group
        return group

    def register_flow(self, sender: TCPConnection, receiver: TCPConnection) -> None:
        """Add a sender->receiver pair to its direction's group. Against
        a live (or draining) span the newcomer is held from birth: the
        handshake runs packet-level (holds gate only data sends) and the
        admission poll folds the flow into the fluid set once it is
        established, so arrival churn never collapses the span."""
        src_rack = rack_of(sender.host.address)
        dst_rack = rack_of(receiver.host.address)
        if src_rack == dst_rack:
            return  # intra-rack traffic never crosses the fabric
        group = self._group_for(src_rack, dst_rack)
        group.flows[sender.flow_key] = FluidFlow(sender.flow_key, sender, receiver)
        if group.state in (DRAINING, FLUID):
            sender._fluid_hold = True
            self._schedule_admit(group)
        else:
            self._schedule_retry(group)

    def unregister_flow(self, sender: TCPConnection) -> None:
        """Remove a pair (idempotent — completed flows are evicted by
        the fast path itself before the engine's cleanup runs)."""
        for group in self.groups.values():
            flow = group.flows.get(sender.flow_key)
            if flow is None or flow.sender is not sender:
                continue
            if group.state == FLUID and flow.admitted:
                self._exit_span(group, "unregister")
            flow = group.flows.pop(sender.flow_key, None)
            if flow is not None:
                flow.sender._fluid_hold = False
            return

    def start(self) -> None:
        """Arm entry attempts; call after ``testbed.start()`` so the
        schedule epoch is known."""
        self._base_ns = self.testbed.driver._base_ns
        for group in self.groups.values():
            self._schedule_retry(group, delay_ns=0)

    # ------------------------------------------------------------------
    # Entry: eligibility, quiesce, drain
    # ------------------------------------------------------------------
    def _eligible(self, flow: FluidFlow) -> bool:
        sender = flow.sender
        if sender.state not in (ESTABLISHED, CLOSE_WAIT) or sender.fin_sent:
            return False
        if flow.receiver.state not in (ESTABLISHED, CLOSE_WAIT):
            return False
        if sender._retx_pending:
            return False
        for path in sender.paths:
            if path.ca_state != CaState.OPEN or path.lost_out or path.retrans_out:
                return False
        return self._has_data(sender)

    @staticmethod
    def _has_data(sender: TCPConnection) -> bool:
        buf = sender.send_buffer
        if buf.unlimited:
            return True
        return buf.written - (sender.snd_nxt - sender._stream_base) > 0

    @staticmethod
    def _refresh(flow: FluidFlow) -> None:
        if not flow.established and flow.sender.state in (ESTABLISHED, CLOSE_WAIT):
            flow.established = True

    def _dead(self, flow: FluidFlow) -> bool:
        """Flows past their useful life (closing or closed): evicted so
        churn never blocks a group on finished transfers. A flow that
        has never established is *nascent* (mid-handshake), not dead."""
        sender = flow.sender
        if sender.fin_sent:
            return True
        return flow.established and sender.state not in (ESTABLISHED, CLOSE_WAIT)

    def _schedule_retry(self, group: _Group, delay_ns: Optional[int] = None) -> None:
        if group.retry_event is not None or group.state != PACKET:
            return
        group.retry_event = self.sim.schedule(
            self.RETRY_NS if delay_ns is None else delay_ns, self._tick, group
        )

    def _tick(self, group: _Group) -> None:
        group.retry_event = None
        if group.state != PACKET:
            return
        for flow in group.flows.values():
            self._refresh(flow)
        for key in [k for k, f in group.flows.items() if self._dead(f)]:
            del group.flows[key]
        if not group.flows:
            return
        # Nascent flows (still in handshake) don't veto entry — they are
        # held through the drain and folded in once established.
        ready = [f for f in group.flows.values() if f.established]
        if not ready or not all(self._eligible(f) for f in ready):
            self._schedule_retry(group)
            return
        group.state = DRAINING
        group.drain_polls = 0
        for flow in group.flows.values():
            flow.sender._fluid_hold = True
        self._drain_poll(group)

    def _abort_drain(self, group: _Group) -> None:
        group.state = PACKET
        for flow in group.flows.values():
            flow.sender._fluid_hold = False
            flow.sender._maybe_send()
        self._schedule_retry(group)

    def _drain_poll(self, group: _Group) -> None:
        if group.state != DRAINING:
            return
        for flow in group.flows.values():
            self._refresh(flow)
        # Nascent flows are exempt from the drain checks: their
        # handshake packets ride the uplink but they carry no data.
        active = [f for f in group.flows.values() if f.established]
        for flow in active:
            sender = flow.sender
            if sender._retx_pending or any(
                p.lost_out or p.retrans_out or p.ca_state != CaState.OPEN
                for p in sender.paths
            ):
                # Loss surfaced while quiescing: this group is not in
                # steady transfer — back to packet mode, retry later.
                self._abort_drain(group)
                return
        drained = group.uplink.is_idle() and all(
            f.sender.total_packets_out() == 0 and not f.sender.segments
            for f in active
        )
        if drained:
            self._enter_span(group)
            return
        group.drain_polls += 1
        if group.drain_polls > self.MAX_DRAIN_POLLS:
            self._abort_drain(group)
            return
        self.sim.schedule(self.DRAIN_POLL_NS, self._drain_poll, group)

    # ------------------------------------------------------------------
    # The span
    # ------------------------------------------------------------------
    def _enter_span(self, group: _Group) -> None:
        if not group.flows:
            group.state = PACKET
            return
        now = self.sim.now
        group.state = FLUID
        group.last_ns = now
        group.span_start_ns = now
        group.q_pkts = 0.0
        pending = False
        for flow in group.flows.values():
            self._refresh(flow)
            if flow.established and self._eligible(flow):
                self._admit(group, flow)
            else:
                # Mid-handshake (or not yet carrying data): stays held
                # and joins via the admission poll once established.
                flow.admitted = False
                pending = True
        self.spans += 1
        self.sim.fluid_spans += 1
        if self._tp_span.enabled:
            self._tp_span.emit(
                now, phase="enter", pair=group.pair, flows=len(group.flows)
            )
        horizon = min(self.run_until_ns, 1 << 62)
        if horizon > now:
            group.span_event = self.sim.at(horizon, self._on_horizon, group)
        if pending:
            self._schedule_admit(group)

    # ------------------------------------------------------------------
    # Mid-span admission (flow-open fidelity transition)
    # ------------------------------------------------------------------
    def _admit(self, group: _Group, flow: FluidFlow) -> None:
        """Fold an established, drained flow into the fluid set. Holds
        from registration guarantee no data is in flight, so the span's
        entry invariant (empty scoreboard, ``snd_una == snd_nxt``) holds
        per-flow at admission time too."""
        buf = flow.sender.send_buffer
        flow.remaining = (
            None
            if buf.unlimited
            else buf.written - (flow.sender.snd_nxt - flow.sender._stream_base)
        )
        flow.span_bytes = 0
        flow._acc = 0.0
        flow.admitted = True

    def _schedule_admit(self, group: _Group, delay_ns: Optional[int] = None) -> None:
        if group.admit_event is not None:
            return
        group.admit_event = self.sim.schedule(
            self.RETRY_NS if delay_ns is None else delay_ns,
            self._admit_poll, group,
        )

    def _admit_poll(self, group: _Group) -> None:
        group.admit_event = None
        if group.state == DRAINING:
            # Entry partitioning happens in _enter_span; just keep the
            # poll alive until the span starts (or the drain aborts,
            # which clears every hold and hands back to the retry path).
            self._schedule_admit(group)
            return
        if group.state != FLUID:
            return  # exit already cleared holds; retry machinery owns us
        self._advance_group(group, self.sim.now)
        if group.state != FLUID:
            return  # the advance crossed an ECN threshold and exited
        for flow in [f for f in group.flows.values() if not f.admitted]:
            self._refresh(flow)
            sender = flow.sender
            if self._dead(flow):
                group.flows.pop(flow.key, None)
                sender._fluid_hold = False
                continue
            if not flow.established:
                continue
            if self._eligible(flow):
                self._admit(group, flow)
            elif not self._has_data(sender):
                # Established but with nothing (left) to transfer: hand
                # it back to packet level so its FIN can run while the
                # span continues for the rest of the group.
                group.flows.pop(flow.key, None)
                sender._fluid_hold = False
                sender._maybe_send()
        if any(not f.admitted for f in group.flows.values()):
            self._schedule_admit(group)

    def _on_horizon(self, group: _Group) -> None:
        group.span_event = None
        if group.state == FLUID:
            self._exit_span(group, "horizon", resume=False)

    def interrupt(self, src_rack: int, dst_rack: int, reason: str = "interrupt") -> None:
        """End the fluid span (if any) on one direction — packet-level
        fidelity is needed there *now*."""
        group = self.groups.get((src_rack, dst_rack))
        if group is not None and group.state == FLUID:
            self._exit_span(group, reason)

    def finish_report(self, forced: bool, reasons: List[str]) -> dict:
        """The run-level fidelity_report payload."""
        return {
            "mode": "packet" if forced else "tiered",
            "forced_packet": forced,
            "forced_reasons": list(reasons),
            "fluid_spans": self.spans,
            "fluid_time_ns": self.fluid_time_ns,
            "virtual_losses": self.virtual_losses,
            "exit_reasons": dict(sorted(self.exit_reasons.items())),
            "groups": len(self.groups),
        }

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def _active_path(self, sender: TCPConnection, tdn: int):
        paths = sender.paths
        if (
            len(paths) > 1
            and tdn < len(paths)
            and not getattr(sender, "downgraded", False)
        ):
            return paths[tdn]
        return paths[sender.current_path_index]

    def _advance_group(self, group: _Group, to_ns: int) -> None:
        """Integrate the fluid model from ``group.last_ns`` to ``to_ns``
        in RTT-sized rounds, mutating the real cc objects and receiver
        counters as it goes (timestamps are historical — always at or
        before ``sim.now``)."""
        t = group.last_ns
        if to_ns <= t:
            return
        mss = self._mss
        mss_bits = mss * 8
        schedule = self.schedule
        base = self._base_ns
        queue = group.uplink.queue
        cap_pkts = fluid_queue_capacity(queue)
        mark_threshold = getattr(queue, "mark_threshold", None)
        hook = (
            self.occupancy_hook if group.pair == self.occupancy_pair else None
        )
        while t < to_ns and group.flows:
            seg_start, seg_end, tdn = schedule.segment_at(t - base)
            seg_end += base
            end = min(seg_end, to_ns)
            if tdn is None:
                # Night: the uplink is gated — no delivery, no ACK
                # clock, the queue neither fills nor drains.
                t = end
                continue
            rate = group.uplink.rate_for_tdn(tdn)
            base_rtt = self.config.nominal_rtt_ns(tdn)
            pkt_ns = mss_bits * SEC / rate  # serialization ns per MSS
            while t < end and group.flows:
                q = group.q_pkts
                rtt_eff = base_rtt + q * pkt_ns
                dt = min(end - t, rtt_eff)
                if dt <= 0:
                    break
                frac = dt / rtt_eff
                # Per-round demand: the window, capped by what the host
                # access link can carry in one RTT and, for sized flows,
                # by the remaining application bytes.
                host_round = self._host_rate * rtt_eff / SEC / mss_bits
                flows = [f for f in group.flows.values() if f.admitted]
                demands = []
                for flow in flows:
                    path = self._active_path(flow.sender, tdn)
                    d = min(path.cc.cwnd, host_round)
                    if flow.remaining is not None:
                        # ``remaining`` is kept net of delivered bytes by
                        # _deliver, so it alone caps the residual demand.
                        d = min(d, flow.remaining / mss + 1.0)
                    demands.append((flow, path, max(d, 0.0)))
                arriving = sum(d for _f, _p, d in demands) * frac
                served_cap = dt / pkt_ns
                served = min(served_cap, q + arriving)
                q_new = q + arriving - served
                virtual_cut = False
                if q_new > cap_pkts:
                    q_new = cap_pkts
                    # Overflow crossing: a synchronized analytic loss,
                    # at most once per RTT (one congestion event per
                    # window, as the packet-level stack enforces).
                    if t - group.last_cut_ns >= rtt_eff:
                        virtual_cut = True
                        group.last_cut_ns = t
                group.q_pkts = q_new
                if mark_threshold is not None and q_new >= mark_threshold:
                    # ECN crossing: the fluid model cannot CE-mark.
                    # Finish (not _exit_span — no re-advance) right here.
                    group.last_ns = t + int(dt)
                    self._finish_exit(group, "ecn")
                    return
                total_demand = arriving if arriving > 0 else 1.0
                round_end = t + int(dt)
                completed: List[FluidFlow] = []
                for flow, path, d in demands:
                    share = served * (d * frac) / total_demand
                    flow._acc += share * mss
                    delta = int(flow._acc) - flow.span_bytes
                    if flow.remaining is not None and delta >= flow.remaining:
                        # Completion inside the round: interpolate the
                        # finish time within [t, round_end).
                        over = delta - flow.remaining
                        fraction = 1.0 - (over / delta if delta > 0 else 0.0)
                        finish = t + max(int(dt * fraction), 1)
                        self._deliver(flow, flow.remaining, min(finish, round_end))
                        completed.append(flow)
                        continue
                    if delta > 0:
                        self._deliver(flow, delta, round_end)
                    # ACK-clocked growth: scale rounds by the fraction
                    # of the window actually acknowledged during dt.
                    cwnd = path.cc.cwnd
                    acked_rounds = share / cwnd if cwnd > 0 else 0.0
                    if acked_rounds > 0:
                        path.cc.fluid_advance(
                            t, int(acked_rounds * rtt_eff), int(rtt_eff)
                        )
                    if virtual_cut:
                        path.cc.on_congestion_event()
                        self.virtual_losses += 1
                        if self._tp_vloss.enabled:
                            self._tp_vloss.emit(
                                round_end, pair=group.pair, tdn=tdn,
                                cwnd=path.cc.cwnd,
                            )
                for flow in completed:
                    self._materialize_sender(flow)
                    group.flows.pop(flow.key, None)
                if hook is not None:
                    hook(round_end, int(round(q_new)))
                t = round_end
        group.last_ns = min(t, to_ns)

    def _deliver(self, flow: FluidFlow, nbytes: int, time_ns: int) -> None:
        """Advance the receiver by ``nbytes`` in-order bytes at a
        historical timestamp and fire the delivery callbacks (sequence
        collectors, engine FCT accounting)."""
        flow.span_bytes += nbytes
        if flow.remaining is not None:
            flow.remaining -= nbytes
        receiver = flow.receiver
        receiver.recv_buffer.rcv_nxt += nbytes
        receiver.recv_buffer.total_delivered += nbytes
        receiver.stats.bytes_delivered += nbytes
        if receiver.on_delivered is not None:
            receiver.on_delivered(time_ns, receiver.stats.bytes_delivered)

    def _materialize_sender(self, flow: FluidFlow) -> None:
        """Bring the sender's packet-level state up to date with what
        the span delivered: scoreboard stays empty, so advancing both
        ``snd_nxt`` and ``snd_una`` by the delivered bytes leaves every
        per-path counter invariant-consistent."""
        sender = flow.sender
        nbytes = flow.span_bytes
        if nbytes:
            sender.snd_nxt += nbytes
            sender.snd_una = sender.snd_nxt
            sender.stats.bytes_acked += nbytes
            sender.stats.segments_sent += -(-nbytes // self._mss)
        flow.span_bytes = 0
        flow._acc = 0.0
        sender._fluid_hold = False
        sender._maybe_send()

    def _exit_span(self, group: _Group, reason: str, resume: bool = True) -> None:
        """Advance to now, then re-materialize and return the group to
        packet mode."""
        self._advance_group(group, self.sim.now)
        if group.state != FLUID:
            # _advance_group already exited on an ECN crossing.
            return
        self._finish_exit(group, reason, resume)

    def _finish_exit(self, group: _Group, reason: str, resume: bool = True) -> None:
        """Re-materialize every sender, return the group to packet mode,
        and (unless the run is over) arm a re-entry attempt. Sends
        resume staggered over ~1 RTT so the exit burst does not
        synthesize a synchronized drop the packet run would not have
        had. Assumes the group is already advanced to where it should
        exit."""
        now = self.sim.now
        group.state = PACKET
        if group.span_event is not None:
            group.span_event.cancel()
            group.span_event = None
        self.exit_reasons[reason] = self.exit_reasons.get(reason, 0) + 1
        span_ns = now - group.span_start_ns
        self.fluid_time_ns += span_ns
        self.sim.fluid_time_ns += span_ns
        flows = list(group.flows.values())
        stagger = 0
        step = self.config.nominal_rtt_ns(0) // max(len(flows), 1)
        for flow in flows:
            sender = flow.sender
            nbytes = flow.span_bytes
            if nbytes:
                sender.snd_nxt += nbytes
                sender.snd_una = sender.snd_nxt
                sender.stats.bytes_acked += nbytes
                sender.stats.segments_sent += -(-nbytes // self._mss)
            flow.span_bytes = 0
            flow._acc = 0.0
            flow.admitted = False
            sender._fluid_hold = False
            if resume:
                if stagger == 0:
                    sender._maybe_send()
                else:
                    self.sim.schedule(stagger, sender._maybe_send)
                stagger += step
        if self._tp_span.enabled:
            self._tp_span.emit(
                now, phase="exit", pair=group.pair, reason=reason,
                span_ns=span_ns, flows=len(flows),
            )
        if resume:
            self._schedule_retry(group)
