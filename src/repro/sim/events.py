"""Event, channel, and event-queue primitives.

Events are ordered by (time, insertion sequence). The insertion sequence
guarantees that events scheduled for the same instant fire in the order
they were scheduled, which keeps simulations deterministic without
relying on heap implementation details.

The heap stores ``(time, seq, event)`` tuples rather than the events
themselves: tuple comparison runs entirely in C and never reaches the
event element because ``(time, seq)`` is unique, so the hot loop pays no
Python-level ``__lt__`` dispatch per sift step. ``Event`` keeps a
comparison operator only for external callers that sort event lists.

Two structural optimisations keep the heap small and the hot path
allocation-free:

* **Channels** (:class:`Channel`) — a FIFO for an event source whose
  scheduled times are monotonically non-decreasing (a link serializer,
  a propagation pipe, one TDN's circuit path). Only the channel's
  *head* lives in the global heap; the rest wait in a local deque. The
  heap therefore holds O(channels + one-shot events) entries instead of
  O(in-flight packets), every sift touches a far shallower heap, and a
  push to a busy channel is an O(1) deque append. ``seq`` is still
  assigned from the queue's global counter at push time, so the firing
  order — and every trace byte — is identical to a plain heap.

* **Event pooling** — fired, uncancelled pool-eligible events are
  recycled through a free list instead of reallocated. Each recycle
  bumps the event's ``gen`` stamp, so a holder that captured
  ``(event, gen)`` at schedule time (see :class:`repro.sim.timers.Timer`)
  can detect staleness and never cancels a recycled event by accident.
  Events handed to arbitrary callers (``EventQueue.push``,
  ``Simulator.schedule``/``at``) are *pinned* (``gen == -1``) and never
  recycled, so the public ``event.cancel()`` contract is unchanged.

Setting ``REPRO_SIM_LEGACY_HEAP=1`` in the environment disables both
mechanisms for queues created afterwards: every push goes straight to
the heap with a fresh pinned event, which is exactly the pre-channel
behaviour (used by the differential determinism tests and as an escape
hatch — see docs/performance.md).
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, List, Optional

_new_event = object.__new__


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.at`; user code normally only keeps a reference in
    order to :meth:`cancel` it. Calling :meth:`cancel` directly is safe:
    the event keeps a back-reference to its queue so the live count
    stays exact (no separate bookkeeping call to forget).

    ``gen`` is the pooling generation stamp: ``-1`` marks a *pinned*
    event that is never recycled (everything the public scheduling APIs
    return), ``>= 0`` a pool-eligible event whose stamp increments each
    time the free list recycles it. Internal holders compare a captured
    stamp before touching the event again.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "gen", "_queue", "_channel")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.gen = -1
        self._queue: Optional["EventQueue"] = None
        self._channel: Optional["Channel"] = None

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped.

        Cancellation is O(1) and idempotent; the heap (or channel
        deque) entry is lazily discarded by the queue, the live count
        is adjusted here. ``_channel`` is deliberately left intact: a
        cancelled channel head must still promote its successor when
        the heap finally discards it.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._live -= 1
            self._queue = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} #{self.seq} g{self.gen} {name}{state}>"


class Channel:
    """A FIFO event source with monotonically non-decreasing times.

    Created via :meth:`EventQueue.channel` / :meth:`Simulator.channel`.
    Only the earliest pending entry (the *head*) is registered in the
    owning queue's heap; later entries wait in a local deque and are
    promoted one at a time as heads leave the heap. Because entry times
    never decrease and ``seq`` is assigned from the queue's global
    counter at push time, promotion-on-pop preserves the exact global
    (time, seq) firing order of a flat heap.

    The deque stores ready-made ``(time, seq, event)`` heap entries, so
    promotion moves a tuple straight into the heap without touching the
    event object.

    Pushing a time earlier than the channel's current tail raises
    ``ValueError`` — the monotonicity contract is what makes the local
    deque sorted by construction, so a violation would silently corrupt
    event ordering and must fail loudly instead.
    """

    __slots__ = ("_queue", "_deque", "_head", "_tail_time", "name")

    def __init__(self, queue: "EventQueue", name: str = "channel"):
        self._queue = queue
        self._deque: deque = deque()
        self._head: Optional[Event] = None
        self._tail_time = -1
        self.name = name

    def __len__(self) -> int:
        """Live (non-cancelled) entries currently pending on this channel."""
        head = self._head
        count = 1 if head is not None and not head.cancelled else 0
        return count + sum(1 for entry in self._deque if not entry[2].cancelled)

    def push(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time`` on this channel.

        O(1) when the channel already has a registered head (the common
        case for a busy source); one shallow heap push otherwise. The
        returned event is pool-eligible: do not hold it across its fire
        time without capturing ``event.gen`` (see :class:`Event`).
        """
        queue = self._queue
        if queue._legacy:
            return queue.push(time, fn, args)
        if time < self._tail_time:
            raise ValueError(
                f"channel {self.name!r}: non-monotonic push "
                f"(time {time} < tail {self._tail_time})"
            )
        self._tail_time = time
        seq = queue._seq
        queue._seq = seq + 1
        pool = queue._pool
        if pool:
            event = pool.pop()
            queue.pool_hits += 1
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            queue.pool_misses += 1
            event = _new_event(Event)
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            event.gen = 0
        event._queue = queue
        event._channel = self
        queue._live += 1
        entry = (time, seq, event)
        if self._head is None:
            self._head = event
            heap = queue._heap
            _heappush(heap, entry)
            queue.heap_pushes += 1
            length = len(heap)
            if length > queue.max_heap_len:
                queue.max_heap_len = length
        else:
            self._deque.append(entry)
        return event

    def _promote(self) -> None:
        """Register the next live deque entry in the global heap.

        Called (by the queue / run loop) immediately after this
        channel's previous head left the heap — whether it fired or was
        lazily discarded as cancelled. Cancelled deque entries are
        dropped here; their live-count decrement already happened in
        :meth:`Event.cancel`.
        """
        dq = self._deque
        while dq:
            entry = dq.popleft()
            event = entry[2]
            if event.cancelled:
                event._channel = None
                continue
            self._head = event
            queue = self._queue
            heap = queue._heap
            _heappush(heap, entry)
            queue.heap_pushes += 1
            length = len(heap)
            if length > queue.max_heap_len:
                queue.max_heap_len = length
            return
        self._head = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name} pending={len(self)}>"


class EventQueue:
    """Min-heap of ``(time, seq, Event)`` entries with lazy deletion,
    per-source channels, and an event free-list pool."""

    __slots__ = (
        "_heap", "_seq", "_live", "_pool", "_channels", "_legacy",
        "heap_pushes", "max_heap_len", "pool_hits", "pool_misses",
    )

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._live = 0
        self._pool: List[Event] = []
        self._channels: List[Channel] = []
        self._legacy = os.environ.get("REPRO_SIM_LEGACY_HEAP", "") not in ("", "0")
        # Event-core counters (cheap: bumped only on actual heap pushes
        # and pool transitions, both of which the channels make rare or
        # already pay an allocation-scale cost).
        self.heap_pushes = 0
        self.max_heap_len = 0
        self.pool_hits = 0
        self.pool_misses = 0

    def __len__(self) -> int:
        return self._live

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``; returns the event.

        This is THE one-shot schedule body: ``Simulator.schedule`` and
        ``Simulator.at`` delegate here (no more hand-inlined copies).
        The returned event is pinned (never pooled), so holding it and
        calling :meth:`Event.cancel` later is always safe.
        """
        seq = self._seq
        self._seq = seq + 1
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.fn = fn
        event.args = args
        event.cancelled = False
        event.gen = -1
        event._queue = self
        event._channel = None
        heap = self._heap
        _heappush(heap, (time, seq, event))
        self.heap_pushes += 1
        length = len(heap)
        if length > self.max_heap_len:
            self.max_heap_len = length
        self._live += 1
        return event

    def push_pooled(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """One-shot schedule through the free-list pool.

        For internal holders (timers) that guard every later access
        with a captured ``event.gen`` stamp. Arbitrary callers should
        use :meth:`push`: a pooled event's fields are recycled after it
        fires, so an unguarded ``cancel()`` could kill an unrelated
        future event.
        """
        if self._legacy:
            return self.push(time, fn, args)
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            self.pool_hits += 1
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            self.pool_misses += 1
            event = _new_event(Event)
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            event.gen = 0
        event._queue = self
        event._channel = None
        heap = self._heap
        _heappush(heap, (time, seq, event))
        self.heap_pushes += 1
        length = len(heap)
        if length > self.max_heap_len:
            self.max_heap_len = length
        self._live += 1
        return event

    def channel(self, name: str = "channel") -> Channel:
        """Create (and register) a FIFO channel feeding this queue."""
        ch = Channel(self, name)
        self._channels.append(ch)
        return ch

    def recycle(self, event: Event) -> None:
        """Return a fired, uncancelled pool-eligible event to the pool.

        Bumps ``gen`` so stale ``(event, gen)`` holders mismatch, and
        drops the callback/args references so recycled events never pin
        packets in memory. The run loop inlines this; it is kept as the
        reference implementation (and for :meth:`pop` callers).
        """
        event.gen += 1
        event.fn = None
        event.args = None
        event._channel = None
        self._pool.append(event)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if empty.

        Cancelled entries are lazily discarded here (their live-count
        decrement already happened in :meth:`Event.cancel`); a popped or
        discarded channel head promotes its successor into the heap.
        Popped events are NOT auto-recycled — the caller still needs
        ``fn``/``args``; hand the event to :meth:`recycle` afterwards
        if it is pool-eligible."""
        heap = self._heap
        while heap:
            event = _heappop(heap)[2]
            channel = event._channel
            if channel is not None:
                event._channel = None
                channel._promote()
            if event.cancelled:
                continue
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending event without popping it."""
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if not event.cancelled:
                return entry[0]
            _heappop(heap)
            channel = event._channel
            if channel is not None:
                event._channel = None
                channel._promote()
        return None

    def clear(self) -> None:
        """Drop every pending event, including channel-deque entries.

        Cleared events are marked cancelled, not merely orphaned: a
        caller that kept a reference and later calls ``cancel()`` must
        see an idempotent no-op, not a live-count decrement against
        whatever generation of the queue exists by then. Cleared events
        are never pooled — outstanding references may exist.
        """
        for _time, _seq, event in self._heap:
            event.cancelled = True
            event._queue = None
            event._channel = None
        self._heap.clear()
        for ch in self._channels:
            for _time, _seq, event in ch._deque:
                event.cancelled = True
                event._queue = None
                event._channel = None
            ch._deque.clear()
            ch._head = None
            ch._tail_time = -1
        self._live = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Event-core counters (see docs/performance.md)."""
        hits = self.pool_hits
        total = hits + self.pool_misses
        return {
            "heap_pushes": self.heap_pushes,
            "max_heap_len": self.max_heap_len,
            "heap_len": len(self._heap),
            "pool_hits": hits,
            "pool_misses": self.pool_misses,
            "pool_hit_rate": round(hits / total, 4) if total else None,
            "pool_size": len(self._pool),
            "channels": len(self._channels),
            "legacy_heap": self._legacy,
        }
