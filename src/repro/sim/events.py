"""Event and event-queue primitives.

Events are ordered by (time, insertion sequence). The insertion sequence
guarantees that events scheduled for the same instant fire in the order
they were scheduled, which keeps simulations deterministic without
relying on heap implementation details.

The heap stores ``(time, seq, event)`` tuples rather than the events
themselves: tuple comparison runs entirely in C and never reaches the
event element because ``(time, seq)`` is unique, so the hot loop pays no
Python-level ``__lt__`` dispatch per sift step. ``Event`` keeps a
comparison operator only for external callers that sort event lists.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.at`; user code normally only keeps a reference in
    order to :meth:`cancel` it. Calling :meth:`cancel` directly is safe:
    the event keeps a back-reference to its queue so the live count
    stays exact (no separate bookkeeping call to forget).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_queue")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped.

        Cancellation is O(1) and idempotent; the heap entry is lazily
        discarded by the queue, the live count is adjusted here.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._live -= 1
            self._queue = None

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time} #{self.seq} {name}{state}>"


class EventQueue:
    """Min-heap of ``(time, seq, Event)`` entries with lazy deletion."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``; returns the event."""
        seq = self._seq
        event = Event(time, seq, fn, args)
        event._queue = self
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if empty.

        Cancelled entries are lazily discarded here (their live-count
        decrement already happened in :meth:`Event.cancel`)."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                continue
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending event without popping it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def clear(self) -> None:
        """Drop every pending event.

        Cleared events are marked cancelled, not merely orphaned: a
        caller that kept a reference and later calls ``cancel()`` must
        see an idempotent no-op, not a live-count decrement against
        whatever generation of the queue exists by then.
        """
        for _time, _seq, event in self._heap:
            event.cancelled = True
            event._queue = None
        self._heap.clear()
        self._live = 0
