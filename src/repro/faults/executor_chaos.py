"""Executor chaos: deterministic fault injection for the campaign layer.

:mod:`repro.faults.plan` injects faults *inside* a simulation; this
module injects them *around* it — at the process-pool, result-cache,
and journal layers the crash-safe campaign machinery (checkpoint
sidecar, resume replay, pool rebuild, quarantine) exists to survive.
An :class:`ExecutorFaultPlan` is the same shape as a ``FaultPlan``: a
named, serializable list of specs, each matched deterministically
against ``(run label, attempt)`` (or cache key, for cache faults), so
a chaos campaign replays byte-identically from a JSON file + seed.

Fault kinds (:data:`EXECUTOR_FAULT_CATALOG`):

* ``worker_kill`` — the pool worker SIGKILLs itself, immediately or
  after ``after_events`` simulated events (mid-run). A dead child
  breaks the whole ``ProcessPoolExecutor``; the executor must rebuild
  the pool and retry every casualty.
* ``broken_pool`` — submission raises ``BrokenProcessPool`` directly
  (the pool died between completions).
* ``cache_write_error`` — the result-cache write raises
  ``OSError(ENOSPC)``; the batch must continue uncached.
* ``cache_corrupt`` — the just-written cache entry is truncated in
  place; the *next* read must degrade to a miss, never an error.
* ``slow_worker`` — the worker stalls ``stall_s`` seconds before
  executing (tests heartbeat liveness and drain ordering).
* ``journal_truncate`` — the campaign journal's final record is torn
  in half **after the batch** (the CLI harness applies it once the log
  is closed; truncating under an open append handle would punch
  null-byte holes instead of the torn tail a real SIGKILL leaves).

The executor consumes a plan through an :class:`ExecutorChaos` runtime
via four hooks: ``worker_directive`` (ships a kill/stall directive into
the worker), ``on_submit``, ``on_cache_put``, ``after_cache_put``.
"""

from __future__ import annotations

import errno
import fnmatch
import json
import os
import pathlib
import signal
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlanError
from repro.sim.rng import SeededRandom

__all__ = [
    "EXECUTOR_FAULT_CATALOG",
    "ExecutorChaos",
    "ExecutorFaultPlan",
    "ExecutorFaultSpec",
    "execute_config_dict_chaos",
    "load_executor_fault_plan",
    "truncate_journal_tail",
]

#: kind -> (recognized params, one-line description).
EXECUTOR_FAULT_CATALOG: Dict[str, Tuple[Tuple[str, ...], str]] = {
    "worker_kill": (
        ("after_events",),
        "pool worker SIGKILLs itself (immediately, or mid-run after after_events events)",
    ),
    "broken_pool": (
        (),
        "submission raises BrokenProcessPool (pool died between completions)",
    ),
    "cache_write_error": (
        (),
        "result-cache write raises OSError(ENOSPC); run continues uncached",
    ),
    "cache_corrupt": (
        (),
        "truncate the cache entry just written (next read must be a miss)",
    ),
    "slow_worker": (
        ("stall_s",),
        "worker stalls stall_s seconds before executing",
    ),
    "journal_truncate": (
        (),
        "tear the journal's final record after the batch (applied by the CLI harness)",
    ),
}

#: Kinds that ship a directive into the worker process.
_WORKER_KINDS = ("worker_kill", "slow_worker")


@dataclass(frozen=True)
class ExecutorFaultSpec:
    """One executor-layer fault.

    ``target`` is an ``fnmatch`` glob over run labels (worker/pool
    kinds) or cache keys (cache kinds). ``attempt`` pins the fault to
    one attempt number (``0`` = any attempt). ``count`` bounds how many
    times the spec fires across the campaign (``0`` = unlimited).
    ``probability`` < 1 makes firing a seeded coin flip — deterministic
    per ``(spec, label, attempt)``, independent of execution order.
    """

    kind: str
    target: str = "*"
    attempt: int = 1
    count: int = 1
    probability: float = 1.0
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EXECUTOR_FAULT_CATALOG:
            raise FaultPlanError(
                f"unknown executor fault kind {self.kind!r}; "
                f"known: {sorted(EXECUTOR_FAULT_CATALOG)}"
            )
        if self.attempt < 0:
            raise FaultPlanError(f"{self.kind}: attempt must be >= 0 (0 = any)")
        if self.count < 0:
            raise FaultPlanError(f"{self.kind}: count must be >= 0 (0 = unlimited)")
        if not (0.0 <= self.probability <= 1.0):
            raise FaultPlanError(f"{self.kind}: probability must be in [0, 1]")
        known, _desc = EXECUTOR_FAULT_CATALOG[self.kind]
        unknown = set(self.params) - set(known)
        if unknown:
            raise FaultPlanError(
                f"{self.kind}: unknown params {sorted(unknown)}; known: {list(known)}"
            )
        for name, value in self.params.items():
            if not isinstance(value, (int, float)):
                raise FaultPlanError(f"{self.kind}: param {name} must be numeric")

    def param(self, name: str, default: float) -> float:
        return self.params.get(name, default)

    def to_dict(self) -> dict:
        data: Dict[str, Any] = {"kind": self.kind, "target": self.target}
        if self.attempt != 1:
            data["attempt"] = self.attempt
        if self.count != 1:
            data["count"] = self.count
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutorFaultSpec":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"executor fault spec must be an object, got {type(data).__name__}"
            )
        known = {"kind", "target", "attempt", "count", "probability", "params"}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(f"unknown executor fault spec fields {sorted(unknown)}")
        if "kind" not in data:
            raise FaultPlanError("executor fault spec needs a 'kind'")
        return cls(
            kind=data["kind"],
            target=data.get("target", "*"),
            attempt=int(data.get("attempt", 1)),
            count=int(data.get("count", 1)),
            probability=float(data.get("probability", 1.0)),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class ExecutorFaultPlan:
    """A named, serializable, seeded list of executor fault specs."""

    specs: Sequence[ExecutorFaultSpec] = ()
    name: str = "executor-fault-plan"
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutorFaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"executor fault plan must be an object, got {type(data).__name__}"
            )
        specs = data.get("specs", [])
        if not isinstance(specs, list):
            raise FaultPlanError("executor fault plan 'specs' must be a list")
        return cls(
            specs=tuple(ExecutorFaultSpec.from_dict(spec) for spec in specs),
            name=str(data.get("name", "executor-fault-plan")),
            seed=int(data.get("seed", 0)),
        )

    def save(self, path) -> str:
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return str(path)

    def journal_truncate_specs(self) -> List[ExecutorFaultSpec]:
        """The post-batch journal faults (the CLI harness applies them
        after the log closes; the executor never sees them)."""
        return [spec for spec in self.specs if spec.kind == "journal_truncate"]


def load_executor_fault_plan(path) -> ExecutorFaultPlan:
    try:
        text = pathlib.Path(path).read_text()
    except OSError as error:
        raise FaultPlanError(f"cannot read executor fault plan {path}: {error}") from error
    try:
        return ExecutorFaultPlan.from_dict(json.loads(text))
    except json.JSONDecodeError as error:
        raise FaultPlanError(f"executor fault plan {path} is not JSON: {error}") from error


class ExecutorChaos:
    """Runtime for one plan: matches specs, enforces fire budgets, and
    keeps an audit log of every injection (for tests and the CLI
    gauntlet report). Safe to share across batches of one campaign."""

    def __init__(self, plan: ExecutorFaultPlan) -> None:
        self.plan = plan
        self._fired = [0] * len(plan.specs)
        self._root = SeededRandom(plan.seed)
        #: (kind, matched name, attempt) per injection, in firing order.
        self.log: List[Tuple[str, str, int]] = []

    def _take(self, kinds: Tuple[str, ...], name: str,
              attempt: Optional[int] = None) -> Optional[ExecutorFaultSpec]:
        """The first armed spec of ``kinds`` matching ``name`` (and
        ``attempt``, when the caller has one — cache hooks don't);
        consumes one firing from its budget. Probability draws fork a
        fresh seeded stream per decision so the outcome never depends
        on pool completion order."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind not in kinds:
                continue
            if attempt is not None and spec.attempt not in (0, attempt):
                continue
            if not fnmatch.fnmatchcase(name, spec.target):
                continue
            if spec.count and self._fired[index] >= spec.count:
                continue
            if spec.probability < 1.0:
                draw = self._root.fork(f"chaos:{index}:{name}:{attempt or 0}")
                if not draw.chance(spec.probability):
                    continue
            self._fired[index] += 1
            self.log.append((spec.kind, name, attempt or 0))
            return spec
        return None

    # -- executor hooks -------------------------------------------------
    def worker_directive(self, label: str, attempt: int) -> Optional[dict]:
        """A picklable directive for the worker about to run ``label``
        attempt ``attempt``, or None for a clean run."""
        spec = self._take(_WORKER_KINDS, label, attempt)
        if spec is None:
            return None
        if spec.kind == "worker_kill":
            return {
                "kind": "worker_kill",
                "after_events": int(spec.param("after_events", 0)),
            }
        return {"kind": "slow_worker", "stall_s": float(spec.param("stall_s", 0.5))}

    def on_submit(self, label: str, attempt: int) -> None:
        """Called before every pool submission; may raise."""
        if self._take(("broken_pool",), label, attempt) is not None:
            raise BrokenProcessPool(
                f"injected: pool broke before submitting {label} (attempt {attempt})"
            )

    def on_cache_put(self, key: str) -> None:
        """Called before every result-cache write; may raise OSError."""
        if self._take(("cache_write_error",), key) is not None:
            raise OSError(errno.ENOSPC, "No space left on device (injected)")

    def after_cache_put(self, key: str, path: Optional[str]) -> None:
        """Called after a successful cache write; corrupts in place."""
        if path is None:
            return
        if self._take(("cache_corrupt",), key) is not None:
            data = pathlib.Path(path).read_bytes()
            pathlib.Path(path).write_bytes(data[: max(1, len(data) // 2)])


def truncate_journal_tail(path, keep_fraction: float = 0.5) -> bool:
    """Tear the journal's final record in half — the artifact a SIGKILL
    mid-``write`` leaves behind. Returns False when the journal has no
    record to tear. Apply only to a *closed* log file."""
    path = pathlib.Path(path)
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    if not lines:
        return False
    last = lines[-1].rstrip("\n")
    if not last:
        return False
    cut = max(1, int(len(last) * keep_fraction))
    if cut >= len(last):
        cut = len(last) - 1
    if cut < 1:
        return False
    path.write_text("".join(lines[:-1]) + last[:cut])
    return True


def execute_config_dict_chaos(
    payload: dict, label: str, hb_queue, every_events: int, directive: dict
) -> dict:
    """Worker entry point under chaos: applies ``directive`` then runs
    the config through the normal (heartbeating) path."""
    # Imported lazily: repro.experiments.runner imports repro.faults.*,
    # so a module-level import here would make ``import repro.faults``
    # circular. Workers only pay this once per process.
    from repro.experiments.executor import execute_config_dict, execute_config_dict_hb
    from repro.experiments.runner import set_worker_heartbeat

    kind = directive.get("kind")
    if kind == "worker_kill":
        after = int(directive.get("after_events", 0))
        if after <= 0:
            os.kill(os.getpid(), signal.SIGKILL)

        # Mid-run kill: piggyback on the heartbeat hook so the worker
        # dies at a simulated-event count, not a wall-clock guess —
        # deterministic for a deterministic simulation.
        def hook(sim_now: int, events: int, events_per_s: float, pending: int) -> None:
            if hb_queue is not None:
                try:
                    hb_queue.put((label, sim_now, events, events_per_s, pending))
                except Exception:
                    pass
            if events >= after:
                os.kill(os.getpid(), signal.SIGKILL)

        set_worker_heartbeat(hook, min(every_events, after))
        try:
            return execute_config_dict(payload)
        finally:
            set_worker_heartbeat(None)
    if kind == "slow_worker":
        time.sleep(float(directive.get("stall_s", 0.5)))
    if hb_queue is None:
        return execute_config_dict(payload)
    return execute_config_dict_hb(payload, label, hb_queue, every_events)
