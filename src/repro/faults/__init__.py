"""Deterministic fault injection, invariant auditing, and crash capture.

See ``docs/robustness.md`` for the fault-plan JSON schema, the injector
catalog, auditor modes, and the repro-bundle workflow.
"""

from repro.faults.audit import (
    AUDIT_MODES,
    InvariantAuditor,
    InvariantViolation,
    WatchdogExceeded,
    run_with_watchdog,
    write_repro_bundle,
)
from repro.faults.executor_chaos import (
    EXECUTOR_FAULT_CATALOG,
    ExecutorChaos,
    ExecutorFaultPlan,
    ExecutorFaultSpec,
    load_executor_fault_plan,
    truncate_journal_tail,
)
from repro.faults.injectors import FaultInjector
from repro.faults.plan import FAULT_CATALOG, FaultPlan, FaultPlanError, FaultSpec

__all__ = [
    "AUDIT_MODES",
    "EXECUTOR_FAULT_CATALOG",
    "ExecutorChaos",
    "ExecutorFaultPlan",
    "ExecutorFaultSpec",
    "FAULT_CATALOG",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "load_executor_fault_plan",
    "truncate_journal_tail",
    "InvariantAuditor",
    "InvariantViolation",
    "WatchdogExceeded",
    "run_with_watchdog",
    "write_repro_bundle",
]
