"""Runtime invariant auditing, run watchdog, and crash capture.

Three robustness services for experiment runs:

* :class:`InvariantAuditor` — a periodic simulator event that re-derives
  ground truth from the live objects and compares it with the fast-path
  counters: scoreboard vs ``packets_out``/``sacked_out``/``lost_out``/
  ``retrans_out`` on every watched connection, cwnd/ssthresh floors,
  event-queue/clock monotonicity, and VOQ conservation (every accepted
  packet is either still queued or was transmitted). ``warn`` mode
  records violations (and emits ``audit:violation`` tracepoints);
  ``fail`` mode raises :class:`InvariantViolation` at the first dirty
  audit, stopping the run inside the event that corrupted state.
* :func:`run_with_watchdog` — drives ``sim.run`` in bounded chunks and
  aborts with :class:`WatchdogExceeded` when a run blows its event or
  wall-clock budget (a wedged retransmission loop under faults would
  otherwise spin forever).
* :func:`write_repro_bundle` — serializes seed + fault plan + config +
  traceback into a directory on any crash, so every failure is
  replayable from the bundle alone.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import traceback as traceback_module
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.obs.telemetry import Telemetry
from repro.sim.simulator import Simulator

AUDIT_MODES = ("warn", "fail")


class InvariantViolation(AssertionError):
    """A runtime invariant audit found corrupted state (fail mode)."""

    def __init__(self, violations: List[dict]):
        self.violations = violations
        lines = [
            f"  [{v['time_ns']} ns] {v['check']} @ {v['subject']}: {v['detail']}"
            for v in violations
        ]
        super().__init__(
            f"{len(violations)} invariant violation(s):\n" + "\n".join(lines)
        )


class WatchdogExceeded(RuntimeError):
    """A run blew its event or wall-clock budget."""

    def __init__(self, reason: str, processed: int, wall_s: float):
        self.reason = reason
        self.processed = processed
        self.wall_s = wall_s
        super().__init__(
            f"watchdog: {reason} exceeded after {processed:,} events / {wall_s:.1f}s wall"
        )


class InvariantAuditor:
    """Periodic runtime auditing of the live simulation state.

    Watched objects are plain references — the auditor never mutates
    them. ``audit()`` can also be called directly (the runner does a
    final audit after the horizon). Note that a started auditor keeps
    one event pending forever, so drive the simulator with ``until=``.
    """

    def __init__(
        self,
        sim: Simulator,
        mode: str = "warn",
        interval_ns: int = 200_000,
    ):
        if mode not in AUDIT_MODES:
            raise ValueError(f"audit mode must be one of {AUDIT_MODES}, got {mode!r}")
        if interval_ns <= 0:
            raise ValueError("audit interval must be positive")
        self.sim = sim
        self.mode = mode
        self.interval_ns = interval_ns
        self.connections: List[Any] = []
        self.uplinks: List[Any] = []
        self.queues: List[Any] = []
        self.pools: List[Any] = []
        self.checks_run = 0
        self.violations: List[dict] = []
        self._tp = Telemetry.of(sim).tracepoint("audit:violation")
        self._last_now: Optional[int] = None
        self._started = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def watch_connection(self, conn: Any) -> None:
        if conn not in self.connections:
            self.connections.append(conn)

    def watch_endpoint(self, endpoint: Any) -> None:
        """Watch a flow endpoint: unwraps MPTCP connections into their
        subflows; ignores objects without TCP accounting."""
        if hasattr(endpoint, "subflows"):
            for subflow in endpoint.subflows:
                self.watch_endpoint(subflow)
            return
        if hasattr(endpoint, "segments") and hasattr(endpoint, "paths"):
            self.watch_connection(endpoint)

    def watch_uplink(self, uplink: Any) -> None:
        if uplink not in self.uplinks:
            self.uplinks.append(uplink)
            self.watch_queue(uplink.queue)

    def watch_queue(self, queue: Any) -> None:
        if queue not in self.queues:
            self.queues.append(queue)
        pool = getattr(queue, "pool", None)
        if pool is not None:
            self.watch_pool(pool)

    def watch_pool(self, pool: Any) -> None:
        if pool not in self.pools:
            self.pools.append(pool)

    def watch_workload(self, workload: Any) -> None:
        for flow in workload.flows:
            self.watch_endpoint(flow.sender)
            self.watch_endpoint(flow.receiver)

    # ------------------------------------------------------------------
    # Periodic driving
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("auditor already started")
        self._started = True
        self.sim.schedule(self.interval_ns, self._tick)

    def _tick(self) -> None:
        self.audit()
        self.sim.schedule(self.interval_ns, self._tick)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def audit(self) -> List[dict]:
        """Run every check once; returns (and records) fresh violations.
        Raises :class:`InvariantViolation` in ``fail`` mode."""
        self.checks_run += 1
        found: List[dict] = []
        now = self.sim.now
        if self._last_now is not None and now < self._last_now:
            found.append(self._violation(
                "clock_monotonic", "sim",
                f"clock went backwards: {self._last_now} -> {now}",
            ))
        self._last_now = now
        heap = self.sim._queue._heap
        if heap:
            head_time, _seq, head_event = heap[0]
            if head_time < now and not head_event.cancelled:
                found.append(self._violation(
                    "event_queue_monotonic", "sim",
                    f"live event pending at {head_time} < now {now}",
                ))
        for conn in self.connections:
            found.extend(self._audit_connection(conn))
        for uplink in self.uplinks:
            found.extend(self._audit_uplink(uplink))
        for queue in self.queues:
            found.extend(self._audit_queue(queue))
        for pool in self.pools:
            found.extend(self._audit_pool(pool))
        if found:
            self.violations.extend(found)
            if self._tp.enabled:
                for violation in found:
                    self._tp.emit(
                        now,
                        check=violation["check"],
                        subject=violation["subject"],
                        detail=violation["detail"],
                    )
            if self.mode == "fail":
                raise InvariantViolation(found)
        return found

    def _violation(self, check: str, subject: str, detail: str) -> dict:
        return {
            "time_ns": self.sim.now,
            "check": check,
            "subject": subject,
            "detail": detail,
        }

    def _audit_connection(self, conn: Any) -> List[dict]:
        """Scoreboard-vs-counter accounting plus cwnd/ssthresh floors —
        the non-raising runtime version of ``check_invariants``."""
        found: List[dict] = []
        name = getattr(conn, "name", "conn")
        paths = conn.paths
        n_paths = len(paths)
        actual = {
            "packets_out": [0] * n_paths,
            "sacked_out": [0] * n_paths,
            "lost_out": [0] * n_paths,
            "retrans_out": [0] * n_paths,
        }
        for seg in conn.segments.values():
            index = seg.tdn_id if seg.tdn_id < n_paths else 0
            actual["packets_out"][index] += 1
            if seg.sacked:
                actual["sacked_out"][index] += 1
            if seg.lost:
                actual["lost_out"][index] += 1
            if seg.retrans_outstanding:
                actual["retrans_out"][index] += 1
        for index, path in enumerate(paths):
            for field in ("packets_out", "sacked_out", "lost_out", "retrans_out"):
                counter = getattr(path, field)
                if counter != actual[field][index]:
                    found.append(self._violation(
                        "pipe_accounting", f"{name}/path{index}",
                        f"{field}={counter} but {actual[field][index]} segments carry the flag",
                    ))
                if counter < 0:
                    found.append(self._violation(
                        "counter_floor", f"{name}/path{index}", f"{field}={counter} < 0",
                    ))
            cc = path.cc
            if cc.cwnd <= 0:
                found.append(self._violation(
                    "cwnd_floor", f"{name}/path{index}", f"cwnd={cc.cwnd} <= 0",
                ))
            if cc.ssthresh <= 0:
                found.append(self._violation(
                    "ssthresh_floor", f"{name}/path{index}", f"ssthresh={cc.ssthresh} <= 0",
                ))
        if conn.snd_una > conn.snd_nxt:
            found.append(self._violation(
                "sequence_order", name,
                f"snd_una {conn.snd_una} > snd_nxt {conn.snd_nxt}",
            ))
        return found

    def _audit_uplink(self, uplink: Any) -> List[dict]:
        """VOQ conservation: every packet the VOQ accepted was either
        transmitted by the uplink or is still queued."""
        queue = uplink.queue
        expected = uplink.tx_packets + len(queue)
        if queue.enqueued != expected:
            return [self._violation(
                "voq_conservation", uplink.name,
                f"enqueued={queue.enqueued} != tx={uplink.tx_packets} + queued={len(queue)}",
            )]
        return []

    def _audit_queue(self, queue: Any) -> List[dict]:
        found: List[dict] = []
        if queue.drops < 0 or queue.enqueued < 0:
            found.append(self._violation(
                "counter_floor", queue.name,
                f"drops={queue.drops} enqueued={queue.enqueued}",
            ))
        if len(queue) > queue.max_occupancy:
            found.append(self._violation(
                "occupancy_watermark", queue.name,
                f"length {len(queue)} exceeds recorded max {queue.max_occupancy}",
            ))
        return found

    def _audit_pool(self, pool: Any) -> List[dict]:
        """Pool conservation: the used-cell counter must equal the sum
        of member queue lengths (an acquire without a matching release —
        e.g. an inlined dequeue that skips the pool — drifts it)."""
        found: List[dict] = []
        queued = sum(len(queue) for queue in pool.queues)
        if pool.used != queued:
            found.append(self._violation(
                "pool_conservation", pool.name,
                f"used={pool.used} != sum(member lengths)={queued}",
            ))
        if pool.used < 0:
            found.append(self._violation(
                "counter_floor", pool.name, f"used={pool.used} < 0",
            ))
        if pool.peak_used < pool.used:
            found.append(self._violation(
                "occupancy_watermark", pool.name,
                f"used {pool.used} exceeds recorded peak {pool.peak_used}",
            ))
        return found

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def assert_clean(self) -> None:
        if self.violations:
            raise InvariantViolation(self.violations)

    @property
    def clean(self) -> bool:
        return not self.violations

    def report(self) -> dict:
        return {
            "mode": self.mode,
            "interval_ns": self.interval_ns,
            "checks_run": self.checks_run,
            "watched_connections": len(self.connections),
            "watched_uplinks": len(self.uplinks),
            "watched_pools": len(self.pools),
            "violation_count": len(self.violations),
            "violations": list(self.violations),
        }


def run_with_watchdog(
    sim: Simulator,
    until: Optional[int] = None,
    max_events: Optional[int] = None,
    max_wall_s: Optional[float] = None,
    chunk_events: int = 100_000,
) -> int:
    """Drive ``sim.run(until=...)`` under event/wall budgets.

    Runs the simulator in ``chunk_events`` slices so a wedged run is
    detected within one chunk. With no budgets this degrades to a
    single plain ``sim.run`` call (zero overhead for the common case).
    """
    if max_events is None and max_wall_s is None:
        return sim.run(until=until)
    processed = 0
    started = perf_counter()
    while True:
        chunk = chunk_events
        if max_events is not None:
            # Never run further than one event past the budget, so a
            # blown budget is detected even when it is smaller than one
            # chunk (a run needing exactly max_events still completes).
            chunk = min(chunk, max_events - processed + 1)
        n = sim.run(until=until, max_events=chunk)
        processed += n
        wall_s = perf_counter() - started
        if n < chunk:
            break  # drained, horizon reached, or stopped
        if max_events is not None and processed > max_events:
            raise WatchdogExceeded("event budget", processed, wall_s)
        if max_wall_s is not None and wall_s > max_wall_s:
            if sim.run(until=until, max_events=1) == 0:
                break  # budget hit exactly at completion
            raise WatchdogExceeded("wall-clock budget", processed + 1, wall_s)
    return processed


# ----------------------------------------------------------------------
# Crash capture
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    """Best-effort JSON view of configs (dataclasses, tuples, paths)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_repro_bundle(
    directory,
    config: Any = None,
    error: Optional[BaseException] = None,
    fault_plan: Any = None,
    seed: Optional[int] = None,
    label: str = "run",
) -> str:
    """Serialize everything needed to replay a failure; returns the
    bundle directory path.

    Deterministic naming (label + seed + collision counter, no
    timestamps): re-running the same failing configuration overwrites
    nothing and produces a predictable path.
    """
    base = pathlib.Path(directory)
    stem = f"bundle_{label}_seed{seed if seed is not None else 'x'}"
    bundle = base / stem
    suffix = 1
    while bundle.exists():
        suffix += 1
        bundle = base / f"{stem}_{suffix}"
    bundle.mkdir(parents=True)

    manifest: Dict[str, Any] = {
        "schema": "repro-bundle/1",
        "label": label,
        "seed": seed,
        "files": {},
    }
    if config is not None:
        (bundle / "config.json").write_text(
            json.dumps(_jsonable(config), indent=2, sort_keys=True) + "\n"
        )
        manifest["files"]["config"] = "config.json"
    if fault_plan is not None:
        text = fault_plan.to_json() if hasattr(fault_plan, "to_json") else json.dumps(fault_plan)
        (bundle / "fault_plan.json").write_text(text + "\n")
        manifest["files"]["fault_plan"] = "fault_plan.json"
        manifest["replay"] = (
            "PYTHONPATH=src python -m repro.experiments.cli chaos "
            f"--fault-plan {bundle / 'fault_plan.json'} --seed {seed} --audit fail"
        )
    if error is not None:
        manifest["error_type"] = type(error).__name__
        manifest["error_message"] = str(error)
        (bundle / "error.txt").write_text(
            "".join(traceback_module.format_exception(type(error), error, error.__traceback__))
        )
        manifest["files"]["error"] = "error.txt"
    (bundle / "MANIFEST.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return str(bundle)
