"""Declarative fault plans (§3.2, §5.4 degraded-signal regimes).

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries — each one
timed (``at_ns``/``until_ns``) and optionally periodic — that a
:class:`repro.faults.injectors.FaultInjector` executes against a built
testbed. Plans serialize to/from JSON so every chaos run is replayable
from a file: the repro bundle written on a crash embeds the plan next
to the seed and config.

Determinism contract: a plan carries **no randomness of its own**. All
stochastic decisions (loss draws, jitter widths, Gilbert–Elliott state
transitions) come from dedicated :class:`repro.sim.rng.SeededRandom`
child streams forked per spec (``faults`` → ``<index>:<kind>``), so

* the same plan + seed replays byte-identically, and
* enabling faults never perturbs the workload's own arrival sequences
  (the workload streams are separate forks of the same root seed and
  ``fork`` derives seeds arithmetically without drawing from the
  parent).

The JSON schema is documented in ``docs/robustness.md``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: kind -> (layer, recognized params, one-line description).
FAULT_CATALOG: Dict[str, Any] = {
    "link_flap": (
        "net",
        ("down_ns",),
        "take matching links down for down_ns starting at at_ns (periodic with period_ns/count)",
    ),
    "packet_loss": (
        "net",
        ("rate",),
        "independent (Bernoulli) packet loss on matching carriers while active",
    ),
    "burst_loss": (
        "net",
        ("p_enter", "p_exit", "loss_good", "loss_bad"),
        "Gilbert-Elliott two-state burst loss on matching carriers while active",
    ),
    "delay_jitter": (
        "net",
        ("rate", "max_jitter_ns"),
        "per-packet extra delay in [0, max_jitter_ns] with probability rate (causes reordering)",
    ),
    "queue_squeeze": (
        "net",
        ("capacity",),
        "shrink matching queues to capacity packets between at_ns and until_ns",
    ),
    "notifier_drop": (
        "rdcn",
        ("rate",),
        "drop TDN-change notifications with probability rate while active",
    ),
    "notifier_delay": (
        "rdcn",
        ("rate", "max_delay_ns"),
        "delay TDN-change notifications by up to max_delay_ns (stale/out-of-order arrivals)",
    ),
    "notifier_duplicate": (
        "rdcn",
        ("rate", "dup_delay_ns"),
        "re-deliver TDN-change notifications dup_delay_ns later with probability rate",
    ),
    "schedule_skew": (
        "rdcn",
        ("max_skew_ns",),
        "jitter every day/night boundary by a uniform draw in [0, max_skew_ns]",
    ),
    "rotor_stall": (
        "rdcn",
        (),
        "freeze the optical rotor: gate matching uplinks from at_ns to until_ns",
    ),
    "app_pause": (
        "host",
        (),
        "pause matching hosts (buffer all arriving packets) from at_ns to until_ns",
    ),
    "rcv_buffer_pressure": (
        "host",
        ("factor",),
        "scale the advertised receive window of matching hosts' connections by factor while active",
    ),
}


class FaultPlanError(ValueError):
    """A plan failed validation (unknown kind, bad window, bad params)."""


@dataclass(frozen=True)
class FaultSpec:
    """One schedulable fault.

    ``target`` is an ``fnmatch`` glob over component names: link names
    (``r0h0-up``, ``uplink-r0``), queue names (``voq-r0-to-r1``), host
    addresses (``r1h*``). ``at_ns``/``until_ns`` bound the active
    window (``until_ns`` None = one-shot for point faults, open-ended
    for rate faults). ``period_ns``/``count`` repeat point faults
    (link flaps, rotor stalls).
    """

    kind: str
    target: str = "*"
    at_ns: int = 0
    until_ns: Optional[int] = None
    period_ns: Optional[int] = None
    count: int = 1
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_CATALOG:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: {sorted(FAULT_CATALOG)}"
            )
        if self.at_ns < 0:
            raise FaultPlanError(f"{self.kind}: at_ns must be non-negative")
        if self.until_ns is not None and self.until_ns <= self.at_ns:
            raise FaultPlanError(f"{self.kind}: until_ns must exceed at_ns")
        if self.count < 1:
            raise FaultPlanError(f"{self.kind}: count must be >= 1")
        if self.count > 1 and not self.period_ns:
            raise FaultPlanError(f"{self.kind}: count > 1 requires period_ns")
        if self.period_ns is not None and self.period_ns <= 0:
            raise FaultPlanError(f"{self.kind}: period_ns must be positive")
        _layer, known, _desc = FAULT_CATALOG[self.kind]
        unknown = set(self.params) - set(known)
        if unknown:
            raise FaultPlanError(
                f"{self.kind}: unknown params {sorted(unknown)}; known: {list(known)}"
            )
        for name, value in self.params.items():
            if not isinstance(value, (int, float)):
                raise FaultPlanError(f"{self.kind}: param {name} must be numeric")
        for rate_name in ("rate", "p_enter", "p_exit", "loss_good", "loss_bad"):
            if rate_name in self.params and not (0.0 <= self.params[rate_name] <= 1.0):
                raise FaultPlanError(f"{self.kind}: {rate_name} must be in [0, 1]")

    @property
    def layer(self) -> str:
        return FAULT_CATALOG[self.kind][0]

    def active_at(self, time_ns: int) -> bool:
        """Is this spec's window open at ``time_ns``? Rate faults with
        no ``until_ns`` stay active forever once ``at_ns`` passes."""
        if time_ns < self.at_ns:
            return False
        return self.until_ns is None or time_ns < self.until_ns

    def param(self, name: str, default: float) -> float:
        return self.params.get(name, default)

    def to_dict(self) -> dict:
        data: Dict[str, Any] = {"kind": self.kind, "target": self.target, "at_ns": self.at_ns}
        if self.until_ns is not None:
            data["until_ns"] = self.until_ns
        if self.period_ns is not None:
            data["period_ns"] = self.period_ns
        if self.count != 1:
            data["count"] = self.count
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault spec must be an object, got {type(data).__name__}")
        known = {"kind", "target", "at_ns", "until_ns", "period_ns", "count", "params"}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(f"unknown fault spec fields {sorted(unknown)}")
        if "kind" not in data:
            raise FaultPlanError("fault spec needs a 'kind'")
        return cls(
            kind=data["kind"],
            target=data.get("target", "*"),
            at_ns=int(data.get("at_ns", 0)),
            until_ns=None if data.get("until_ns") is None else int(data["until_ns"]),
            period_ns=None if data.get("period_ns") is None else int(data["period_ns"]),
            count=int(data.get("count", 1)),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, serializable list of fault specs."""

    specs: Sequence[FaultSpec] = ()
    name: str = "fault-plan"
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def kinds(self) -> List[str]:
        return [spec.kind for spec in self.specs]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(data).__name__}")
        specs = data.get("specs", [])
        if not isinstance(specs, list):
            raise FaultPlanError("'specs' must be a list")
        return cls(
            specs=[FaultSpec.from_dict(entry) for entry in specs],
            name=str(data.get("name", "fault-plan")),
            description=str(data.get("description", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.from_json(pathlib.Path(path).read_text())

    def save(self, path) -> str:
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")
        return str(target)
