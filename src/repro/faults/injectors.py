"""Fault injectors: execute a :class:`repro.faults.plan.FaultPlan`
against a built testbed.

One :class:`FaultInjector` owns every armed fault. Injection points:

* **net** — a :class:`_CarrierPerturbation` wraps the ``deliver``
  callable of each matched carrier (host access :class:`~repro.net.link.Link`
  or cross-rack :class:`~repro.rdcn.fabric.RackUplink`) with Bernoulli
  loss, Gilbert–Elliott burst loss, and delay jitter; link flaps drive
  the Link's native ``down`` gate (in-flight packets die on the wire);
  queue squeezes use :meth:`~repro.net.queues.DropTailQueue.squeeze`.
* **rdcn** — the notifier's ``fault_hook`` drops/delays/duplicates TDN
  notifications (producing the stale and out-of-order arrivals the
  degradation layer must absorb); ``schedule_skew`` installs the
  schedule driver's ``boundary_jitter``; ``rotor_stall`` gates uplinks
  through an :class:`_UplinkGate` that replays the last requested TDN
  on release.
* **host** — ``app_pause`` buffers every packet arriving at a host and
  releases the backlog in order on resume; ``rcv_buffer_pressure``
  scales the advertised receive window of the host's connections.

Every stochastic draw comes from a child stream forked per spec (and
per carrier for net faults), so the workload's own random streams are
untouched and a plan replays byte-identically under the same seed.
Every injected effect is counted and emitted through the
``fault:inject`` tracepoint.
"""

from __future__ import annotations

import fnmatch
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.telemetry import Telemetry
from repro.sim.rng import SeededRandom
from repro.sim.simulator import Simulator


class _CarrierPerturbation:
    """Wraps one carrier's ``deliver`` with the net-fault rule chain."""

    def __init__(self, sim: Simulator, carrier: Any, name: str, injector: "FaultInjector"):
        self.sim = sim
        self.name = name
        self.injector = injector
        self.down = 0  # refcount: overlapping flap windows nest
        # (spec, stream, mutable state) evaluated in plan order.
        self.rules: List[Tuple[FaultSpec, SeededRandom, dict]] = []
        self._original = carrier.deliver
        carrier.deliver = self._deliver

    def add_rule(self, spec: FaultSpec, stream: SeededRandom) -> None:
        self.rules.append((spec, stream, {"bad": False}))

    def _deliver(self, pkt: Any) -> None:
        now = self.sim.now
        if self.down:
            pkt.dropped = True
            self.injector.record("link_flap", self.name, "drop")
            return
        extra_delay = 0
        for spec, stream, state in self.rules:
            if now < spec.at_ns or (spec.until_ns is not None and now >= spec.until_ns):
                continue
            kind = spec.kind
            if kind == "packet_loss":
                if stream.chance(spec.param("rate", 0.0)):
                    pkt.dropped = True
                    self.injector.record(kind, self.name, "drop")
                    return
            elif kind == "burst_loss":
                # Advance the Gilbert-Elliott chain one step per packet.
                if state["bad"]:
                    if stream.chance(spec.param("p_exit", 0.2)):
                        state["bad"] = False
                elif stream.chance(spec.param("p_enter", 0.05)):
                    state["bad"] = True
                loss = (
                    spec.param("loss_bad", 1.0)
                    if state["bad"]
                    else spec.param("loss_good", 0.0)
                )
                if loss > 0.0 and stream.chance(loss):
                    pkt.dropped = True
                    self.injector.record(kind, self.name, "drop")
                    return
            elif kind == "delay_jitter":
                rate = spec.param("rate", 1.0)
                if rate >= 1.0 or stream.chance(rate):
                    jitter = stream.jitter_ns(int(spec.param("max_jitter_ns", 50_000)))
                    if jitter > 0:
                        extra_delay += jitter
                        self.injector.record(kind, self.name, "delay")
        if extra_delay > 0:
            self.sim.schedule(extra_delay, self._original, pkt)
        else:
            self._original(pkt)


class _UplinkGate:
    """Interposes on ``RackUplink.set_active`` so a rotor stall wins
    over schedule-driven activations, then replays the last request."""

    def __init__(self, uplink: Any):
        self.uplink = uplink
        self.stalls = 0
        self.requested: Optional[int] = uplink.active_tdn
        self._real_set_active = uplink.set_active
        uplink.set_active = self._set_active

    def _set_active(self, tdn_id: Optional[int]) -> None:
        self.requested = tdn_id
        if self.stalls == 0:
            self._real_set_active(tdn_id)

    def stall(self) -> None:
        self.stalls += 1
        if self.stalls == 1:
            self._real_set_active(None)

    def release(self) -> None:
        if self.stalls == 0:
            return
        self.stalls -= 1
        if self.stalls == 0:
            self._real_set_active(self.requested)


class _HostGate:
    """Pause/resume a host: while paused every arriving packet is held;
    resume releases the backlog in arrival order (the §5.4 'unlucky
    flows' burst, taken to its extreme)."""

    def __init__(self, host: Any):
        self.host = host
        self.paused = 0
        self._held: List[Any] = []
        self._real_deliver = host.deliver
        host.deliver = self._deliver

    def _deliver(self, pkt: Any) -> None:
        if self.paused:
            self._held.append(pkt)
        else:
            self._real_deliver(pkt)

    def pause(self) -> None:
        self.paused += 1

    def resume(self) -> None:
        if self.paused == 0:
            return
        self.paused -= 1
        if self.paused == 0 and self._held:
            backlog, self._held = self._held, []
            for pkt in backlog:
                self._real_deliver(pkt)


class FaultInjector:
    """Arms a :class:`FaultPlan` on a testbed and executes it.

    ``rng`` is the experiment's **root** seed wrapper; the injector
    forks its own ``faults`` stream from it (fork derives child seeds
    arithmetically, so the workload's streams never see a different
    sequence because faults are enabled).
    """

    def __init__(self, sim: Simulator, plan: FaultPlan, rng: SeededRandom):
        self.sim = sim
        self.plan = plan
        self._root = rng.fork("faults")
        self.effects: Dict[str, int] = {}
        self.unmatched: List[str] = []
        self._tp = Telemetry.of(sim).tracepoint("fault:inject")
        self._perturbations: Dict[str, _CarrierPerturbation] = {}
        self._uplink_gates: Dict[str, _UplinkGate] = {}
        self._host_gates: Dict[str, _HostGate] = {}
        self._notifier_rules: List[Tuple[FaultSpec, SeededRandom]] = []
        self._schedule_rules: List[Tuple[FaultSpec, SeededRandom]] = []
        self._armed = False

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm_testbed(self, testbed: Any) -> "FaultInjector":
        """Discover a :class:`~repro.rdcn.topology.TwoRackTestbed`'s
        components and arm every spec. Call before ``testbed.start()``."""
        links: Dict[str, Any] = {}
        hosts: Dict[str, Any] = {}
        for rack_hosts in testbed.hosts.values():
            for host in rack_hosts:
                hosts[host.address] = host
                if host.egress is not None:
                    links[host.egress.name] = host.egress
        for tor in testbed.tors.values():
            for link in tor._downlinks.values():
                links[link.name] = link
        uplinks = {uplink.name: uplink for uplink in testbed.uplinks.values()}
        queues = {uplink.queue.name: uplink.queue for uplink in testbed.uplinks.values()}
        return self.arm(
            links=links,
            uplinks=uplinks,
            queues=queues,
            hosts=hosts,
            notifier=testbed.notifier,
            driver=testbed.driver,
        )

    def arm(
        self,
        links: Optional[Dict[str, Any]] = None,
        uplinks: Optional[Dict[str, Any]] = None,
        queues: Optional[Dict[str, Any]] = None,
        hosts: Optional[Dict[str, Any]] = None,
        notifier: Any = None,
        driver: Any = None,
    ) -> "FaultInjector":
        """Arm every spec of the plan against the given components."""
        if self._armed:
            raise RuntimeError("fault injector already armed")
        self._armed = True
        links = links or {}
        uplinks = uplinks or {}
        queues = queues or {}
        hosts = hosts or {}
        carriers = {**links, **uplinks}
        for index, spec in enumerate(self.plan):
            kind = spec.kind
            if kind in ("packet_loss", "burst_loss", "delay_jitter"):
                matched = self._match(spec, carriers)
                for name in matched:
                    stream = self._root.fork(f"{index}:{kind}:{name}")
                    self._perturbation(carriers[name], name).add_rule(spec, stream)
            elif kind == "link_flap":
                matched = self._match(spec, carriers)
                targets = [(name, carriers[name]) for name in matched]
                if targets:
                    default_down = (
                        (spec.until_ns - spec.at_ns) if spec.until_ns is not None else 100_000
                    )
                    self._schedule_windows(
                        spec, self._flap_down, self._flap_up, targets,
                        window_ns=int(spec.param("down_ns", default_down)),
                    )
            elif kind == "queue_squeeze":
                matched = self._match(spec, queues)
                targets = [(name, queues[name]) for name in matched]
                if targets:
                    self._schedule_windows(spec, self._squeeze, self._unsqueeze, targets)
            elif kind == "rotor_stall":
                matched = self._match(spec, uplinks)
                targets = [(name, self._uplink_gate(uplinks[name], name)) for name in matched]
                if targets:
                    self._schedule_windows(spec, self._stall, self._release, targets)
            elif kind == "app_pause":
                matched = self._match(spec, hosts)
                targets = [(name, self._host_gate(hosts[name], name)) for name in matched]
                if targets:
                    self._schedule_windows(spec, self._pause, self._resume, targets)
            elif kind == "rcv_buffer_pressure":
                matched = self._match(spec, hosts)
                targets = [(name, hosts[name]) for name in matched]
                if targets:
                    saved: Dict[int, Tuple[Any, int]] = {}
                    self._schedule_windows(
                        spec,
                        lambda s, t, _saved=saved: self._apply_pressure(s, t, _saved),
                        lambda s, t, _saved=saved: self._relieve_pressure(s, t, _saved),
                        targets,
                    )
            elif kind in ("notifier_drop", "notifier_delay", "notifier_duplicate"):
                if notifier is None:
                    self.unmatched.append(f"{kind}: no notifier to arm")
                    continue
                self._notifier_rules.append((spec, self._root.fork(f"{index}:{kind}")))
                if notifier.fault_hook is None:
                    notifier.fault_hook = self._notifier_hook
            elif kind == "schedule_skew":
                if driver is None:
                    self.unmatched.append(f"{kind}: no schedule driver to arm")
                    continue
                self._schedule_rules.append((spec, self._root.fork(f"{index}:{kind}")))
                if driver.boundary_jitter is None:
                    driver.boundary_jitter = self._boundary_jitter
        return self

    def _match(self, spec: FaultSpec, components: Dict[str, Any]) -> List[str]:
        matched = [
            name for name in sorted(components) if fnmatch.fnmatch(name, spec.target)
        ]
        if not matched:
            self.unmatched.append(f"{spec.kind}: target {spec.target!r} matched nothing")
        return matched

    def _perturbation(self, carrier: Any, name: str) -> _CarrierPerturbation:
        perturbation = self._perturbations.get(name)
        if perturbation is None:
            perturbation = _CarrierPerturbation(self.sim, carrier, name, self)
            self._perturbations[name] = perturbation
        return perturbation

    def _uplink_gate(self, uplink: Any, name: str) -> _UplinkGate:
        gate = self._uplink_gates.get(name)
        if gate is None:
            gate = _UplinkGate(uplink)
            self._uplink_gates[name] = gate
        return gate

    def _host_gate(self, host: Any, name: str) -> _HostGate:
        gate = self._host_gates.get(name)
        if gate is None:
            gate = _HostGate(host)
            self._host_gates[name] = gate
        return gate

    def _schedule_windows(
        self, spec: FaultSpec, enter, leave, targets, window_ns: Optional[int] = None
    ) -> None:
        """Lay out the (possibly periodic) enter/leave event pairs of a
        point fault. The window defaults to ``until_ns - at_ns``; with
        no ``until_ns`` the fault enters and never leaves."""
        if window_ns is None and spec.until_ns is not None:
            window_ns = spec.until_ns - spec.at_ns
        for repetition in range(spec.count):
            start = spec.at_ns + repetition * (spec.period_ns or 0)
            for name, target in targets:
                self.sim.at(start, enter, spec, (name, target))
                if window_ns is not None:
                    self.sim.at(start + window_ns, leave, spec, (name, target))

    # ------------------------------------------------------------------
    # Point-fault callbacks (all called by simulator events)
    # ------------------------------------------------------------------
    def _flap_down(self, spec: FaultSpec, target) -> None:
        name, carrier = target
        if hasattr(carrier, "down"):
            carrier.down = True
        else:
            self._perturbation(carrier, name).down += 1
        self.record("link_flap", name, "down")

    def _flap_up(self, spec: FaultSpec, target) -> None:
        name, carrier = target
        if hasattr(carrier, "down"):
            carrier.down = False
        else:
            perturbation = self._perturbations.get(name)
            if perturbation is not None and perturbation.down > 0:
                perturbation.down -= 1
        self.record("link_flap", name, "up")

    def _squeeze(self, spec: FaultSpec, target) -> None:
        name, queue = target
        queue.squeeze(max(int(spec.param("capacity", 1)), 1))
        self.record("queue_squeeze", name, "squeeze")

    def _unsqueeze(self, spec: FaultSpec, target) -> None:
        name, queue = target
        queue.unsqueeze()
        self.record("queue_squeeze", name, "restore")

    def _stall(self, spec: FaultSpec, target) -> None:
        name, gate = target
        gate.stall()
        self.record("rotor_stall", name, "stall")

    def _release(self, spec: FaultSpec, target) -> None:
        name, gate = target
        gate.release()
        self.record("rotor_stall", name, "release")

    def _pause(self, spec: FaultSpec, target) -> None:
        name, gate = target
        gate.pause()
        self.record("app_pause", name, "pause")

    def _resume(self, spec: FaultSpec, target) -> None:
        name, gate = target
        gate.resume()
        self.record("app_pause", name, "resume")

    def _apply_pressure(self, spec: FaultSpec, target, saved: Dict[int, Tuple[Any, int]]) -> None:
        name, host = target
        factor = spec.param("factor", 0.1)
        for handler in host._connections.values():
            rwnd = getattr(handler, "_rwnd_bytes", None)
            if rwnd is None or id(handler) in saved:
                continue
            saved[id(handler)] = (handler, rwnd)
            mss = getattr(getattr(handler, "config", None), "mss", 1)
            handler._rwnd_bytes = max(int(rwnd * factor), mss)
        self.record("rcv_buffer_pressure", name, "apply")

    def _relieve_pressure(self, spec: FaultSpec, target, saved: Dict[int, Tuple[Any, int]]) -> None:
        name, _host = target
        for handler, rwnd in saved.values():
            handler._rwnd_bytes = rwnd
        saved.clear()
        self.record("rcv_buffer_pressure", name, "relieve")

    # ------------------------------------------------------------------
    # Notifier / schedule hooks
    # ------------------------------------------------------------------
    def _notifier_hook(self, host: Any, notification: Any) -> List[int]:
        """Per-delivery fault decision: returns the extra-delay list
        ([] = drop, [0] = on time, more entries = duplicates)."""
        now = self.sim.now
        deliveries = [0]
        for spec, stream in self._notifier_rules:
            if not spec.active_at(now):
                continue
            if not fnmatch.fnmatch(host.address, spec.target):
                continue
            kind = spec.kind
            if kind == "notifier_drop":
                if stream.chance(spec.param("rate", 0.0)):
                    self.record(kind, host.address, "drop")
                    return []
            elif kind == "notifier_delay":
                if stream.chance(spec.param("rate", 1.0)):
                    jitter = stream.jitter_ns(int(spec.param("max_delay_ns", 100_000)))
                    if jitter > 0:
                        deliveries[0] += jitter
                        self.record(kind, host.address, "delay")
            elif kind == "notifier_duplicate":
                if stream.chance(spec.param("rate", 0.0)):
                    deliveries.append(
                        deliveries[0] + int(spec.param("dup_delay_ns", 50_000))
                    )
                    self.record(kind, host.address, "duplicate")
        return deliveries

    def _boundary_jitter(self, phase: str, global_index: int, nominal_ns: int) -> int:
        """Schedule-driver hook: extra delay for one day/night boundary."""
        skew = 0
        for spec, stream in self._schedule_rules:
            if not spec.active_at(nominal_ns):
                continue
            draw = stream.jitter_ns(int(spec.param("max_skew_ns", 20_000)))
            if draw > 0:
                skew += draw
                self.record("schedule_skew", phase, f"day{global_index}")
        return skew

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def record(self, kind: str, target: str, detail: str) -> None:
        self.effects[kind] = self.effects.get(kind, 0) + 1
        if self._tp.enabled:
            self._tp.emit(self.sim.now, kind=kind, target=target, detail=detail)

    @property
    def total_effects(self) -> int:
        return sum(self.effects.values())

    def report(self) -> dict:
        """JSON-ready summary for experiment results and repro bundles."""
        return {
            "plan": self.plan.name,
            "specs": len(self.plan),
            "effects": dict(sorted(self.effects.items())),
            "total_effects": self.total_effects,
            "unmatched": list(self.unmatched),
        }
