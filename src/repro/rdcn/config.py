"""RDCN configuration (§5.1 testbed parameters as data).

Defaults reproduce the paper's Etalon configuration: two racks, a
10 Gbps / ~100 µs-RTT packet network (TDN 0), a 100 Gbps / ~40 µs-RTT
optical network (TDN 1), 180 µs days, 20 µs nights, a 6:1 packet:optical
schedule, 16-packet VOQs, and jumbo frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Tuple

from repro.net.queues import BUFFER_POLICIES
from repro.units import SEC, gbps, usec


@dataclass
class NotifierConfig:
    """TDN-change notification cost model (§5.4).

    The three optimizations the paper evaluates are knobs here; the
    component costs are calibrated so the optimized/unoptimized ratios
    match the paper's reported 8x (p50) / 2.7x (p99) for packet caching,
    ~1000x for push->pull, and 5x for the dedicated control network.
    """

    # Optimization 1: pre-constructed (cached) ICMP packet at the ToR.
    packet_caching: bool = True
    generation_cached_p50_ns: int = 250
    generation_uncached_p50_ns: int = 2_000   # 8x the cached median
    generation_cached_tail_ns: int = 2_750    # cached p99 ~ 3 us
    generation_uncached_tail_ns: int = 6_100  # uncached p99 ~ 8.1 us (2.7x)

    # Optimization 2: pull model (hosts read a global TDN variable) vs
    # push model (kernel walks every flow and updates it in turn).
    pull_model: bool = True
    push_per_flow_cost_ns: int = 2_000
    pull_read_cost_ns: int = 2

    # Optimization 3: dedicated control network for ICMPs instead of
    # sharing the (busy) data-plane interface. On the shared path the
    # ICMP waits for the software switch to process the VOQ backlog
    # ahead of it (per-packet pipeline cost) and contends with the
    # host's own transmit backlog on the common NIC.
    dedicated_network: bool = True
    control_delay_ns: int = usec(1)
    switch_per_packet_cost_ns: int = 50

    # Night policy. ToRs know the schedule (the same knowledge that
    # lets retcpdyn's ToR act 150 us ahead), so they can announce the
    # *upcoming* TDN at the start of the reconfiguration night:
    #
    # * "slowdown" (default): announce at night start only when the
    #   upcoming TDN is slower — an early warning that stops senders
    #   from ACK-clocking a fast TDN's window into the gated VOQ, and
    #   pre-fills the VOQ with the new (small) window instead — the
    #   "initial burst" spike of Figure 7b. Speed-ups are announced at
    #   day start, when the capacity actually exists to absorb them.
    # * "always": announce the upcoming TDN at every night start.
    # * "none": only announce at day starts (notification carries the
    #   currently-active TDN, the paper's literal wire format).
    night_policy: str = "slowdown"

    def __post_init__(self) -> None:
        if self.night_policy not in ("slowdown", "always", "none"):
            raise ValueError(f"unknown night policy {self.night_policy!r}")

    @classmethod
    def unoptimized(cls) -> "NotifierConfig":
        """The configuration the 'unoptimized' TDTCP branch runs with."""
        return cls(packet_caching=False, pull_model=False, dedicated_network=False)

    def to_dict(self) -> dict:
        """Canonical JSON-ready view (every field, declaration order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "NotifierConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown NotifierConfig fields {sorted(unknown)}")
        return cls(**data)


@dataclass
class RDCNConfig:
    """Full testbed configuration (Figure 6 / §5.1).

    Byte-level parameters match the paper: 10/100 Gbps networks,
    ~100/40 us base RTTs, a 144 KB VOQ (the paper's 16 jumbo frames),
    180 us days and 20 us nights at 6:1. Two deliberate deviations,
    documented in DESIGN.md: the MSS is 1500 B (so the VOQ is 96
    segments — identical byte capacity, finer window granularity than
    jumbo frames give a Python-scale flow count), and each emulated
    host's access link gets the fabric fair share (the paper's 16
    containers share one NIC, so per-host rates there are likewise a
    fraction of the fabric rate).
    """

    # Topology
    n_hosts_per_rack: int = 8
    mss: int = 1_500

    # TDN 0: electrical packet network; TDN 1: optical circuit network.
    packet_rate_bps: float = gbps(10)
    optical_rate_bps: float = gbps(100)
    # Fabric one-way propagation, chosen so base RTTs land near the
    # paper's 100 us (packet) and 40 us (optical) including host links
    # and serialization.
    packet_one_way_ns: int = usec(46)
    optical_one_way_ns: int = usec(17)

    # Host access links: fabric fair share (optical rate / hosts).
    host_link_rate_bps: float = gbps(12.5)
    host_link_delay_ns: int = usec(1)

    # ToR virtual output queues: 144 KB, the paper's 16 jumbo frames.
    voq_capacity: int = 96
    ecn_threshold: int = 30  # CE-mark threshold K for DCTCP runs

    # Shared-memory ToR buffering (repro.net.queues.SharedBufferPool).
    # "static" keeps the paper's per-VOQ carving (plain queues, no pool
    # object — byte-identical traces to pre-pool builds); the other
    # policies back every VOQ of a ToR with one shared pool of
    # `buffer_total_capacity` cells (default: voq_capacity × the ToR's
    # VOQ count, i.e. the same total memory re-partitioned).
    buffer_policy: str = "static"
    buffer_alpha: float = 1.0          # dynamic-threshold alpha
    buffer_total_capacity: Optional[int] = None

    # Schedule: a week of `schedule_pattern` days (TDN ids), each
    # `day_ns` long, separated by `night_ns` reconfiguration blackouts.
    schedule_pattern: Tuple[int, ...] = (0, 0, 0, 0, 0, 0, 1)
    day_ns: int = usec(180)
    night_ns: int = usec(20)

    # reTCP-dyn: VOQ is enlarged to `retcpdyn_voq_capacity` starting
    # `retcpdyn_lead_ns` before each optical day (§5.2). 300 segments
    # of 1500 B = the paper's 50 jumbo frames.
    retcpdyn_voq_capacity: int = 300
    retcpdyn_lead_ns: int = usec(150)

    notifier: NotifierConfig = field(default_factory=NotifierConfig)

    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_hosts_per_rack <= 0:
            raise ValueError("need at least one host per rack")
        if not self.schedule_pattern:
            raise ValueError("schedule pattern cannot be empty")
        if self.voq_capacity <= 0:
            raise ValueError("VOQ capacity must be positive")
        if self.buffer_policy not in BUFFER_POLICIES:
            raise ValueError(
                f"unknown buffer policy {self.buffer_policy!r}; known: {BUFFER_POLICIES}"
            )
        if self.buffer_alpha <= 0:
            raise ValueError("buffer_alpha must be positive")
        if self.buffer_total_capacity is not None and self.buffer_total_capacity <= 0:
            raise ValueError("buffer_total_capacity must be positive")

    def tor_buffer_total(self, n_voqs: int) -> int:
        """The shared pool size one ToR gets for ``n_voqs`` VOQs."""
        if self.buffer_total_capacity is not None:
            return self.buffer_total_capacity
        return self.voq_capacity * max(n_voqs, 1)

    @property
    def n_tdns(self) -> int:
        return max(self.schedule_pattern) + 1

    @property
    def week_ns(self) -> int:
        return len(self.schedule_pattern) * (self.day_ns + self.night_ns)

    def tdn_rate_bps(self, tdn_id: int) -> float:
        return self.packet_rate_bps if tdn_id == 0 else self.optical_rate_bps

    def tdn_one_way_ns(self, tdn_id: int) -> int:
        return self.packet_one_way_ns if tdn_id == 0 else self.optical_one_way_ns

    def nominal_rtt_ns(self, tdn_id: int) -> int:
        """Queue-free base RTT of a host-to-host path through ``tdn_id``:
        propagation out and back (two host links plus the fabric hop each
        way) plus one MSS serialization on the host link and one on the
        fabric uplink. This is the fluid fast path's round-trip clock —
        queueing delay is added on top explicitly, so using a measured
        srtt here would double-count it."""
        prop = 2 * (2 * self.host_link_delay_ns + self.tdn_one_way_ns(tdn_id))
        host_ser = self.mss * 8 * SEC / self.host_link_rate_bps
        fabric_ser = self.mss * 8 * SEC / self.tdn_rate_bps(tdn_id)
        return int(prop + host_ser + fabric_ser)

    def to_dict(self) -> dict:
        """Canonical JSON-ready view; tuples become lists, the nested
        notifier its own dict."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "notifier":
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RDCNConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RDCNConfig fields {sorted(unknown)}")
        kwargs = dict(data)
        if "schedule_pattern" in kwargs:
            kwargs["schedule_pattern"] = tuple(kwargs["schedule_pattern"])
        if "notifier" in kwargs:
            kwargs["notifier"] = NotifierConfig.from_dict(kwargs["notifier"])
        return cls(**kwargs)
