"""ToR-generated TDN-change notifications (§3.2, §5.4).

At each day start the ToR sends every attached host an ICMP notification
carrying the new TDN ID. End-to-end delivery latency is the sum of three
components, each with an optimized and an unoptimized variant matching
the §5.4 study:

1. **Generation** — building the ICMP packet at the ToR. With packet
   caching the ToR keeps a pre-built packet and only fills in the TDN
   ID; without, it constructs the packet from scratch (8x slower at the
   median, 2.7x at the 99th percentile).
2. **Transport** — a dedicated control network delivers at a fixed low
   latency; the shared data network sends the ICMP down the same
   downlink as data packets, where it queues behind them.
3. **Host processing** — with the pull model every flow reads a global
   TDN variable (near-zero cost); with the push model the kernel walks
   all flows and updates each in turn, so the i-th flow sees the update
   only after ``i`` per-flow update costs.

Generation latency is sampled from a shifted-exponential distribution
whose median/tail parameters come from :class:`NotifierConfig`, so the
microbenchmark in ``benchmarks/test_notifier_micro.py`` can regenerate
the paper's reported ratios.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.net.node import Host
from repro.net.packet import MAX_TDN_ID, TDNNotification
from repro.net.switch import ToRSwitch
from repro.obs.telemetry import Telemetry
from repro.rdcn.config import NotifierConfig
from repro.rdcn.schedule import ScheduleDriver
from repro.sim.rng import SeededRandom
from repro.sim.simulator import Simulator


def sample_generation_delay_ns(
    rng: SeededRandom, p50_ns: int, tail_ns: int
) -> int:
    """One generation-latency sample.

    Shifted exponential: ``p50 + Exp(mean)`` with the mean chosen so the
    99th percentile lands at ``tail_ns``. Medians and tails then match
    the configured values closely over many samples.
    """
    if tail_ns <= p50_ns:
        return p50_ns
    # For Exp(mean): p99 - p50 of the shifted variable ~ mean*(ln 100 - ln 2).
    mean = (tail_ns - p50_ns) / (math.log(100.0) - math.log(2.0))
    # Median of Exp(mean) is mean*ln 2; shift so the median is exactly p50.
    shift = p50_ns - mean * math.log(2.0)
    sample = shift + rng.expovariate(1.0 / mean)
    return max(int(sample), 0)


class TDNNotifier:
    """Wires a :class:`ScheduleDriver` to per-rack host notification."""

    def __init__(
        self,
        sim: Simulator,
        driver: ScheduleDriver,
        config: NotifierConfig,
        rng: SeededRandom,
        tdn_rate_of=None,
        night_policy: str = "slowdown",
    ):
        self.sim = sim
        self.driver = driver
        self.config = config
        self.rng = rng.fork("notifier")
        # Generation-delay sampling draws from its own named child so
        # adding more notifier randomness (e.g. fault streams) later
        # never shifts the delay sequence.
        self._generation_rng = self.rng.fork("generation")
        # Rate lookup for the "slowdown" night policy; without one,
        # night announcements degrade to the "always"/"none" behaviour.
        self.tdn_rate_of = tdn_rate_of
        self.night_policy = night_policy
        self._racks: List[ToRSwitch] = []
        self._hosts_by_rack: Dict[int, List[Host]] = {}
        self.notifications_sent = 0
        # Monotonic per-notification emission counter (stamped into
        # notify_seq) so hosts can reject stale/duplicate arrivals.
        self._notify_seq = 0
        # Fault-injection hook (repro.faults): called per host delivery
        # as hook(host, notification) -> list of extra delays in ns
        # ([] drops, [0] delivers on time, extra entries duplicate).
        self.fault_hook = None
        # Latency samples (ns) from generation decision to host dispatch,
        # recorded for the §5.4 microbenchmarks.
        self.delivery_latency_samples: List[int] = []
        self._tp_deliver = Telemetry.of(sim).tracepoint("notifier:deliver")
        driver.on_day_start(self._day_started)
        if night_policy != "none":
            driver.on_night_start(self._night_started)

    def add_rack(self, tor: ToRSwitch, hosts: List[Host]) -> None:
        self._racks.append(tor)
        self._hosts_by_rack[tor.rack] = list(hosts)
        for host in hosts:
            # Protocol ceiling, not the schedule's current TDN count:
            # runtime schedule changes (§4.2) may introduce new ids.
            host.max_tdn_id = MAX_TDN_ID
        # Host-side processing cost per the push/pull model: under push,
        # host i's flows see the update after i per-flow update costs
        # (the "unlucky flows" of §5.4). Under pull the cost is one read.
        for index, host in enumerate(hosts):
            host.notification_processing_ns = self.host_processing_delay_ns(index)
            host.subscribe_tdn_changes(self._record_latency)

    def _record_latency(self, notification: TDNNotification) -> None:
        """Record send-to-processed latency (§5.4's end-to-end metric)."""
        latency_ns = self.sim.now - notification.generated_ns
        self.delivery_latency_samples.append(latency_ns)
        if self._tp_deliver.enabled:
            self._tp_deliver.emit(
                self.sim.now,
                host=notification.dst,
                tdn=notification.tdn_id,
                latency_ns=latency_ns,
            )

    def host_processing_delay_ns(self, flow_index: int) -> int:
        if self.config.pull_model:
            return self.config.pull_read_cost_ns
        return self.config.push_per_flow_cost_ns * (flow_index + 1)

    def generation_delay_ns(self) -> int:
        if self.config.packet_caching:
            return sample_generation_delay_ns(
                self._generation_rng,
                self.config.generation_cached_p50_ns,
                self.config.generation_cached_tail_ns,
            )
        return sample_generation_delay_ns(
            self._generation_rng,
            self.config.generation_uncached_p50_ns,
            self.config.generation_uncached_tail_ns,
        )

    # ------------------------------------------------------------------
    # Schedule hook
    # ------------------------------------------------------------------
    def _day_started(self, tdn_id: int, day_index: int) -> None:
        self._announce(tdn_id)

    def _night_started(self, day_index: int) -> None:
        """Maybe announce the upcoming TDN as the blackout begins."""
        days = self.driver.schedule.days
        current_tdn = days[day_index % len(days)].tdn_id
        next_tdn = days[(day_index + 1) % len(days)].tdn_id
        if next_tdn == current_tdn:
            return
        if self.night_policy == "slowdown" and self.tdn_rate_of is not None:
            if self.tdn_rate_of(next_tdn) >= self.tdn_rate_of(current_tdn):
                return  # speed-ups are announced at day start
        self._announce(next_tdn)

    def _announce(self, tdn_id: int) -> None:
        for tor in self._racks:
            delay = self.generation_delay_ns()
            self.sim.schedule(delay, self._emit, tor, tdn_id, self.sim.now)

    def _emit(self, tor: ToRSwitch, tdn_id: int, generated_ns: int) -> None:
        hosts = self._hosts_by_rack.get(tor.rack, [])
        hook = self.fault_hook
        for host in hosts:
            notification = TDNNotification(tor.name, host.address, tdn_id, generated_ns)
            notification.notify_seq = self._notify_seq
            self._notify_seq += 1
            self.notifications_sent += 1
            if hook is None:
                self._dispatch(tor, host, notification, 0)
                continue
            deliveries = hook(host, notification)
            for copy_index, extra_ns in enumerate(deliveries):
                if copy_index == 0:
                    duplicate = notification
                else:
                    # Duplicates are distinct packet objects sharing the
                    # original's notify_seq, so host-level seq filtering
                    # absorbs the storm.
                    duplicate = TDNNotification(tor.name, host.address, tdn_id, generated_ns)
                    duplicate.notify_seq = notification.notify_seq
                self._dispatch(tor, host, duplicate, extra_ns)

    def _dispatch(
        self, tor: ToRSwitch, host: Host, notification: TDNNotification, extra_ns: int
    ) -> None:
        if self.config.dedicated_network:
            # Dedicated control network: fixed, uncontended latency.
            self.sim.schedule(
                self.config.control_delay_ns + extra_ns, host.deliver, notification
            )
        elif extra_ns > 0:
            self.sim.schedule(extra_ns, self._send_via_downlink, tor, host, notification)
        else:
            # Shared data network: queue behind data packets on the
            # host's downlink.
            self._send_via_downlink(tor, host, notification)

    def _send_via_downlink(self, tor: ToRSwitch, host: Host, notification: TDNNotification) -> None:
        link = tor._downlinks.get(host.address)
        if link is None:
            # Host not wired through this ToR (unit tests): fall back to
            # direct delivery with control latency.
            self.sim.schedule(self.config.control_delay_ns, host.deliver, notification)
            return
        # The emulated hosts share one data-plane interface (Etalon's
        # containers sit behind one NIC and one Click process): the ICMP
        # contends with the host's own transmit backlog on the common
        # NIC and waits for the software switch to process the VOQ
        # backlog ahead of it, in addition to downlink queueing.
        contention_ns = host.egress.backlog_ns() if host.egress is not None else 0
        for uplink in tor._uplinks.values():
            queue = getattr(uplink, "queue", None)
            if queue is not None:
                contention_ns += len(queue) * self.config.switch_per_packet_cost_ns
        if contention_ns > 0:
            self.sim.schedule(contention_ns, link.send, notification)
        else:
            link.send(notification)
