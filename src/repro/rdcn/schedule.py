"""TDN schedules: days, nights, and weeks (§2.1).

A schedule is a cyclic sequence of *days* — each assigning one TDN to
the rack pair — separated by *nights* (reconfiguration blackouts during
which the fabric forwards nothing). The full cycle is a *week*.

:func:`pair_schedule` builds the demand-oblivious rotor view for one
rack pair in an ``n_racks`` fabric: the pair is directly connected by
the OCS in 1 of every ``n_racks - 1`` configurations and uses the packet
network otherwise, which for 8 racks gives the paper's 6:1 ratio.

:class:`ScheduleDriver` replays the schedule on a simulator and invokes
subscriber callbacks at day starts, day ends, and configurable lead
times before day starts (used by the reTCP-dyn buffer controller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs.telemetry import Telemetry
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class Day:
    """One schedule entry: ``tdn_id`` active for ``duration_ns``,
    followed by a ``night_ns`` blackout."""

    tdn_id: int
    duration_ns: int
    night_ns: int

    def __post_init__(self) -> None:
        if self.tdn_id < 0:
            raise ValueError("TDN id must be non-negative")
        if self.duration_ns <= 0:
            raise ValueError("day duration must be positive")
        if self.night_ns < 0:
            raise ValueError("night duration cannot be negative")


class TDNSchedule:
    """A cyclic week of days.

    Time 0 is the start of the first day. ``active_at(t)`` answers which
    TDN is up at absolute time ``t`` (None during a night).
    """

    def __init__(self, days: Sequence[Day]):
        if not days:
            raise ValueError("schedule needs at least one day")
        self.days: Tuple[Day, ...] = tuple(days)
        self._offsets: List[int] = []
        offset = 0
        for day in self.days:
            self._offsets.append(offset)
            offset += day.duration_ns + day.night_ns
        self.week_ns = offset

    @classmethod
    def uniform(cls, pattern: Sequence[int], day_ns: int, night_ns: int) -> "TDNSchedule":
        """All days equal length — the paper's configuration."""
        return cls([Day(tdn, day_ns, night_ns) for tdn in pattern])

    @property
    def n_tdns(self) -> int:
        return max(day.tdn_id for day in self.days) + 1

    def tdn_fraction(self, tdn_id: int) -> float:
        """Fraction of the week during which ``tdn_id`` is active."""
        up = sum(day.duration_ns for day in self.days if day.tdn_id == tdn_id)
        return up / self.week_ns

    def active_at(self, time_ns: int) -> Optional[int]:
        """TDN active at absolute time, or None during a night."""
        if time_ns < 0:
            raise ValueError("time must be non-negative")
        phase = time_ns % self.week_ns
        for offset, day in zip(self._offsets, self.days):
            if phase < offset:
                break
            if phase < offset + day.duration_ns:
                return day.tdn_id
            if phase < offset + day.duration_ns + day.night_ns:
                return None
        return None

    def segment_at(self, time_ns: int) -> Tuple[int, int, Optional[int]]:
        """The schedule segment containing absolute time ``time_ns``:
        ``(abs_start_ns, abs_end_ns, tdn_id)`` with ``tdn_id`` None
        during a night. The end is exclusive — the next segment starts
        exactly there. Used by the tiered fluid fast path to bound
        analytic integration to a constant-rate interval."""
        if time_ns < 0:
            raise ValueError("time must be non-negative")
        week_base = (time_ns // self.week_ns) * self.week_ns
        phase = time_ns - week_base
        for offset, day in zip(self._offsets, self.days):
            day_end = offset + day.duration_ns
            if phase < day_end:
                return (week_base + offset, week_base + day_end, day.tdn_id)
            if phase < day_end + day.night_ns:
                return (
                    week_base + day_end,
                    week_base + day_end + day.night_ns,
                    None,
                )
        raise AssertionError("phase outside week")  # pragma: no cover

    def segments_between(
        self, start_ns: int, end_ns: int
    ) -> List[Tuple[int, int, Optional[int]]]:
        """Constant-rate segments covering ``[start_ns, end_ns)``, each
        clipped to the interval: ``(abs_start, abs_end, tdn_id|None)``."""
        out: List[Tuple[int, int, Optional[int]]] = []
        t = start_ns
        while t < end_ns:
            seg_start, seg_end, tdn = self.segment_at(t)
            out.append((max(seg_start, start_ns), min(seg_end, end_ns), tdn))
            t = seg_end
        return out

    def day_starts_in_week(self, tdn_id: Optional[int] = None) -> List[int]:
        """Phase offsets (within one week) at which days start; filter by
        TDN id when given."""
        return [
            offset
            for offset, day in zip(self._offsets, self.days)
            if tdn_id is None or day.tdn_id == tdn_id
        ]

    def transitions_in_week(self) -> List[Tuple[int, Optional[int]]]:
        """(phase, new_state) transitions over one week; new_state is a
        TDN id at day start and None at night start."""
        transitions: List[Tuple[int, Optional[int]]] = []
        for offset, day in zip(self._offsets, self.days):
            transitions.append((offset, day.tdn_id))
            if day.night_ns > 0:
                transitions.append((offset + day.duration_ns, None))
        return transitions

    def rate_profile(self, rates_bps: Sequence[float]) -> List[Tuple[int, int, float]]:
        """(phase_start, phase_end, rate) pieces over one week, with rate
        0 during nights. Used by the analytic optimal curve."""
        pieces: List[Tuple[int, int, float]] = []
        for offset, day in zip(self._offsets, self.days):
            end = offset + day.duration_ns
            pieces.append((offset, end, rates_bps[day.tdn_id]))
            if day.night_ns > 0:
                pieces.append((end, end + day.night_ns, 0.0))
        return pieces


def pair_schedule(n_racks: int, day_ns: int, night_ns: int, optical_tdn: int = 1) -> TDNSchedule:
    """Demand-oblivious rotor schedule as seen by one rack pair.

    An ``n_racks`` rotor fabric cycles through ``n_racks - 1`` matchings;
    a given pair is directly connected in exactly one of them and falls
    back to the packet network (TDN 0) in the others.
    """
    if n_racks < 2:
        raise ValueError("need at least two racks")
    pattern = [0] * (n_racks - 2) + [optical_tdn]
    return TDNSchedule.uniform(pattern, day_ns, night_ns)


class ScheduleDriver:
    """Replays a :class:`TDNSchedule` on the simulator.

    Subscribers:

    * ``on_day_start(fn)`` — ``fn(tdn_id, day_index)`` when a day begins.
    * ``on_night_start(fn)`` — ``fn(day_index)`` when a blackout begins.
    * ``on_day_lead(lead_ns, fn, tdn_id)`` — ``fn(tdn_id, day_index)``
      fired ``lead_ns`` before each start of a ``tdn_id`` day (advance
      notice for the reTCP-dyn buffer controller). Lead callbacks for
      the first week fire only for days whose lead time is >= 0.
    """

    def __init__(self, sim: Simulator, schedule: TDNSchedule):
        self.sim = sim
        self.schedule = schedule
        self._day_start_fns: List[Callable[[int, int], None]] = []
        self._night_start_fns: List[Callable[[int], None]] = []
        self._lead_fns: List[Tuple[int, Callable[[int, int], None], Optional[int]]] = []
        self._started = False
        self._weeks_laid_out = 0
        self._base_ns = 0
        self.current_tdn: Optional[int] = None
        self.day_index = 0  # number of day starts so far
        # Fault-injection hook (repro.faults schedule_skew): called as
        # hook(phase, global_index, nominal_ns) -> extra delay in ns for
        # that day/night boundary. None = nominal timing.
        self.boundary_jitter = None
        # Skew can make boundaries fire out of order; stale ones are
        # counted and ignored (never raise), and the fabric resyncs on
        # the next in-order boundary.
        self.out_of_order_boundaries = 0
        self._tp_day_night = Telemetry.of(sim).tracepoint("rdcn:day_night")

    def on_day_start(self, fn: Callable[[int, int], None]) -> None:
        self._day_start_fns.append(fn)

    def on_night_start(self, fn: Callable[[int], None]) -> None:
        self._night_start_fns.append(fn)

    def on_day_lead(self, lead_ns: int, fn: Callable[[int, int], None], tdn_id: Optional[int] = None) -> None:
        if lead_ns < 0:
            raise ValueError("lead must be non-negative")
        if lead_ns >= self.schedule.week_ns:
            raise ValueError("lead must be shorter than a week")
        self._lead_fns.append((lead_ns, fn, tdn_id))

    def start(self) -> None:
        """Begin replaying the schedule from the current clock time.

        Weeks are laid out one week in advance so lead callbacks that
        cross a week boundary fire at the right time. Lead callbacks
        whose fire time would fall before the start are skipped (there
        is no "before the experiment").
        """
        if self._started:
            raise RuntimeError("schedule driver already started")
        self._started = True
        self._base_ns = self.sim.now
        self._lay_out_week(0)
        self._lay_out_week(1)
        self.sim.at(self._base_ns + self.schedule.week_ns, self._week_boundary)

    def _week_boundary(self) -> None:
        self._lay_out_week(self._weeks_laid_out)
        next_boundary = self._base_ns + (self._weeks_laid_out - 1) * self.schedule.week_ns
        self.sim.at(next_boundary, self._week_boundary)

    def _lay_out_week(self, week_number: int) -> None:
        week_start = self._base_ns + week_number * self.schedule.week_ns
        days_per_week = len(self.schedule.days)
        for local_index, (offset, day) in enumerate(
            zip(self.schedule.day_starts_in_week(), self.schedule.days)
        ):
            global_index = week_number * days_per_week + local_index
            start = week_start + offset
            jitter = self.boundary_jitter
            day_at = start
            night_at = start + day.duration_ns
            if jitter is not None:
                day_at = max(start + jitter("day", global_index, start), self.sim.now)
                night_at = max(night_at + jitter("night", global_index, night_at), self.sim.now)
            self.sim.at(day_at, self._day_start, day.tdn_id, global_index)
            if day.night_ns > 0:
                self.sim.at(night_at, self._night_start, global_index)
            for lead_ns, fn, want_tdn in self._lead_fns:
                if want_tdn is not None and day.tdn_id != want_tdn:
                    continue
                fire_at = start - lead_ns
                if fire_at >= self.sim.now:
                    self.sim.at(fire_at, fn, day.tdn_id, global_index)
        self._weeks_laid_out = week_number + 1

    def _day_start(self, tdn_id: int, global_index: int) -> None:
        if global_index + 1 <= self.day_index:
            # A skewed boundary arrived after a later one already fired:
            # applying it would roll the fabric back. Ignore and count.
            self.out_of_order_boundaries += 1
            return
        self.current_tdn = tdn_id
        self.day_index = global_index + 1
        if self._tp_day_night.enabled:
            self._tp_day_night.emit(
                self.sim.now, phase="day", tdn=tdn_id, day_index=global_index
            )
        for fn in self._day_start_fns:
            fn(tdn_id, global_index)

    def _night_start(self, global_index: int) -> None:
        if self.day_index > global_index + 1:
            # Stale night (a later day already started): ignore.
            self.out_of_order_boundaries += 1
            return
        self.current_tdn = None
        if self._tp_day_night.enabled:
            self._tp_day_night.emit(
                self.sim.now, phase="night", tdn=None, day_index=global_index
            )
        for fn in self._night_start_fns:
            fn(global_index)
