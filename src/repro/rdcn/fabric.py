"""The time-multiplexed rack-to-rack fabric.

Each ToR has one :class:`RackUplink` per remote rack: a VOQ drained by
whichever network (TDN) is currently active. During a night the VOQ is
gated — nothing is dequeued — which is exactly Etalon's reconfiguration
blackout. Packets already serialized onto the wire when a night begins
continue to their destination (they are physically in flight).

The uplink stamps each dequeued packet with the network that carried it
(``packet.network_id``) and applies the reTCP circuit mark when the
carrying network is marked as a circuit (§6, reTCP's switch support).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.net.packet import Packet, TCPSegment
from repro.net.queues import DropTailQueue
from repro.sim.events import Channel
from repro.sim.simulator import Simulator
from repro.units import serialization_delay_ns


@dataclass(frozen=True)
class NetworkPath:
    """Physical characteristics of one TDN's network."""

    tdn_id: int
    rate_bps: float
    one_way_delay_ns: int
    is_circuit: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("path rate must be positive")
        if self.one_way_delay_ns < 0:
            raise ValueError("path delay cannot be negative")


class RackUplink:
    """One direction of the cross-rack fabric: VOQ + active-path server.

    ``deliver`` receives packets at the remote ToR after serialization
    at the active path's rate plus that path's one-way delay.
    """

    def __init__(
        self,
        sim: Simulator,
        paths: Dict[int, NetworkPath],
        queue: DropTailQueue,
        deliver: Callable[[Packet], None],
        name: str = "uplink",
    ):
        if not paths:
            raise ValueError("uplink needs at least one network path")
        self.sim = sim
        self.paths = paths
        self.queue = queue
        self.deliver = deliver
        self.name = name
        self.active_tdn: Optional[int] = None
        self._busy = False
        self.tx_packets = 0
        self.tx_bytes = 0
        self.per_tdn_tx: Dict[int, int] = {tdn: 0 for tdn in paths}
        # Per-path size -> serialization delay memo; path rates are
        # fixed and packet sizes come from a handful of MSS/header
        # combinations. ``set_active`` swaps in the active path's memo
        # so the serve loop pays a plain dict get per packet.
        self._tx_delay_caches: Dict[int, Dict[int, int]] = {tdn: {} for tdn in paths}
        self._active_path: Optional[NetworkPath] = None
        self._active_delay_cache: Dict[int, int] = {}
        # Arrival channels (repro.sim.events.Channel): deliveries are
        # FIFO only *per path* — each TDN's one-way delay differs, so a
        # path switch at a day boundary could land a later departure
        # earlier — hence one deliver channel per network path. The
        # serializer needs no channel: the _busy gate means at most one
        # _tx_done is ever pending, so those are pooled one-shots.
        self._deliver_channels: Dict[int, Channel] = {
            tdn: sim.channel(f"{name}:deliver:tdn{tdn}") for tdn in paths
        }

    # ------------------------------------------------------------------
    # Schedule hooks
    # ------------------------------------------------------------------
    def set_active(self, tdn_id: Optional[int]) -> None:
        """Switch the active network (None = night blackout)."""
        if tdn_id is not None and tdn_id not in self.paths:
            raise KeyError(f"{self.name}: unknown TDN {tdn_id}")
        self.active_tdn = tdn_id
        if tdn_id is not None:
            self._active_path = self.paths[tdn_id]
            self._active_delay_cache = self._tx_delay_caches[tdn_id]
            self._serve()
        else:
            self._active_path = None

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Called by the ToR; returns False if the VOQ dropped it."""
        accepted = self.queue.push(packet, self.sim.now)
        # _serve's busy/night early-out inlined: while the server is
        # draining, every enqueue would otherwise pay a no-op frame.
        if accepted and not self._busy and self.active_tdn is not None:
            self._serve()
        return accepted

    def _serve(self) -> None:
        if self._busy or self.active_tdn is None:
            return
        # DropTailQueue.pop inlined (dequeue + observer dispatch): the
        # VOQ drain runs once per cross-rack packet.
        queue = self.queue
        fifo = queue._fifo
        if not fifo:
            return
        packet = fifo.popleft()
        if queue._pooled:
            # Pool-backed VOQ: the dequeue frees one shared-memory cell.
            queue.pool.release(queue)
        on_change = queue.on_length_change
        listeners = queue._length_listeners
        if on_change is not None or listeners:
            length = len(fifo)
            if on_change is not None:
                on_change(length)
            for fn in listeners:
                fn(length)
        path = self._active_path
        tdn_id = path.tdn_id
        packet.network_id = tdn_id
        if path.is_circuit and isinstance(packet, TCPSegment):
            packet.circuit_mark = True
        self._busy = True
        size = packet.size
        self.tx_packets += 1
        self.tx_bytes += size
        self.per_tdn_tx[tdn_id] += 1
        cache = self._active_delay_cache
        tx_delay = cache.get(size)
        if tx_delay is None:
            tx_delay = serialization_delay_ns(size, path.rate_bps)
            cache[size] = tx_delay
        # One of the two busiest schedule sites in the simulator;
        # serialization timers are pooled one-shots (≤1 pending).
        sim = self.sim
        sim._queue.push_pooled(sim.now + tx_delay, self._tx_done, (packet, path))

    # ------------------------------------------------------------------
    # Tiered-fidelity queries (repro.sim.fastpath)
    # ------------------------------------------------------------------
    def rate_for_tdn(self, tdn_id: int) -> float:
        """Serialization rate the VOQ drains at while ``tdn_id`` is up."""
        return self.paths[tdn_id].rate_bps

    def is_idle(self) -> bool:
        """True when nothing is queued or mid-serialization — the VOQ
        state a fluid span may start from (and re-materializes to)."""
        return not self._busy and not self.queue._fifo

    def _tx_done(self, packet: Packet, path: NetworkPath) -> None:
        # The packet is on the wire: it arrives even if a night started
        # mid-serialization. Delivery rides the channel of the path
        # that carried it, not whatever path is active by arrival time.
        self._deliver_channels[path.tdn_id].push(
            self.sim.now + path.one_way_delay_ns, self.deliver, (packet,)
        )
        self._busy = False
        # Skip the _serve frame when the VOQ is empty or a night is on.
        if self.active_tdn is not None and self.queue._fifo:
            self._serve()
