"""The time-multiplexed rack-to-rack fabric.

Each ToR has one :class:`RackUplink` per remote rack: a VOQ drained by
whichever network (TDN) is currently active. During a night the VOQ is
gated — nothing is dequeued — which is exactly Etalon's reconfiguration
blackout. Packets already serialized onto the wire when a night begins
continue to their destination (they are physically in flight).

The uplink stamps each dequeued packet with the network that carried it
(``packet.network_id``) and applies the reTCP circuit mark when the
carrying network is marked as a circuit (§6, reTCP's switch support).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.net.packet import Packet, TCPSegment
from repro.net.queues import DropTailQueue
from repro.sim.simulator import Simulator
from repro.units import serialization_delay_ns


@dataclass(frozen=True)
class NetworkPath:
    """Physical characteristics of one TDN's network."""

    tdn_id: int
    rate_bps: float
    one_way_delay_ns: int
    is_circuit: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("path rate must be positive")
        if self.one_way_delay_ns < 0:
            raise ValueError("path delay cannot be negative")


class RackUplink:
    """One direction of the cross-rack fabric: VOQ + active-path server.

    ``deliver`` receives packets at the remote ToR after serialization
    at the active path's rate plus that path's one-way delay.
    """

    def __init__(
        self,
        sim: Simulator,
        paths: Dict[int, NetworkPath],
        queue: DropTailQueue,
        deliver: Callable[[Packet], None],
        name: str = "uplink",
    ):
        if not paths:
            raise ValueError("uplink needs at least one network path")
        self.sim = sim
        self.paths = paths
        self.queue = queue
        self.deliver = deliver
        self.name = name
        self.active_tdn: Optional[int] = None
        self._busy = False
        self.tx_packets = 0
        self.tx_bytes = 0
        self.per_tdn_tx: Dict[int, int] = {tdn: 0 for tdn in paths}

    # ------------------------------------------------------------------
    # Schedule hooks
    # ------------------------------------------------------------------
    def set_active(self, tdn_id: Optional[int]) -> None:
        """Switch the active network (None = night blackout)."""
        if tdn_id is not None and tdn_id not in self.paths:
            raise KeyError(f"{self.name}: unknown TDN {tdn_id}")
        self.active_tdn = tdn_id
        if tdn_id is not None:
            self._serve()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Called by the ToR; returns False if the VOQ dropped it."""
        accepted = self.queue.push(packet, self.sim.now)
        if accepted:
            self._serve()
        return accepted

    def _serve(self) -> None:
        if self._busy or self.active_tdn is None:
            return
        packet = self.queue.pop()
        if packet is None:
            return
        path = self.paths[self.active_tdn]
        packet.network_id = path.tdn_id
        if path.is_circuit and isinstance(packet, TCPSegment):
            packet.circuit_mark = True
        self._busy = True
        self.tx_packets += 1
        self.tx_bytes += packet.size
        self.per_tdn_tx[path.tdn_id] += 1
        tx_delay = serialization_delay_ns(packet.size, path.rate_bps)
        self.sim.schedule(tx_delay, self._tx_done, packet, path)

    def _tx_done(self, packet: Packet, path: NetworkPath) -> None:
        # The packet is on the wire: it arrives even if a night started
        # mid-serialization.
        self.sim.schedule(path.one_way_delay_ns, self.deliver, packet)
        self._busy = False
        if self.active_tdn is not None:
            self._serve()
