"""Reconfigurable data center network (RDCN) substrate.

Implements the hybrid demand-oblivious RDCN of §2.1: a week of fixed-
duration days separated by reconfiguration nights, a time-multiplexed
rack-to-rack fabric with per-direction VOQs, and ToR-generated TDN
change notifications with the §5.4 latency component model.
"""

from repro.rdcn.config import RDCNConfig, NotifierConfig
from repro.rdcn.schedule import Day, TDNSchedule, ScheduleDriver, pair_schedule
from repro.rdcn.fabric import NetworkPath, RackUplink
from repro.rdcn.notifier import TDNNotifier
from repro.rdcn.topology import TwoRackTestbed, build_two_rack_testbed
from repro.rdcn.rotor import round_robin_matchings, schedule_for_pair
from repro.rdcn.opera import OperaConfig, OperaTestbed, build_opera_testbed

__all__ = [
    "RDCNConfig",
    "NotifierConfig",
    "Day",
    "TDNSchedule",
    "ScheduleDriver",
    "pair_schedule",
    "NetworkPath",
    "RackUplink",
    "TDNNotifier",
    "TwoRackTestbed",
    "build_two_rack_testbed",
    "round_robin_matchings",
    "schedule_for_pair",
    "OperaConfig",
    "OperaTestbed",
    "build_opera_testbed",
]
