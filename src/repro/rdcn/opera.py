"""An OCS-only rotor fabric with two-hop indirection (§6, RotorNet [30]
and Opera [29]).

"OCS-only RDCNs do not include a separate packet network; instead, ToRs
with no direct connectivity send traffic through transit ToRs or hold
traffic until direct connectivity is restored."

Model: ``n_racks`` ToRs cycle through the round-robin matchings of
:mod:`repro.rdcn.rotor`. During a slot a ToR has exactly one circuit —
to its matching partner — on which it sends, in priority order:

1. *direct* traffic destined to the partner's rack;
2. *transit* traffic it previously accepted on behalf of other racks
   (now deliverable directly, since transit packets are only ever
   relayed once);
3. when ``two_hop`` is enabled, *indirect* traffic for other racks,
   which the partner stores and forwards when it is matched to the
   destination (RotorNet's Valiant-style load balancing).

Latency to a fixed destination therefore swings between "direct this
slot" and "store-and-forward across slots" — the drastic variation that
motivates treating each configuration as its own TDN. Hosts receive the
current matching index as the TDN ID, so a TDTCP connection on this
fabric keeps one state set per matching (``n_racks - 1`` TDNs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.addressing import host_address, rack_of
from repro.net.link import Link
from repro.net.node import Host
from repro.net.packet import MAX_TDN_ID, Packet, TDNNotification
from repro.net.queues import (
    BUFFER_POLICIES,
    DropTailQueue,
    PooledDropTailQueue,
    SharedBufferPool,
)
from repro.rdcn.rotor import round_robin_matchings
from repro.sim.simulator import Simulator
from repro.units import gbps, serialization_delay_ns, usec


@dataclass
class OperaConfig:
    """Configuration of the OCS-only fabric."""

    n_racks: int = 4
    n_hosts_per_rack: int = 2
    mss: int = 1_500
    link_rate_bps: float = gbps(25)
    one_way_delay_ns: int = usec(5)
    host_link_rate_bps: float = gbps(12.5)
    host_link_delay_ns: int = usec(1)
    slot_ns: int = usec(180)
    night_ns: int = usec(20)
    voq_capacity: int = 96          # per destination rack
    two_hop: bool = True
    notification_delay_ns: int = usec(1)
    # "rotor": the fixed demand-oblivious round-robin cycle.
    # "demand-aware" (§6, Helios/ProjecToR class): each slot, a greedy
    # max-weight matching over current VOQ backlogs, with an aging bonus
    # so idle pairs are not starved. Hosts are then notified with their
    # rack's *partner id* as the TDN ID (the configuration space is no
    # longer a fixed cycle).
    matching_policy: str = "rotor"
    # Shared-memory ToR buffering (see RDCNConfig): "static" carves
    # voq_capacity per destination rack; the shared policies back each
    # ToR's n_racks-1 VOQs with one pool of buffer_total_capacity cells
    # (default: voq_capacity × (n_racks - 1), same total memory).
    buffer_policy: str = "static"
    buffer_alpha: float = 1.0
    buffer_total_capacity: Optional[int] = None
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_racks < 2 or self.n_racks % 2:
            raise ValueError("OCS-only fabric needs an even rack count >= 2")
        if self.n_hosts_per_rack < 1:
            raise ValueError("need at least one host per rack")
        if self.matching_policy not in ("rotor", "demand-aware"):
            raise ValueError(f"unknown matching policy {self.matching_policy!r}")
        # Protocol ceiling: the TDN ID travels in one byte capped at
        # MAX_TDN_ID, and hosts silently drop out-of-range notifications
        # (the graceful-degradation path) — a fabric whose IDs exceed the
        # cap would quietly stop adapting instead of failing loudly.
        # Rotor uses the slot index (0..n_racks-2); demand-aware uses the
        # partner rack id (0..n_racks-1), so its ceiling is one lower.
        if self.matching_policy == "demand-aware":
            max_racks = MAX_TDN_ID + 1
        else:
            max_racks = MAX_TDN_ID + 2
        if self.n_racks > max_racks:
            raise ValueError(
                f"n_racks={self.n_racks} exceeds the {self.matching_policy!r} "
                f"TDN-ID protocol ceiling of {max_racks} racks (MAX_TDN_ID="
                f"{MAX_TDN_ID}): hosts would silently ignore every "
                "out-of-range TDN notification"
            )
        if self.buffer_policy not in BUFFER_POLICIES:
            raise ValueError(
                f"unknown buffer policy {self.buffer_policy!r}; known: {BUFFER_POLICIES}"
            )
        if self.buffer_alpha <= 0:
            raise ValueError("buffer_alpha must be positive")
        if self.buffer_total_capacity is not None and self.buffer_total_capacity <= 0:
            raise ValueError("buffer_total_capacity must be positive")

    @property
    def n_slots(self) -> int:
        return self.n_racks - 1

    @property
    def tor_buffer_total(self) -> int:
        """Shared pool size per ToR (its n_racks - 1 VOQs combined)."""
        if self.buffer_total_capacity is not None:
            return self.buffer_total_capacity
        return self.voq_capacity * (self.n_racks - 1)

    @property
    def cycle_ns(self) -> int:
        """One full rotor cycle (the 'week')."""
        return self.n_slots * (self.slot_ns + self.night_ns)


class OperaToR:
    """A ToR on the rotor fabric: per-destination VOQs and one circuit."""

    def __init__(self, sim: Simulator, rack: int, config: OperaConfig):
        self.sim = sim
        self.rack = rack
        self.config = config
        self.name = f"opera-tor{rack}"
        self._downlinks: Dict[str, Link] = {}
        # Static policy: per-destination carving, exactly the pre-pool
        # behaviour. Shared policies: all of this ToR's VOQs draw from
        # one shared-memory pool — the regime where a hot destination
        # can borrow buffer from idle ones.
        self.pool: Optional[SharedBufferPool] = None
        if config.buffer_policy != "static":
            self.pool = SharedBufferPool(
                config.tor_buffer_total,
                policy=config.buffer_policy,
                alpha=config.buffer_alpha,
                name=f"{self.name}-pool",
            )
            self.voqs: Dict[int, DropTailQueue] = {
                dst: PooledDropTailQueue(self.pool, name=f"{self.name}-voq{dst}")
                for dst in range(config.n_racks)
                if dst != rack
            }
        else:
            self.voqs = {
                dst: DropTailQueue(config.voq_capacity, name=f"{self.name}-voq{dst}")
                for dst in range(config.n_racks)
                if dst != rack
            }
        self.partner: Optional[int] = None
        self.peers: Dict[int, "OperaToR"] = {}
        self._busy = False
        self.direct_tx = 0
        self.transit_tx = 0
        self.relayed_rx = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_downlink(self, host_addr: str, link: Link) -> None:
        self._downlinks[host_addr] = link

    # ------------------------------------------------------------------
    # Schedule hooks
    # ------------------------------------------------------------------
    def set_partner(self, partner: Optional[int]) -> None:
        """Slot start (a rack index) or night start (None)."""
        self.partner = partner
        if partner is not None:
            self._serve()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def forward(self, packet: Packet) -> None:
        """Entry from local hosts or from the fabric."""
        dst_rack = rack_of(packet.dst)
        if dst_rack == self.rack:
            link = self._downlinks.get(packet.dst)
            if link is None:
                raise KeyError(f"{self.name}: unknown local host {packet.dst}")
            link.send(packet)
            return
        self.voqs[dst_rack].push(packet, self.sim.now)
        self._serve()

    def receive_from_fabric(self, packet: Packet) -> None:
        dst_rack = rack_of(packet.dst)
        if dst_rack == self.rack:
            self.forward(packet)
            return
        # Transit: hold for the destination; deliverable when matched.
        self.relayed_rx += 1
        packet.relayed = True
        self.voqs[dst_rack].push(packet, self.sim.now)
        self._serve()

    def _next_packet(self) -> Optional[Packet]:
        """Priority: direct + previously-accepted transit for the
        partner, then (two-hop) fresh indirection for other racks."""
        assert self.partner is not None
        direct = self.voqs[self.partner]
        packet = direct.pop()
        if packet is not None:
            self.direct_tx += 1
            return packet
        if not self.config.two_hop:
            return None
        # Offer indirection: pick the longest other queue whose head
        # has not been relayed yet (one indirection hop max).
        candidates = [
            queue for dst, queue in self.voqs.items()
            if dst != self.partner and len(queue) > 0
            and queue.peek() is not None and not queue.peek().relayed
        ]
        if not candidates:
            return None
        queue = max(candidates, key=len)
        packet = queue.pop()
        self.transit_tx += 1
        return packet

    def _serve(self) -> None:
        if self._busy or self.partner is None:
            return
        packet = self._next_packet()
        if packet is None:
            return
        self._busy = True
        tx_delay = serialization_delay_ns(packet.size, self.config.link_rate_bps)
        self.sim.schedule(tx_delay, self._tx_done, packet, self.partner)

    def _tx_done(self, packet: Packet, partner: int) -> None:
        peer = self.peers[partner]
        self.sim.schedule(
            self.config.one_way_delay_ns, peer.receive_from_fabric, packet
        )
        self._busy = False
        if self.partner is not None:
            self._serve()


@dataclass
class OperaTestbed:
    """The assembled OCS-only fabric."""

    sim: Simulator
    config: OperaConfig
    matchings: List[List[tuple]]
    tors: Dict[int, OperaToR] = field(default_factory=dict)
    hosts: Dict[int, List[Host]] = field(default_factory=dict)
    slot_index: int = 0
    # Demand-aware state: slots since each pair was last served.
    pair_age: Dict[tuple, int] = field(default_factory=dict)
    chosen_matchings: List[List[tuple]] = field(default_factory=list)

    def host(self, rack: int, index: int) -> Host:
        return self.hosts[rack][index]

    def start(self) -> None:
        """Begin cycling the fabric from the current simulation time."""
        if self.config.matching_policy == "demand-aware":
            n = self.config.n_racks
            self.pair_age = {
                (a, b): 0 for a in range(n) for b in range(a + 1, n)
            }
        self._begin_slot(0)

    # ------------------------------------------------------------------
    def _pair_backlog(self, rack_a: int, rack_b: int) -> int:
        return len(self.tors[rack_a].voqs[rack_b]) + len(self.tors[rack_b].voqs[rack_a])

    def _demand_aware_matching(self) -> List[tuple]:
        """Greedy max-weight matching: backlog plus an aging bonus (so
        all-to-all connectivity is still eventually provided)."""
        weights = {
            pair: self._pair_backlog(*pair) + self.pair_age[pair]
            for pair in self.pair_age
        }
        matched: set = set()
        matching: List[tuple] = []
        for pair, _weight in sorted(weights.items(), key=lambda kv: -kv[1]):
            rack_a, rack_b = pair
            if rack_a in matched or rack_b in matched:
                continue
            matching.append(pair)
            matched.add(rack_a)
            matched.add(rack_b)
        for pair in self.pair_age:
            self.pair_age[pair] = 0 if pair in matching else self.pair_age[pair] + 1
        return sorted(matching)

    def _begin_slot(self, slot: int) -> None:
        if self.config.matching_policy == "demand-aware":
            matching = self._demand_aware_matching()
            self.chosen_matchings.append(matching)
        else:
            self.slot_index = slot % len(self.matchings)
            matching = self.matchings[self.slot_index]
        for rack_a, rack_b in matching:
            self.tors[rack_a].set_partner(rack_b)
            self.tors[rack_b].set_partner(rack_a)
        self._notify_hosts(matching, slot)
        self.sim.schedule(self.config.slot_ns, self._begin_night, slot)

    def _begin_night(self, slot: int) -> None:
        for tor in self.tors.values():
            tor.set_partner(None)
        self.sim.schedule(self.config.night_ns, self._begin_slot, slot + 1)

    def _notify_hosts(self, matching: List[tuple], slot: int) -> None:
        """Rotor policy: the slot index is the TDN ID (a fixed cycle of
        configurations). Demand-aware: there is no fixed cycle, so each
        rack's hosts get their *partner's rack id* as the TDN ID —
        'directly connected to rack p' is the recurring condition."""
        partner_of: Dict[int, int] = {}
        for rack_a, rack_b in matching:
            partner_of[rack_a] = rack_b
            partner_of[rack_b] = rack_a
        for rack, rack_hosts in self.hosts.items():
            if self.config.matching_policy == "demand-aware":
                tdn_id = partner_of.get(rack)
                if tdn_id is None:
                    continue  # unmatched this slot (odd leftover)
            else:
                tdn_id = slot % len(self.matchings)
            for host in rack_hosts:
                note = TDNNotification(f"opera-tor{rack}", host.address, tdn_id, self.sim.now)
                self.sim.schedule(self.config.notification_delay_ns, host.deliver, note)


def build_opera_testbed(config: OperaConfig, sim: Optional[Simulator] = None) -> OperaTestbed:
    """Construct the OCS-only rotor fabric."""
    sim = sim or Simulator()
    matchings = round_robin_matchings(config.n_racks)
    testbed = OperaTestbed(sim=sim, config=config, matchings=matchings)
    for rack in range(config.n_racks):
        tor = OperaToR(sim, rack, config)
        testbed.tors[rack] = tor
        rack_hosts: List[Host] = []
        for index in range(config.n_hosts_per_rack):
            host = Host(sim, host_address(rack, index))
            up = Link(
                sim, config.host_link_rate_bps, config.host_link_delay_ns,
                tor.forward, name=f"{host.address}-up",
            )
            down = Link(
                sim, config.host_link_rate_bps, config.host_link_delay_ns,
                lambda pkt, h=host: h.deliver(pkt), name=f"{host.address}-down",
            )
            host.attach_egress(up)
            tor.add_downlink(host.address, down)
            rack_hosts.append(host)
        testbed.hosts[rack] = rack_hosts
    for tor in testbed.tors.values():
        tor.peers = testbed.tors
    return testbed
