"""Demand-oblivious rotor schedules for N racks (§2.1, RotorNet-style).

A rotor fabric cycles through a fixed set of *matchings* — perfect
pairings of racks — such that over one week every rack pair is directly
connected exactly once. :func:`round_robin_matchings` produces the
classic circle-method tournament schedule; :func:`schedule_for_pair`
projects the global schedule onto a single rack pair, yielding the
day pattern a :class:`TDNSchedule` needs (the paper's 6:1 setting is
exactly the 8-rack projection).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.rdcn.schedule import TDNSchedule

Matching = List[Tuple[int, int]]


def round_robin_matchings(n_racks: int) -> List[Matching]:
    """The circle method: ``n_racks - 1`` perfect matchings covering
    every pair exactly once. ``n_racks`` must be even and >= 2."""
    if n_racks < 2 or n_racks % 2 != 0:
        raise ValueError("rotor matchings need an even rack count >= 2")
    fixed = n_racks - 1
    rotating = list(range(n_racks - 1))
    matchings: List[Matching] = []
    for _round in range(n_racks - 1):
        pairs: Matching = [(rotating[0], fixed)]
        for k in range(1, n_racks // 2):
            a = rotating[k]
            b = rotating[-k]
            pairs.append((min(a, b), max(a, b)))
        matchings.append(sorted(pairs))
        rotating = [rotating[-1]] + rotating[:-1]
    return matchings


def matching_index_for_pair(n_racks: int, rack_a: int, rack_b: int) -> int:
    """Which configuration of the week directly connects the pair."""
    if rack_a == rack_b:
        raise ValueError("a rack is always connected to itself")
    key = (min(rack_a, rack_b), max(rack_a, rack_b))
    for index, matching in enumerate(round_robin_matchings(n_racks)):
        if key in matching:
            return index
    raise LookupError(f"pair {key} not covered — impossible for a valid rotor")


def schedule_for_pair(
    n_racks: int,
    rack_a: int,
    rack_b: int,
    day_ns: int,
    night_ns: int,
    optical_tdn: int = 1,
) -> TDNSchedule:
    """The TDN day pattern one rack pair observes over a rotor week:
    the optical TDN in its matching's slot, the packet network (TDN 0)
    in every other slot."""
    slot = matching_index_for_pair(n_racks, rack_a, rack_b)
    pattern = [0] * (n_racks - 1)
    pattern[slot] = optical_tdn
    return TDNSchedule.uniform(pattern, day_ns, night_ns)
