"""Builds the two-rack Etalon testbed of Figure 6.

Two racks of hosts, each wired to a ToR through full-duplex access
links; the ToRs exchange traffic over a pair of :class:`RackUplink`
objects (one per direction) sharing the TDN schedule. A
:class:`ScheduleDriver` gates the uplinks; a :class:`TDNNotifier`
implements the ToR-to-host ICMP notifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.addressing import host_address
from repro.net.link import Link
from repro.net.node import Host
from repro.net.queues import (
    DropTailQueue,
    ECNMarkingQueue,
    PooledDropTailQueue,
    PooledECNMarkingQueue,
    SharedBufferPool,
)
from repro.net.switch import ToRSwitch
from repro.obs.telemetry import Telemetry
from repro.rdcn.config import RDCNConfig
from repro.rdcn.fabric import NetworkPath, RackUplink
from repro.rdcn.notifier import TDNNotifier
from repro.rdcn.schedule import ScheduleDriver, TDNSchedule
from repro.sim.rng import SeededRandom
from repro.sim.simulator import Simulator


@dataclass
class TwoRackTestbed:
    """Everything an experiment needs a handle on."""

    sim: Simulator
    config: RDCNConfig
    schedule: TDNSchedule
    driver: ScheduleDriver
    notifier: TDNNotifier
    rng: SeededRandom
    hosts: Dict[int, List[Host]] = field(default_factory=dict)
    tors: Dict[int, ToRSwitch] = field(default_factory=dict)
    uplinks: Dict[int, RackUplink] = field(default_factory=dict)  # by source rack
    # Per-ToR shared buffer pools (empty for the "static" policy, which
    # carves plain per-VOQ queues and constructs no pool objects).
    pools: Dict[int, SharedBufferPool] = field(default_factory=dict)

    def host(self, rack: int, index: int) -> Host:
        return self.hosts[rack][index]

    def start(self) -> None:
        """Arm the schedule; call once before ``sim.run``."""
        self.driver.start()


def build_two_rack_testbed(
    config: RDCNConfig,
    sim: Optional[Simulator] = None,
    ecn: bool = False,
) -> TwoRackTestbed:
    """Construct the testbed. ``ecn=True`` installs CE-marking VOQs
    (needed by DCTCP runs)."""
    sim = sim or Simulator()
    rng = SeededRandom(config.seed)

    schedule = TDNSchedule.uniform(config.schedule_pattern, config.day_ns, config.night_ns)
    driver = ScheduleDriver(sim, schedule)
    notifier = TDNNotifier(
        sim,
        driver,
        config.notifier,
        rng,
        tdn_rate_of=config.tdn_rate_bps,
        night_policy=config.notifier.night_policy,
    )

    testbed = TwoRackTestbed(
        sim=sim,
        config=config,
        schedule=schedule,
        driver=driver,
        notifier=notifier,
        rng=rng,
    )

    paths = {
        tdn: NetworkPath(
            tdn_id=tdn,
            rate_bps=config.tdn_rate_bps(tdn),
            one_way_delay_ns=config.tdn_one_way_ns(tdn),
            is_circuit=(tdn != 0),
            name="packet" if tdn == 0 else f"optical{tdn}",
        )
        for tdn in range(config.n_tdns)
    }

    tors = {rack: ToRSwitch(sim, rack) for rack in (0, 1)}
    for rack in (0, 1):
        rack_hosts: List[Host] = []
        for index in range(config.n_hosts_per_rack):
            host = Host(sim, host_address(rack, index))
            # Uplink (host -> ToR) and downlink (ToR -> host) access links.
            up = Link(
                sim,
                config.host_link_rate_bps,
                config.host_link_delay_ns,
                tors[rack].forward,
                name=f"{host.address}-up",
            )
            down = Link(
                sim,
                config.host_link_rate_bps,
                config.host_link_delay_ns,
                # Late-bound so tests (and fault injectors) can wrap
                # host.deliver after construction.
                lambda pkt, h=host: h.deliver(pkt),
                name=f"{host.address}-down",
            )
            host.attach_egress(up)
            tors[rack].add_downlink(host.address, down)
            rack_hosts.append(host)
        testbed.hosts[rack] = rack_hosts

    telemetry = Telemetry.of(sim)

    def make_voq(rack: int, name: str) -> DropTailQueue:
        """One VOQ, carved (static) or pool-backed (shared policies).

        Each ToR of the two-rack testbed has exactly one cross-rack
        VOQ, so its pool holds ``tor_buffer_total(1)`` cells; the
        per-queue hard cap is the pool total (the pool is the binding
        constraint; fault squeezes still clamp the cap below it).
        """
        if config.buffer_policy == "static":
            if ecn:
                voq: DropTailQueue = ECNMarkingQueue(
                    config.voq_capacity, config.ecn_threshold, name
                )
            else:
                voq = DropTailQueue(config.voq_capacity, name)
        else:
            pool = SharedBufferPool(
                config.tor_buffer_total(n_voqs=1),
                policy=config.buffer_policy,
                alpha=config.buffer_alpha,
                name=f"pool-r{rack}",
            )
            testbed.pools[rack] = pool
            telemetry.instrument_pool(pool, sim)
            if ecn:
                voq = PooledECNMarkingQueue(pool, config.ecn_threshold, name=name)
            else:
                voq = PooledDropTailQueue(pool, name=name)
        telemetry.instrument_queue(voq, sim)
        return voq

    for src_rack, dst_rack in ((0, 1), (1, 0)):
        uplink = RackUplink(
            sim,
            paths,
            make_voq(src_rack, f"voq-r{src_rack}-to-r{dst_rack}"),
            # forward directly (deliver_local is a plain delegate and
            # would cost one frame per cross-rack packet).
            tors[dst_rack].forward,
            name=f"uplink-r{src_rack}",
        )
        tors[src_rack].add_uplink(dst_rack, uplink)
        testbed.uplinks[src_rack] = uplink
        driver.on_day_start(lambda tdn, _idx, up=uplink: up.set_active(tdn))
        driver.on_night_start(lambda _idx, up=uplink: up.set_active(None))

    for rack in (0, 1):
        notifier.add_rack(tors[rack], testbed.hosts[rack])
    testbed.tors = tors
    return testbed
