"""TDTCP reproduction: Time-division TCP for reconfigurable DCNs.

Public API roadmap:

* :mod:`repro.sim` — discrete-event simulator core.
* :mod:`repro.net` — packets, links, queues, hosts, switches.
* :mod:`repro.rdcn` — schedules, the time-multiplexed fabric, the
  two-rack testbed builder, TDN-change notifications.
* :mod:`repro.tcp` — the single-path TCP stack (CUBIC/DCTCP/Reno).
* :mod:`repro.core` — TDTCP itself (the paper's contribution).
* :mod:`repro.mptcp` — MPTCP with the tdm scheduler.
* :mod:`repro.retcp` — reTCP and the dynamic-buffer controller.
* :mod:`repro.apps` — bulk-transfer workloads.
* :mod:`repro.metrics` — trace collectors and figure-series folding.
* :mod:`repro.experiments` — per-figure experiment definitions.
"""

__version__ = "1.0.0"

from repro.sim import Simulator
from repro.rdcn import RDCNConfig, build_two_rack_testbed
from repro.tcp import TCPConfig, TCPConnection

__all__ = [
    "Simulator",
    "RDCNConfig",
    "build_two_rack_testbed",
    "TCPConfig",
    "TCPConnection",
    "__version__",
]
