"""Single-path TCP stack: the substrate the paper's variants build on.

The stack mirrors the Linux structures the paper's §4.3 semantics are
written against: ``cwnd``/``ssthresh`` in MSS units, packet-based pipe
accounting (``packets_out``, ``lost_out``, ``sacked_out``,
``retrans_out``), a SACK scoreboard, the Open/Disorder/Recovery/Loss
congestion state machine, RFC 6298 RTO with Karn's rule, and RACK-TLP
loss detection.
"""

from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection, SegmentState
from repro.tcp.ranges import RangeSet
from repro.tcp.buffers import SendBuffer, ReceiveBuffer
from repro.tcp.rtt import RTTEstimator
from repro.tcp.state import CaState
from repro.tcp.cc import CongestionControl, make_congestion_control

__all__ = [
    "TCPConfig",
    "TCPConnection",
    "SegmentState",
    "RangeSet",
    "SendBuffer",
    "ReceiveBuffer",
    "RTTEstimator",
    "CaState",
    "CongestionControl",
    "make_congestion_control",
]
