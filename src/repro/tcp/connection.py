"""The TCP connection: send/receive paths, ACK processing, recovery.

The implementation deliberately mirrors the Linux structures the paper
describes in §4.3, generalized to *paths* from the start: all pipe
accounting (``packets_out``, ``sacked_out``, ``lost_out``,
``retrans_out``), the congestion state machine, the congestion
controller, and the RTT estimator live in a :class:`PathState`. A
regular single-path connection has exactly one path; TDTCP subclasses
this with one path per TDN and the four §4.3 semantic classes fall out
naturally:

* *current TDN* — new transmissions are tagged with and accounted to
  the current path;
* *all TDNs* — ACK validity checks sum ``packets_out`` across paths;
* *any TDN* — retransmission scheduling consults every path's
  ``lost_out``/state;
* *specific TDN* — ACKed segments decrement the counters of the path
  they were (last) sent on.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.addressing import FlowKey
from repro.net.node import Host
from repro.net.packet import TCPSegment
from repro.obs.telemetry import Telemetry
from repro.sim.simulator import Simulator
from repro.sim.timers import Timer
from repro.tcp.buffers import ReceiveBuffer, SendBuffer
from repro.tcp.cc import make_congestion_control
from repro.tcp.config import TCPConfig
from repro.tcp.options import clip_sack_blocks
from repro.tcp.rack import RackState, default_reo_wnd_ns
from repro.tcp.rtt import RTTEstimator
from repro.tcp.state import CaState

# Connection states (simplified teardown).
CLOSED = "closed"
LISTEN = "listen"
SYN_SENT = "syn-sent"
SYN_RCVD = "syn-rcvd"
ESTABLISHED = "established"
FIN_SENT = "fin-sent"
CLOSE_WAIT = "close-wait"


class SegmentState:
    """Sender-side bookkeeping for one outstanding segment."""

    __slots__ = (
        "seq",
        "end_seq",
        "payload_len",
        "is_syn",
        "is_fin",
        "sent_ns",
        "first_sent_ns",
        "retx_count",
        "sacked",
        "lost",
        "retrans_outstanding",
        "tdn_id",
        "hole_counted",
        "transmissions",
    )

    def __init__(self, seq: int, payload_len: int, is_syn: bool = False, is_fin: bool = False):
        self.seq = seq
        self.payload_len = payload_len
        # SYN/FIN occupy one sequence number each.
        self.end_seq = seq + payload_len + (1 if (is_syn or is_fin) else 0)
        self.is_syn = is_syn
        self.is_fin = is_fin
        self.sent_ns = 0
        self.first_sent_ns = 0
        self.retx_count = 0
        self.sacked = False
        self.lost = False
        self.retrans_outstanding = False
        self.tdn_id = 0
        self.hole_counted = False
        self.transmissions: List[TCPSegment] = []

    @property
    def delivered_ground_truth(self) -> bool:
        """Simulator ground truth: some transmission was not dropped."""
        return any(not pkt.dropped for pkt in self.transmissions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f
            for f, on in (
                ("S", self.sacked),
                ("L", self.lost),
                ("R", self.retrans_outstanding),
            )
            if on
        )
        return f"<Seg [{self.seq},{self.end_seq}) tdn={self.tdn_id} {flags}>"


class PathState:
    """Per-path (per-TDN) protocol state — the unit TDTCP duplicates."""

    __slots__ = (
        "tdn_id",
        "cc",
        "rtt",
        "ca_state",
        "high_seq",
        "cwr_seq",
        "packets_out",
        "sacked_out",
        "lost_out",
        "retrans_out",
        "delivery_rate_bps",
        "last_cwnd_update_ns",
        "last_retransmit_ns",
    )

    def __init__(self, clock, cc_name: str, config: TCPConfig, tdn_id: int = 0):
        self.tdn_id = tdn_id
        self.cc = make_congestion_control(cc_name, clock, initial_cwnd=config.initial_cwnd)
        self.rtt = RTTEstimator(config.min_rto_ns, config.max_rto_ns, config.initial_rto_ns)
        self.ca_state = CaState.OPEN
        self.high_seq = 0            # recovery exit marker
        self.cwr_seq = 0             # ECN once-per-window marker
        # Pipe variables (packets).
        self.packets_out = 0
        self.sacked_out = 0
        self.lost_out = 0
        self.retrans_out = 0
        # Telemetry: EWMA delivery rate (bits/s, gain 1/8) and the
        # timestamps of the last tracepoint-worthy events on this path
        # (mirrors what ``ss -ti`` reports per connection).
        self.delivery_rate_bps = 0.0
        self.last_cwnd_update_ns: Optional[int] = None
        self.last_retransmit_ns: Optional[int] = None

    @property
    def in_flight(self) -> int:
        """Linux's ``tcp_packets_in_flight``: packets believed in the pipe."""
        return self.packets_out - self.sacked_out - self.lost_out + self.retrans_out

    def enter_recovery(self, snd_nxt: int) -> None:
        self.ca_state = CaState.RECOVERY
        self.high_seq = snd_nxt
        self.cc.on_congestion_event()

    def enter_loss(self, snd_nxt: int) -> None:
        self.ca_state = CaState.LOSS
        self.high_seq = snd_nxt
        self.cc.on_rto()

    def maybe_exit_recovery(self, snd_una: int) -> bool:
        if self.ca_state.in_recovery and snd_una >= self.high_seq:
            self.ca_state = CaState.OPEN
            self.cc.on_recovery_exit()
            return True
        return False


class LossTrigger:
    """Context handed to the loss-marking hooks: what evidence caused
    the heuristic to consider a segment lost."""

    __slots__ = ("kind", "ack_tdn")

    def __init__(self, kind: str, ack_tdn: Optional[int]):
        self.kind = kind          # "dupsack", "rack", "rack-timer", "rto"
        self.ack_tdn = ack_tdn    # TDN the triggering ACK arrived on


class ConnStats:
    """Per-connection counters the experiments read out."""

    def __init__(self) -> None:
        self.bytes_acked = 0
        self.bytes_delivered = 0          # receiver side, in-order
        self.segments_sent = 0
        self.retransmissions = 0
        self.spurious_retransmissions = 0
        self.rtos = 0
        self.fast_recoveries = 0
        self.reordering_events: List[Tuple[int, int]] = []   # (time, affected pkts)
        # (time, spurious?, reason) — reason is the detection path
        # ("dupsack", "rack", "rack-timer", "rto").
        self.retransmit_marks: List[Tuple[int, bool, str]] = []
        self.tlp_probes = 0
        self.ecn_reductions = 0


class TCPConnection:
    """A full-duplex TCP endpoint (our workloads use it one-way)."""

    # Which TDN count to advertise in TD_CAPABLE (None = not TDTCP).
    td_capable_tdns: Optional[int] = None

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        remote_addr: str,
        remote_port: int,
        local_port: Optional[int] = None,
        cc_name: str = "cubic",
        config: Optional[TCPConfig] = None,
        name: Optional[str] = None,
    ):
        self.sim = sim
        self.host = host
        self.config = config or TCPConfig()
        self.cc_name = cc_name
        self.local_port = local_port if local_port is not None else host.allocate_port()
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.name = name or f"{host.address}:{self.local_port}"
        self.flow_key = FlowKey(host.address, self.local_port, remote_addr, remote_port)
        host.register_connection(self.flow_key, self)

        self.state = CLOSED
        self.paths: List[PathState] = self._make_paths()
        self.current_path_index = 0

        # Sequence space: ISS 0; SYN consumes seq 1, data starts at 1.
        self.snd_una = 0
        self.snd_nxt = 0
        # Scoreboard: seq -> SegmentState. Insertion order == sequence
        # order (snd_nxt is monotonic and only prefix entries are ever
        # deleted), so the dict doubles as the sorted segment index:
        # head access is next(iter(...)), and in-order scans break early
        # once past their sequence range.
        self.segments: Dict[int, SegmentState] = {}
        self._retx_pending: List[int] = []  # seqs marked lost awaiting retransmit
        # Tiered fidelity (repro.sim.fastpath): while True the fluid
        # model owns this connection's transfer and the send machinery
        # must stay quiescent — _maybe_send becomes a no-op.
        self._fluid_hold = False

        self.send_buffer = SendBuffer(
            capacity_bytes=self.config.send_buffer_packets * self.config.mss
        )
        self._stream_base = 1  # first data byte's sequence number
        self.fin_pending = False
        self.fin_sent = False

        self.recv_buffer = ReceiveBuffer(initial_rcv_nxt=0)
        self.peer_rwnd = 2 ** 40
        self._rwnd_bytes = self.config.rwnd_packets * self.config.mss
        self.rack = RackState()

        self.rto_timer = Timer(sim, self._on_rto, name=f"{self.name}-rto")
        self.reorder_timer = Timer(sim, self._on_reorder_timer, name=f"{self.name}-reorder")
        self.tlp_timer = Timer(sim, self._on_tlp_timer, name=f"{self.name}-tlp")
        self.delack_timer = Timer(sim, self._on_delack_timer, name=f"{self.name}-delack")
        self._delack_pending = False
        self._rto_backoff = 0

        self.stats = ConnStats()
        # Callbacks for applications / metrics.
        self.on_established: Optional[Callable[[], None]] = None
        self.on_delivered: Optional[Callable[[int, int], None]] = None  # (time, rcv_nxt)
        self.on_peer_fin: Optional[Callable[[], None]] = None

        # TDTCP negotiation result (None = plain TCP).
        self.negotiated_tdns: Optional[int] = None
        # TDN change pointer (§3.4): snd_nxt at the last TDN switch.
        self.tdn_change_seq = 0

        # Tracepoints, fetched once (Telemetry.of returns a disabled
        # stand-in when no telemetry is attached, so every emit site
        # below costs one attribute check in that case).
        telemetry = Telemetry.of(sim)
        self._tp_cwnd = telemetry.tracepoint("tcp:cwnd_update")
        self._tp_retransmit = telemetry.tracepoint("tcp:retransmit")
        self._tp_ca = telemetry.tracepoint("tcp:ca_state")

    # ------------------------------------------------------------------
    # Construction hooks (overridden by TDTCP)
    # ------------------------------------------------------------------
    def _make_paths(self) -> List[PathState]:
        return [PathState(self._clock(), self.cc_name, self.config, tdn_id=0)]

    def _clock(self):
        sim = self.sim

        class _Clock:
            @staticmethod
            def now_ns() -> int:
                return sim.now

        return _Clock()

    # ------------------------------------------------------------------
    # Path helpers
    # ------------------------------------------------------------------
    @property
    def current_path(self) -> PathState:
        return self.paths[self.current_path_index]

    def path_of(self, seg: SegmentState) -> PathState:
        """The path (TDN) state a segment is accounted to (§4.3
        'specific TDN' semantic)."""
        index = seg.tdn_id if seg.tdn_id < len(self.paths) else 0
        return self.paths[index]

    def total_packets_out(self) -> int:
        """§4.3 'all TDNs' semantic: outstanding packets across paths."""
        return sum(path.packets_out for path in self.paths)

    def any_path_has_losses(self) -> bool:
        """§4.3 'any TDN' semantic for retransmission scheduling."""
        return any(path.lost_out > 0 for path in self.paths)

    @property
    def wire_tdn(self) -> Optional[int]:
        """TDN ID carried in the TD_DATA_ACK option (None = plain TCP)."""
        return None

    # ------------------------------------------------------------------
    # Open / close
    # ------------------------------------------------------------------
    def listen(self) -> None:
        """Passive open: await a peer's SYN."""
        if self.state != CLOSED:
            raise RuntimeError(f"cannot listen from state {self.state}")
        self.state = LISTEN

    def connect(self) -> None:
        """Active open: send SYN."""
        if self.state != CLOSED:
            raise RuntimeError(f"cannot connect from state {self.state}")
        self.state = SYN_SENT
        syn = SegmentState(seq=0, payload_len=0, is_syn=True)
        # §A.2: the SYN is always tracked under TDN 0 — during the
        # handshake there is no notion of TDNs yet.
        syn.tdn_id = 0
        self.segments[0] = syn
        self.snd_nxt = 1
        self._transmit(syn)

    def close(self) -> None:
        """Half-close after all buffered data is sent and ACKed."""
        self.fin_pending = True
        self._maybe_send()

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def write(self, nbytes: int) -> None:
        """Queue application bytes for transmission."""
        self.send_buffer.write(nbytes)
        self._maybe_send()

    def start_bulk(self) -> None:
        """Mark the send buffer as never-ending (long-lived flow)."""
        self.send_buffer.unlimited = True
        self._maybe_send()

    # ------------------------------------------------------------------
    # Receive entry point
    # ------------------------------------------------------------------
    def receive(self, pkt: TCPSegment) -> None:
        """Entry point for every segment the host demuxes to this
        connection; dispatches on connection state."""
        if self.state == CLOSED:
            return
        if self.state == LISTEN:
            if pkt.syn:
                self._handle_syn(pkt)
            return
        if self.state == SYN_SENT:
            if pkt.syn and pkt.is_ack and pkt.ack >= 1:
                self._handle_syn_ack(pkt)
            return
        if self.state == SYN_RCVD:
            if pkt.is_ack and pkt.ack >= 1 and not pkt.syn:
                self.state = ESTABLISHED
                self._notify_established()
            # Fall through: the first ACK may carry data.
        if pkt.syn:
            # Duplicate SYN (our SYN-ACK was lost): re-acknowledge.
            self._send_ack()
            return
        if pkt.payload_len > 0 or pkt.fin:
            self._handle_data(pkt)
        if pkt.is_ack:
            self._handle_ack(pkt)

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def _handle_syn(self, pkt: TCPSegment) -> None:
        self.state = SYN_RCVD
        self.recv_buffer.rcv_nxt = pkt.seq + 1
        self.negotiated_tdns = self._negotiate(pkt.td_capable_tdns)
        syn_ack = SegmentState(seq=0, payload_len=0, is_syn=True)
        syn_ack.tdn_id = 0
        self.segments[0] = syn_ack
        self.snd_nxt = 1
        self._transmit(syn_ack, ack_flag=True)

    def _handle_syn_ack(self, pkt: TCPSegment) -> None:
        self.recv_buffer.rcv_nxt = pkt.seq + 1
        self.negotiated_tdns = self._negotiate(pkt.td_capable_tdns)
        syn = self.segments.pop(0, None)
        if syn is not None:
            self._unaccount_acked_segment(syn)
        self.snd_una = max(self.snd_una, pkt.ack)
        self.state = ESTABLISHED
        self._cancel_timers_if_idle()
        self._send_ack()
        self._notify_established()
        self._maybe_send()

    def _negotiate(self, peer_tdns: Optional[int]) -> Optional[int]:
        """TD_CAPABLE negotiation — overridden by TDTCP."""
        return None

    def _notify_established(self) -> None:
        if self.on_established is not None:
            callback, self.on_established = self.on_established, None
            callback()

    # ------------------------------------------------------------------
    # Receive path: data
    # ------------------------------------------------------------------
    def _handle_data(self, pkt: TCPSegment) -> None:
        end_seq = pkt.seq + pkt.payload_len
        fin_advance = 0
        if pkt.fin and end_seq == self.recv_buffer.rcv_nxt + pkt.payload_len:
            fin_advance = 1
        delivered = self.recv_buffer.receive(pkt.seq, end_seq + fin_advance)
        if pkt.fin and fin_advance and self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
            if self.on_peer_fin is not None:
                self.on_peer_fin()
        if delivered > 0:
            self.stats.bytes_delivered += max(delivered - fin_advance, 0)
            if self.on_delivered is not None:
                # Report clean stream bytes (SYN/FIN sequence slots
                # excluded) so sequence graphs start at zero.
                self.on_delivered(self.sim.now, self.stats.bytes_delivered)
        # ACK generation: immediate ACK, or RFC 1122 delayed ACK when
        # configured. Out-of-order arrivals (and anything needing an
        # ECN/mark echo) are acknowledged immediately — dup-ACK/SACK
        # feedback drives fast retransmit and must not be delayed. A
        # second in-order segment while one ACK is pending also goes out
        # now (ack-every-other). ``_delack_pending`` implies the delack
        # timer is armed, so the cancel hides behind the flag.
        if (
            self.config.delayed_ack_ns <= 0
            or delivered <= 0
            or pkt.ce
            or pkt.circuit_mark
            or self._delack_pending
        ):
            if self._delack_pending:
                self._delack_pending = False
                self.delack_timer.cancel()
            self._send_ack(echo_of=pkt)
        else:
            self._delack_pending = True
            self.delack_timer.start(self.config.delayed_ack_ns)

    def _on_delack_timer(self) -> None:
        if self._delack_pending:
            self._delack_pending = False
            self._send_ack()

    def _send_ack(self, echo_of: Optional[TCPSegment] = None) -> None:
        ack = TCPSegment(
            src=self.host.address,
            dst=self.remote_addr,
            sport=self.local_port,
            dport=self.remote_port,
            seq=self.snd_nxt,
            payload_len=0,
            ack=self.recv_buffer.rcv_nxt,
            is_ack=True,
            created_ns=self.sim.now,
        )
        # sack_blocks() returns () whenever the OOO set is empty — the
        # common case for a pure in-order ACK — so the call hides behind
        # a direct look at the RangeSet.
        if self.config.sack_enabled and self.recv_buffer._ooo._starts:
            blocks = self.recv_buffer.sack_blocks()
            if blocks:
                ack.sack_blocks = clip_sack_blocks(blocks)
        ack.rwnd = self._advertised_window()
        ack.ack_tdn = self.wire_tdn
        if echo_of is not None:
            if echo_of.ecn_capable and echo_of.ce:
                ack.ece = True
            if echo_of.circuit_mark:
                ack.circuit_echo = True
        self._decorate_ack(ack)
        ack.add_option_sizes()
        self._send_packet(ack)

    def _decorate_ack(self, ack: TCPSegment) -> None:
        """Hook: subclasses add options to outgoing pure ACKs (MPTCP
        attaches the data-level DSS ack here)."""

    def _decorate_data(self, pkt: TCPSegment, seg: "SegmentState") -> None:
        """Hook: subclasses add options to outgoing data segments
        (MPTCP attaches the DSS mapping here)."""

    def _send_packet(self, pkt: TCPSegment) -> None:
        """Hook: the last step before the wire. MPTCP subflows gate
        pure ACKs here when their TDN is inactive."""
        # Deliberately NOT inlined past host.send: tests and pacing
        # shims replace ``host.send`` per instance.
        self.host.send(pkt)

    def _advertised_window(self) -> int:
        # RangeSet maintains its coverage incrementally; reading the
        # field skips the ooo_bytes/coverage() frames on every send.
        window = self._rwnd_bytes - self.recv_buffer._ooo._cov
        mss = self.config.mss
        return window if window > mss else mss

    # ------------------------------------------------------------------
    # Receive path: ACK processing (sender side)
    # ------------------------------------------------------------------
    def _handle_ack(self, pkt: TCPSegment) -> None:
        # 'All TDNs' semantic: an ACK is only expected if data is
        # outstanding on *any* TDN.
        paths = self.paths
        outstanding = 0
        for p in paths:
            outstanding += p.packets_out
        if outstanding == 0:
            self.peer_rwnd = pkt.rwnd
            return
        if pkt.ack > self.snd_nxt:
            return  # acks data we never sent
        self.peer_rwnd = pkt.rwnd

        newly_acked = self._collect_cum_acked(pkt.ack)
        newly_sacked = self._apply_sack(pkt) if pkt.sack_blocks else []
        if pkt.ack > self.snd_una:
            self.snd_una = pkt.ack
            self._rto_backoff = 0

        # One pass over the newly acknowledged segments does the work of
        # three: the RTT sample election (_take_rtt_samples), the RACK
        # delivery bookkeeping (_update_rack), and the per-path ACK
        # credit tally. The standalone methods stay as the reference
        # semantics; the RTT estimator and RACK state are disjoint, so
        # interleaving their updates cannot change either outcome.
        npaths = len(paths)
        stats = self.stats
        update_on_delivered = self.rack.update_on_delivered
        sample_seg: Optional[SegmentState] = None
        acked_by_path: Dict[int, int] = {}
        for seg in newly_acked:
            if not (seg.is_syn or seg.is_fin):
                index = seg.tdn_id if seg.tdn_id < npaths else 0
                acked_by_path[index] = acked_by_path.get(index, 0) + 1
                stats.bytes_acked += seg.payload_len
            if seg.retx_count == 0:
                update_on_delivered(seg.sent_ns, seg.end_seq)
                if not seg.sacked and self._rtt_sample_allowed(seg, pkt):
                    if sample_seg is None or seg.end_seq > sample_seg.end_seq:
                        sample_seg = seg
        for seg in newly_sacked:
            if seg.retx_count == 0:
                update_on_delivered(seg.sent_ns, seg.end_seq)
                if self._rtt_sample_allowed(seg, pkt):
                    if sample_seg is None or seg.end_seq > sample_seg.end_seq:
                        sample_seg = seg
        if sample_seg is not None:
            self.path_of(sample_seg).rtt.update(self.sim.now - sample_seg.sent_ns)

        self._detect_losses(pkt)

        # Credit congestion controllers per path ('specific TDN').
        now = self.sim.now
        for index, count in acked_by_path.items():
            if not self._cc_credit_allowed(index, pkt):
                continue
            path = paths[index]
            path.cc.on_ack(count, path.rtt.latest_rtt_ns, path.in_flight, ece=pkt.ece)
            # Kernel-style delivery rate: delivered over the ACK
            # inter-arrival interval, not over an RTT (many ACKs land
            # per RTT). First sample falls back to the RTT.
            previous_ns = path.last_cwnd_update_ns
            path.last_cwnd_update_ns = now
            interval_ns = (
                now - previous_ns
                if previous_ns is not None
                else path.rtt.latest_rtt_ns
            )
            if interval_ns:
                rate_bps = count * self.config.mss * 8_000_000_000 / interval_ns
                path.delivery_rate_bps += (rate_bps - path.delivery_rate_bps) / 8.0
            if self._tp_cwnd.enabled:
                self._emit_cwnd(path, reason="ack")
        if pkt.ece:
            self._react_to_ecn()

        snd_una = self.snd_una
        for path in paths:
            # Inline gate for the common OPEN/DISORDER case; the method
            # re-checks the same condition before transitioning.
            ca = path.ca_state
            if (ca is CaState.RECOVERY or ca is CaState.LOSS) and snd_una >= path.high_seq:
                if path.maybe_exit_recovery(snd_una):
                    if self._tp_ca.enabled:
                        self._tp_ca.emit(
                            self.sim.now,
                            conn=self.name,
                            tdn=path.tdn_id,
                            state=path.ca_state.value,
                            reason="recovery-exit",
                        )
                    if self._tp_cwnd.enabled:
                        self._emit_cwnd(path, reason="recovery-exit")

        outstanding = 0
        for p in paths:
            outstanding += p.packets_out
        if outstanding == 0:
            self.rto_timer.cancel()
            self.reorder_timer.cancel()
            self.tlp_timer.cancel()
        elif newly_acked:
            # _restart_rto inlined (it stays as the reference for the
            # timer/transmit paths): this runs on nearly every ACK.
            backed_off = self._rto_ns() << min(self._rto_backoff, 8)
            max_rto = self.config.max_rto_ns
            self.rto_timer.start(backed_off if backed_off < max_rto else max_rto)
        if self.fin_sent and self.snd_una == self.snd_nxt:
            self.state = CLOSED
            return
        self._maybe_send()
        self._check_fin_progress()

    def _collect_cum_acked(self, ack: int) -> List[SegmentState]:
        """Remove and return segments fully covered by the cumulative ACK."""
        acked: List[SegmentState] = []
        segments = self.segments
        for seg in segments.values():  # dict is in ascending seq order
            if seg.end_seq > ack:
                break
            acked.append(seg)
        if acked:
            paths = self.paths
            npaths = len(paths)
            for seg in acked:
                del segments[seg.seq]
                # _unaccount_acked_segment inlined (the method remains
                # for the handshake path): runs for every segment a
                # cumulative ACK retires.
                path = paths[seg.tdn_id] if seg.tdn_id < npaths else paths[0]
                count = path.packets_out
                path.packets_out = count - 1 if count > 0 else 0
                if seg.sacked:
                    count = path.sacked_out
                    path.sacked_out = count - 1 if count > 0 else 0
                if seg.lost:
                    count = path.lost_out
                    path.lost_out = count - 1 if count > 0 else 0
                if seg.retrans_outstanding:
                    count = path.retrans_out
                    path.retrans_out = count - 1 if count > 0 else 0
            if self._retx_pending:
                acked_seqs = {a.seq for a in acked}
                self._retx_pending = [s for s in self._retx_pending if s not in acked_seqs]
        return acked

    def _unaccount_acked_segment(self, seg: SegmentState) -> None:
        path = self.path_of(seg)
        count = path.packets_out
        path.packets_out = count - 1 if count > 0 else 0
        if seg.sacked:
            count = path.sacked_out
            path.sacked_out = count - 1 if count > 0 else 0
        if seg.lost:
            count = path.lost_out
            path.lost_out = count - 1 if count > 0 else 0
        if seg.retrans_outstanding:
            count = path.retrans_out
            path.retrans_out = count - 1 if count > 0 else 0

    def _apply_sack(self, pkt: TCPSegment) -> List[SegmentState]:
        if not pkt.sack_blocks:
            return []
        newly: List[SegmentState] = []
        for block_start, block_end in pkt.sack_blocks:
            if block_end <= self.snd_una:
                continue
            for seg in self.segments.values():
                if seg.seq >= block_end:
                    break  # dict is in seq order; rest is past the block
                if seg.sacked:
                    continue
                if seg.seq >= block_start and seg.end_seq <= block_end:
                    seg.sacked = True
                    path = self.path_of(seg)
                    path.sacked_out += 1
                    if seg.lost:
                        # Lost mark was wrong or the retransmission got
                        # through; either way it is delivered now.
                        seg.lost = False
                        path.lost_out = max(path.lost_out - 1, 0)
                        if seg.seq in self._retx_pending:
                            self._retx_pending.remove(seg.seq)
                    if seg.retrans_outstanding:
                        # The data is acknowledged: its in-flight
                        # retransmission no longer counts against the
                        # pipe (Linux clears SACKED_RETRANS here too).
                        seg.retrans_outstanding = False
                        path.retrans_out = max(path.retrans_out - 1, 0)
                    newly.append(seg)
        return newly

    def _take_rtt_samples(
        self,
        newly_acked: List[SegmentState],
        newly_sacked: List[SegmentState],
        pkt: TCPSegment,
    ) -> None:
        """Karn's rule plus the TDTCP type-3 filter (via the hook).

        A segment is sampled when it is *first* acknowledged: at SACK
        time for out-of-order deliveries, at cumulative-ACK time
        otherwise. Previously-SACKed segments covered by a later
        cumulative ACK are excluded — their delivery happened earlier
        and ``now - sent_ns`` would grossly overestimate the RTT (the
        same exclusion the Linux stack applies).
        """
        sample_seg: Optional[SegmentState] = None
        for seg in newly_acked:
            if seg.retx_count > 0:
                continue  # Karn: never sample retransmitted segments
            if seg.sacked:
                continue  # first acknowledged long ago, via SACK
            if not self._rtt_sample_allowed(seg, pkt):
                continue  # §4.4: discard cross-TDN (type-3) samples
            if sample_seg is None or seg.end_seq > sample_seg.end_seq:
                sample_seg = seg
        for seg in newly_sacked:
            if seg.retx_count > 0:
                continue
            if not self._rtt_sample_allowed(seg, pkt):
                continue
            if sample_seg is None or seg.end_seq > sample_seg.end_seq:
                sample_seg = seg
        if sample_seg is not None:
            sample = self.sim.now - sample_seg.sent_ns
            self.path_of(sample_seg).rtt.update(sample)

    def _emit_cwnd(self, path: PathState, reason: str) -> None:
        """Emit ``tcp:cwnd_update`` for one path (callers guard on
        ``self._tp_cwnd.enabled``)."""
        self._tp_cwnd.emit(
            self.sim.now,
            conn=self.name,
            tdn=path.tdn_id,
            cwnd=path.cc.cwnd,
            ssthresh=path.cc.ssthresh,
            ca_state=path.ca_state.value,
            reason=reason,
        )

    def _rtt_sample_allowed(self, seg: SegmentState, pkt: TCPSegment) -> bool:
        """Hook: base TCP accepts every non-retransmitted sample."""
        return True

    def _cc_credit_allowed(self, path_index: int, pkt: TCPSegment) -> bool:
        """Hook: may this ACK grow ``paths[path_index]``'s window?
        Base TCP always allows it; TDTCP refuses to let ACKs returning
        on a different TDN mutate an inactive TDN's model (§3.1)."""
        return True

    def _update_rack(self, newly_acked: List[SegmentState], newly_sacked: List[SegmentState]) -> None:
        for seg in newly_acked:
            if seg.retx_count == 0:
                self.rack.update_on_delivered(seg.sent_ns, seg.end_seq)
        for seg in newly_sacked:
            if seg.retx_count == 0:
                self.rack.update_on_delivered(seg.sent_ns, seg.end_seq)

    # ------------------------------------------------------------------
    # Loss detection
    # ------------------------------------------------------------------
    def _detect_losses(self, pkt: TCPSegment) -> None:
        newly_lost: List[SegmentState] = []

        # SACK dup-threshold rule: a segment is a loss candidate when
        # >= dupthresh SACKed segments sit above it. The per-TDN counts
        # let TDTCP demand *same-TDN* evidence (§3.4): deliveries on a
        # different TDN say nothing about a slower TDN's in-flight data.
        # When no segment is SACKed on any path, every count is zero and
        # no dup rule (base or per-TDN) can fire, so the scan is skipped.
        sacked_any = False
        for p in self.paths:
            if p.sacked_out:
                sacked_any = True
                break
        if self.config.sack_enabled and sacked_any:
            sacked_above_total = 0
            sacked_above_by_tdn: Dict[int, int] = {}
            hole_candidates: List[SegmentState] = []
            for seg in reversed(self.segments.values()):
                if seg.sacked:
                    sacked_above_total += 1
                    sacked_above_by_tdn[seg.tdn_id] = sacked_above_by_tdn.get(seg.tdn_id, 0) + 1
                elif not seg.lost and seg.retx_count == 0:
                    if self._dup_rule_satisfied(seg, sacked_above_total, sacked_above_by_tdn):
                        hole_candidates.append(seg)
            if hole_candidates:
                self._note_reordering_event(hole_candidates)
                trigger = LossTrigger("dupsack", pkt.ack_tdn)
                for seg in hole_candidates:
                    if self._should_mark_lost(seg, trigger):
                        self._mark_lost(seg, reason="dupsack")
                        newly_lost.append(seg)

        # RACK: time-based marking. Before the first delivery
        # (xmit_ns is None) detect() has nothing to compare against, so
        # the candidate collection is skipped entirely. Both candidate
        # sets are gathered in one pass: marking a non-retransmitted
        # candidate lost cannot change the retransmission watch set
        # (candidates exclude retrans_outstanding segments), so the
        # pre-collected lists match what two sequential scans would see.
        if self.config.rack_enabled and self.rack.xmit_ns is not None:
            xmit_ns = self.rack.xmit_ns
            candidates: List[SegmentState] = []
            retx_candidates: List[SegmentState] = []
            retrans_any = False
            for p in self.paths:
                if p.retrans_out:
                    retrans_any = True
                    break
            if retrans_any:
                # Retransmissions in flight: scan everything so the
                # retransmission watch sees segments anywhere in the
                # sequence space (retransmit times are not seq-ordered).
                for seg in self.segments.values():
                    if seg.sacked:
                        continue
                    if seg.retrans_outstanding:
                        retx_candidates.append(seg)
                    elif not seg.lost:
                        candidates.append(seg)
            else:
                # No retransmissions outstanding: first-send times are
                # strictly monotone in sequence, and retransmission only
                # ever re-stamps sent_ns later. So once a never-
                # retransmitted segment is past the RACK reference
                # point, every later segment is too — all ineligible
                # (detect() would skip them) and the scan can stop.
                for seg in self.segments.values():
                    if seg.sent_ns > xmit_ns:
                        if seg.retx_count == 0:
                            break
                        continue
                    if not seg.sacked and not seg.lost:
                        candidates.append(seg)
            if candidates:
                lost, next_deadline = self.rack.detect(candidates, self._rack_reo_wnd)
                if lost:
                    rack_trigger = LossTrigger("rack", pkt.ack_tdn)
                    for seg in lost:
                        if self._should_mark_lost(seg, rack_trigger):
                            self._mark_lost(seg, reason="rack")
                            newly_lost.append(seg)
                if next_deadline is not None:
                    delay = max(next_deadline - xmit_ns, 1)
                    self.reorder_timer.start(delay)

            # Lost retransmissions: RACK also watches outstanding
            # retransmissions (their sent_ns was updated when re-sent);
            # when a retransmission is itself overdue, requeue it.
            if retx_candidates:
                retx_lost, _ = self.rack.detect(retx_candidates, self._rack_reo_wnd)
                for seg in retx_lost:
                    seg.retrans_outstanding = False
                    path = self.path_of(seg)
                    path.retrans_out = max(path.retrans_out - 1, 0)
                    if seg.seq not in self._retx_pending:
                        self._insert_retx_pending(seg.seq)

        if newly_lost:
            self._enter_recovery_for(newly_lost)

    def _rack_reo_wnd(self, seg: SegmentState) -> int:
        """Reorder window for RACK; TDTCP widens it for cross-TDN segs."""
        path = self.path_of(seg)
        return default_reo_wnd_ns(path.rtt.min_rtt_ns, self.config.rack_reo_wnd_frac)

    def _should_mark_lost(self, seg: SegmentState, trigger: LossTrigger) -> bool:
        """Hook: base TCP trusts the heuristics unconditionally."""
        return True

    def _dup_rule_satisfied(
        self, seg: SegmentState, sacked_above_total: int, sacked_above_by_tdn: Dict[int, int]
    ) -> bool:
        """Hook: is the SACK evidence above ``seg`` enough to call it a
        loss candidate? Base TCP counts every SACKed segment."""
        return sacked_above_total >= self.config.dupthresh

    def _note_reordering_event(self, hole_candidates: List[SegmentState]) -> None:
        fresh = [seg for seg in hole_candidates if not seg.hole_counted]
        if not fresh:
            return
        for seg in fresh:
            seg.hole_counted = True
        self.stats.reordering_events.append((self.sim.now, len(fresh)))

    def _mark_lost(self, seg: SegmentState, reason: str = "dupsack") -> None:
        if seg.lost or seg.sacked:
            return
        seg.lost = True
        path = self.path_of(seg)
        path.lost_out += 1
        if seg.retrans_outstanding:
            seg.retrans_outstanding = False
            path.retrans_out = max(path.retrans_out - 1, 0)
        if seg.seq not in self._retx_pending:
            self._insert_retx_pending(seg.seq)
        spurious = seg.delivered_ground_truth
        self.stats.retransmit_marks.append((self.sim.now, spurious, reason))

    def _insert_retx_pending(self, seq: int) -> None:
        # Keep sorted so retransmissions go out lowest-sequence first.
        bisect.insort(self._retx_pending, seq)

    def _enter_recovery_for(self, newly_lost: List[SegmentState]) -> None:
        paths_hit = {id(self.path_of(seg)): self.path_of(seg) for seg in newly_lost}
        for path in paths_hit.values():
            if not path.ca_state.in_recovery:
                path.enter_recovery(self.snd_nxt)
                self.stats.fast_recoveries += 1
                path.last_cwnd_update_ns = self.sim.now
                if self._tp_ca.enabled:
                    self._tp_ca.emit(
                        self.sim.now,
                        conn=self.name,
                        tdn=path.tdn_id,
                        state=path.ca_state.value,
                        reason="fast-recovery",
                    )
                if self._tp_cwnd.enabled:
                    self._emit_cwnd(path, reason="fast-recovery")
            elif path.ca_state == CaState.OPEN or path.ca_state == CaState.DISORDER:
                pass

    def _react_to_ecn(self) -> None:
        """Classic ECN (RFC 3168) reaction, once per window. DCTCP does
        its own per-window math inside the CC and is excluded here."""
        path = self.current_path
        if path.cc.name == "dctcp":
            return
        if path.ca_state.in_recovery:
            return
        if self.snd_una < path.cwr_seq:
            return
        path.cwr_seq = self.snd_nxt
        path.cc.on_congestion_event()
        self.stats.ecn_reductions += 1
        path.last_cwnd_update_ns = self.sim.now
        if self._tp_cwnd.enabled:
            self._emit_cwnd(path, reason="ecn")

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _restart_rto(self) -> None:
        backed_off = self._rto_ns() << min(self._rto_backoff, 8)
        self.rto_timer.start(min(backed_off, self.config.max_rto_ns))

    def _rto_ns(self) -> int:
        """Hook: base TCP uses the current path's estimator."""
        return self.current_path.rtt.rto_ns()

    def _cancel_timers_if_idle(self) -> None:
        if self.total_packets_out() == 0:
            self.rto_timer.cancel()
            self.reorder_timer.cancel()
            self.tlp_timer.cancel()

    def _on_rto(self) -> None:
        if self.total_packets_out() == 0:
            return
        self.stats.rtos += 1
        self._rto_backoff += 1
        # Mark every outstanding un-SACKed segment lost; each affected
        # path collapses (Linux semantics generalized per-path).
        affected: Dict[int, PathState] = {}
        for seg in self.segments.values():
            if seg.sacked:
                continue
            path = self.path_of(seg)
            # All retransmission state is void after an RTO: every
            # unsacked segment is lost and must be resent from scratch
            # (otherwise stale retrans_out keeps in_flight above the
            # collapsed window and the connection deadlocks).
            if seg.retrans_outstanding:
                seg.retrans_outstanding = False
                path.retrans_out = max(path.retrans_out - 1, 0)
            if not seg.lost:
                seg.lost = True
                path.lost_out += 1
            if seg.seq not in self._retx_pending:
                self._insert_retx_pending(seg.seq)
            affected[id(path)] = path
        for path in affected.values():
            path.enter_loss(self.snd_nxt)
            path.last_cwnd_update_ns = self.sim.now
            if self._tp_ca.enabled:
                self._tp_ca.emit(
                    self.sim.now,
                    conn=self.name,
                    tdn=path.tdn_id,
                    state=path.ca_state.value,
                    reason="rto",
                )
            if self._tp_cwnd.enabled:
                self._emit_cwnd(path, reason="rto")
        self._restart_rto()
        if self.state in (SYN_SENT, SYN_RCVD):
            # Handshake segments are retransmitted directly; the normal
            # send path only runs once established.
            syn_seg = self.segments.get(0)
            if syn_seg is not None:
                self._retransmit(syn_seg)
            return
        self._maybe_send()

    def _on_reorder_timer(self) -> None:
        if not self.config.rack_enabled or self.total_packets_out() == 0:
            return
        trigger = LossTrigger("rack-timer", None)
        candidates = [
            seg for seg in self.segments.values()
            if not seg.sacked and not seg.lost and not seg.retrans_outstanding
        ]
        lost, next_deadline = self.rack.detect(candidates, self._rack_reo_wnd, as_of_ns=self.sim.now)
        newly_lost = []
        for seg in lost:
            # The timer path is the paper's true-tail-loss fallback: the
            # TDN filter no longer applies once the window has elapsed.
            self._mark_lost(seg, reason="rack-timer")
            newly_lost.append(seg)
        del trigger
        if newly_lost:
            self._enter_recovery_for(newly_lost)
            self._maybe_send()
        elif next_deadline is not None:
            self.reorder_timer.start(max(next_deadline - self.sim.now, 1))

    def _on_tlp_timer(self) -> None:
        if self.total_packets_out() == 0:
            return
        if self.any_path_has_losses():
            return  # recovery is already driving retransmissions
        # Probe: retransmit the highest outstanding segment.
        last_seg: Optional[SegmentState] = None
        for seg in self.segments.values():
            if not seg.sacked:
                last_seg = seg
        if last_seg is None:
            return
        self.stats.tlp_probes += 1
        self._retransmit(last_seg, probe=True)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def _maybe_send(self) -> None:
        if self._fluid_hold:
            return
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            return
        while self._try_send_one():
            pass
        if self.fin_pending and not self.fin_sent:
            self._check_fin_progress()

    def _try_send_one(self) -> bool:
        """One send-loop step: a retransmission if any is due, else one
        new segment. Returns False when cwnd/window/app-limited."""
        path = self.paths[self.current_path_index]
        in_flight = path.packets_out - path.sacked_out - path.lost_out + path.retrans_out
        if in_flight >= int(path.cc.cwnd):
            return False
        if self._retx_pending:
            seg = self._next_retransmit_candidate()
            if seg is not None:
                self._retransmit(seg)
                return True
        return self._send_new_segment()

    def _next_retransmit_candidate(self) -> Optional[SegmentState]:
        while self._retx_pending:
            seq = self._retx_pending[0]
            seg = self.segments.get(seq)
            if seg is None or not seg.lost or seg.retrans_outstanding or seg.sacked:
                self._retx_pending.pop(0)
                continue
            self._retx_pending.pop(0)
            return seg
        return None

    def _send_new_segment(self) -> bool:
        # SendBuffer.available_beyond / within_capacity inlined: this is
        # the tail of every _try_send_one step, including the one that
        # returns False and ends the send loop.
        buf = self.send_buffer
        if buf.unlimited:
            available = 2 ** 62
        else:
            available = buf.written - (self.snd_nxt - self._stream_base)
            if available <= 0:
                return False
        capacity = buf.capacity_bytes
        if capacity is not None and (self.snd_nxt - self.snd_una) >= capacity:
            return False
        if self.snd_nxt - self.snd_una + self.config.mss > self.peer_rwnd:
            return False
        payload = min(self.config.mss, available)
        if (
            self.config.nagle_enabled
            and payload < self.config.mss
            and self.snd_nxt > self.snd_una
        ):
            # Nagle: a partial segment waits while data is outstanding
            # (an ACK will re-trigger the send path).
            return False
        seg = SegmentState(seq=self.snd_nxt, payload_len=payload)
        seg.tdn_id = self.current_path_index
        self.segments[seg.seq] = seg
        self.snd_nxt = seg.end_seq
        self._transmit(seg)
        return True

    def _transmit(self, seg: SegmentState, ack_flag: bool = True, probe: bool = False) -> None:
        now = self.sim.now
        pkt = TCPSegment(
            src=self.host.address,
            dst=self.remote_addr,
            sport=self.local_port,
            dport=self.remote_port,
            seq=seg.seq,
            payload_len=seg.payload_len,
            ack=self.recv_buffer.rcv_nxt,
            is_ack=ack_flag and not (seg.is_syn and self.state == SYN_SENT),
            syn=seg.is_syn,
            fin=seg.is_fin,
            created_ns=now,
        )
        pkt.ecn_capable = self.config.ecn_enabled
        pkt.rwnd = self._advertised_window()
        pkt.sent_ns = now
        pkt.retransmission = seg.retx_count > 0
        if seg.is_syn:
            pkt.td_capable_tdns = self.td_capable_tdns
        wire = self.wire_tdn
        pkt.data_tdn = wire
        pkt.ack_tdn = wire
        self._decorate_data(pkt, seg)
        pkt.add_option_sizes()

        first_time = seg.first_sent_ns == 0 and seg.retx_count == 0 and not seg.transmissions
        if first_time:
            seg.first_sent_ns = now
            paths = self.paths
            path = paths[seg.tdn_id] if seg.tdn_id < len(paths) else paths[0]
            path.packets_out += 1
            self.stats.segments_sent += 1
        seg.sent_ns = now
        seg.transmissions.append(pkt)
        self._send_packet(pkt)

        # Timer arming, with the Timer.armed property and the _arm_tlp
        # frame flattened out — this tail runs for every transmitted
        # data segment.
        if self.rto_timer._deadline is None:
            self._restart_rto()
        if not probe and self.config.tlp_enabled:
            srtt = self.paths[self.current_path_index].rtt.srtt_ns
            if srtt is None:
                pto = self.config.initial_rto_ns
            else:
                pto = int(self.config.tlp_srtt_multiplier * srtt)
            self.tlp_timer.start(pto if pto > 1 else 1)

    def _retransmit(self, seg: SegmentState, probe: bool = False) -> None:
        # Retransmissions go out on the *current* TDN ('any TDN'
        # semantic: at the earliest opportunity, whatever path is up).
        old_path = self.path_of(seg)
        new_index = self.current_path_index
        if seg.tdn_id != new_index:
            # Transfer pipe accounting to the new path.
            old_path.packets_out = max(old_path.packets_out - 1, 0)
            if seg.lost:
                old_path.lost_out = max(old_path.lost_out - 1, 0)
            seg.tdn_id = new_index
            new_path = self.path_of(seg)
            new_path.packets_out += 1
            if seg.lost:
                new_path.lost_out += 1
        path = self.path_of(seg)
        seg.retx_count += 1
        if not probe and not seg.retrans_outstanding:
            seg.retrans_outstanding = True
            path.retrans_out += 1
        self.stats.retransmissions += 1
        spurious = seg.delivered_ground_truth
        if spurious:
            self.stats.spurious_retransmissions += 1
        path.last_retransmit_ns = self.sim.now
        if self._tp_retransmit.enabled:
            self._tp_retransmit.emit(
                self.sim.now,
                conn=self.name,
                tdn=seg.tdn_id,
                seq=seg.seq,
                retx_count=seg.retx_count,
                probe=probe,
                spurious=spurious,
            )
        self._transmit(seg, probe=probe)

    # ------------------------------------------------------------------
    # FIN handling
    # ------------------------------------------------------------------
    def _check_fin_progress(self) -> None:
        if not self.fin_pending or self.fin_sent:
            return
        data_done = (
            not self.send_buffer.unlimited
            and self.send_buffer.available_beyond(self.snd_nxt - self._stream_base) == 0
        )
        if data_done and self.snd_una == self.snd_nxt:
            fin = SegmentState(seq=self.snd_nxt, payload_len=0, is_fin=True)
            fin.tdn_id = self.current_path_index
            self.segments[fin.seq] = fin
            self.snd_nxt = fin.end_seq
            self.fin_sent = True
            self.state = FIN_SENT
            self._transmit(fin)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert pipe-accounting consistency (tests call this after
        chaos runs; a violation means a counter leak like the ones
        documented in DESIGN.md §6b)."""
        actual = {
            "packets_out": [0] * len(self.paths),
            "sacked_out": [0] * len(self.paths),
            "lost_out": [0] * len(self.paths),
            "retrans_out": [0] * len(self.paths),
        }
        for seg in self.segments.values():
            index = seg.tdn_id if seg.tdn_id < len(self.paths) else 0
            actual["packets_out"][index] += 1
            if seg.sacked:
                actual["sacked_out"][index] += 1
            if seg.lost:
                actual["lost_out"][index] += 1
            if seg.retrans_outstanding:
                actual["retrans_out"][index] += 1
        for index, path in enumerate(self.paths):
            for field in ("packets_out", "sacked_out", "lost_out", "retrans_out"):
                counter = getattr(path, field)
                assert counter == actual[field][index], (
                    f"{self.name} path {index}: {field}={counter} but "
                    f"{actual[field][index]} segments carry the flag"
                )
            assert path.packets_out >= 0
            assert path.in_flight >= 0 or path.retrans_out > 0
        assert self.snd_una <= self.snd_nxt
        for seq in self._retx_pending:
            seg = self.segments.get(seq)
            assert seg is None or seg.lost or seg.sacked or True  # queue may be stale; consumed lazily

    def snapshot(self) -> dict:
        """Loggable view for debugging and tests."""
        return {
            "name": self.name,
            "state": self.state,
            "snd_una": self.snd_una,
            "snd_nxt": self.snd_nxt,
            "rcv_nxt": self.recv_buffer.rcv_nxt,
            "paths": [
                {
                    "tdn": p.tdn_id,
                    "cwnd": p.cc.cwnd,
                    "ssthresh": p.cc.ssthresh,
                    "ca_state": p.ca_state.value,
                    "packets_out": p.packets_out,
                    "sacked_out": p.sacked_out,
                    "lost_out": p.lost_out,
                    "retrans_out": p.retrans_out,
                    "srtt_ns": p.rtt.srtt_ns,
                }
                for p in self.paths
            ],
        }
