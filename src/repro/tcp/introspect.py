"""``ss -ti``-style connection introspection.

Renders live connection state the way the kernel's socket-statistics
tool would — one line per connection plus an indented detail line per
path (TDN). Useful when debugging experiments interactively and in the
examples.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.tcp.connection import TCPConnection


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def _format_rate(bps: float) -> str:
    for unit in ("bps", "Kbps", "Mbps", "Gbps"):
        if bps < 1000 or unit == "Gbps":
            return f"{bps:.1f}{unit}"
        bps /= 1000.0
    raise AssertionError("unreachable")


def _format_age(delta_ns: int) -> str:
    """Time since an event, ss-style (``lastsnd`` and friends)."""
    if delta_ns < 1_000_000:
        return f"{delta_ns / 1e3:.0f}us"
    return f"{delta_ns / 1e6:.1f}ms"


def describe_connection(conn: TCPConnection) -> str:
    """Multi-line ss-style description of one connection."""
    header = (
        f"{conn.state:<12} {conn.host.address}:{conn.local_port} -> "
        f"{conn.remote_addr}:{conn.remote_port}"
    )
    totals = (
        f"  bytes_acked:{_format_bytes(conn.stats.bytes_acked)}"
        f" bytes_received:{_format_bytes(conn.stats.bytes_delivered)}"
        f" segs_out:{conn.stats.segments_sent}"
        f" retrans:{conn.stats.retransmissions}"
        f" spurious:{conn.stats.spurious_retransmissions}"
        f" rtos:{conn.stats.rtos}"
        f" unacked:{conn.total_packets_out()}"
    )
    lines = [header, totals]
    multi_path = len(conn.paths) > 1
    for path in conn.paths:
        srtt = f"{path.rtt.srtt_ns / 1e6:.3f}ms" if path.rtt.srtt_ns else "-"
        rttvar = f"{path.rtt.rttvar_ns / 1e6:.3f}ms" if path.rtt.rttvar_ns else "-"
        label = f"  tdn:{path.tdn_id} " if multi_path else "  "
        # Per-path telemetry: EWMA delivery rate plus the ages of the
        # last cwnd-update / retransmit tracepoints (ss's delivery_rate
        # and lastsnd-style fields).
        telemetry = ""
        if path.delivery_rate_bps > 0:
            telemetry += f" delivery_rate:{_format_rate(path.delivery_rate_bps)}"
        if path.last_cwnd_update_ns is not None:
            telemetry += f" last_cwnd_update:{_format_age(conn.sim.now - path.last_cwnd_update_ns)}"
        if path.last_retransmit_ns is not None:
            telemetry += f" last_retransmit:{_format_age(conn.sim.now - path.last_retransmit_ns)}"
        lines.append(
            f"{label}{path.cc.name} cwnd:{path.cc.cwnd:.1f}"
            + (
                f" ssthresh:{path.cc.ssthresh:.1f}"
                if path.cc.ssthresh != float("inf")
                else ""
            )
            + f" rtt:{srtt}/{rttvar}"
            f" state:{path.ca_state.value}"
            f" pipe:{path.packets_out}/{path.sacked_out}/{path.lost_out}/{path.retrans_out}"
            + telemetry
        )
    extra = getattr(conn, "tdn_state", None)
    if extra is not None and not getattr(conn, "downgraded", False):
        lines.append(
            f"  tdtcp: current_tdn:{extra.current_index}"
            f" switches:{extra.switches}"
            f" change_ptr:{conn.tdn_change_seq}"
        )
    return "\n".join(lines)


def socket_summary(connections: Iterable[TCPConnection]) -> str:
    """ss-style listing of many connections."""
    parts: List[str] = []
    for conn in connections:
        parts.append(describe_connection(conn))
    return "\n".join(parts) if parts else "(no connections)"
