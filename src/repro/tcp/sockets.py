"""Small app-facing helpers for wiring connection pairs.

Experiments always need the same shape: a sender endpoint on one host,
a receiver endpoint on another, handshake completed, then bulk data.
:func:`create_connection_pair` builds both ends (of any connection
class) and kicks off the active open.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

from repro.net.node import Host
from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection


def create_connection_pair(
    sim: Simulator,
    client_host: Host,
    server_host: Host,
    cc_name: str = "cubic",
    config: Optional[TCPConfig] = None,
    connection_cls: Type[TCPConnection] = TCPConnection,
    server_port: int = 5001,
    connect: bool = True,
    **conn_kwargs,
) -> Tuple[TCPConnection, TCPConnection]:
    """Create (client, server) endpoints of ``connection_cls``.

    The server listens on ``server_port``; the client uses an ephemeral
    port. When ``connect`` is True the SYN goes out immediately.
    """
    config = config or TCPConfig()
    client_port = client_host.allocate_port()
    client = connection_cls(
        sim,
        client_host,
        remote_addr=server_host.address,
        remote_port=server_port,
        local_port=client_port,
        cc_name=cc_name,
        config=config,
        **conn_kwargs,
    )
    server = connection_cls(
        sim,
        server_host,
        remote_addr=client_host.address,
        remote_port=client_port,
        local_port=server_port,
        cc_name=cc_name,
        config=config,
        **conn_kwargs,
    )
    server.listen()
    if connect:
        client.connect()
    return client, server
