"""RACK-TLP loss detection (RFC 8985).

RACK declares a segment lost when a segment sent *after* it has already
been delivered (cumulatively ACKed or SACKed) and more than a reorder
window has elapsed relative to the delivered segment's transmission
time. Segments inside the reorder window are re-checked when the
reorder timer fires. TLP (tail loss probe) retransmits the last
outstanding segment after a probe timeout to elicit feedback for tail
drops — the mechanism §3.4 relies on to recover true cross-TDN tail
losses that the relaxed heuristic exempted.

The connection owns the timers; this module holds the pure state and
decision logic so it can be unit-tested in isolation.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple


class RackState:
    """Most-recently-delivered transmission state."""

    def __init__(self) -> None:
        # Transmission time and end sequence of the most recently *sent*
        # segment known to be delivered.
        self.xmit_ns: Optional[int] = None
        self.end_seq: int = 0

    def update_on_delivered(self, sent_ns: int, end_seq: int) -> None:
        """Record a newly delivered (ACKed/SACKed) segment."""
        if self.xmit_ns is None or sent_ns > self.xmit_ns or (
            sent_ns == self.xmit_ns and end_seq > self.end_seq
        ):
            self.xmit_ns = sent_ns
            self.end_seq = end_seq

    def detect(
        self,
        candidates: Iterable,
        reo_wnd_for: Callable[[object], int],
        as_of_ns: Optional[int] = None,
    ) -> Tuple[List[object], Optional[int]]:
        """Split outstanding segments into (lost_now, next_deadline).

        ``candidates`` are segment states with ``sent_ns`` attributes
        that are neither ACKed, SACKed, nor already marked lost.
        ``reo_wnd_for(seg)`` gives the reorder window to apply to each
        segment (TDTCP uses a wider window for cross-TDN segments).

        A segment is lost when its ``sent_ns + reo_wnd`` deadline is at
        or before the comparison point — the delivered transmission time
        on the ACK path, or ``as_of_ns`` when the reorder timer re-runs
        detection after waiting out the window (RFC 8985 step 5).

        Returns segments lost now, plus the earliest deadline among the
        remaining candidates (for arming the reorder timer), or None
        when no candidates remain.
        """
        if self.xmit_ns is None:
            return [], None
        compare_point = self.xmit_ns if as_of_ns is None else max(self.xmit_ns, as_of_ns)
        lost: List[object] = []
        next_deadline: Optional[int] = None
        for seg in candidates:
            if seg.sent_ns > self.xmit_ns:
                # Nothing sent after this segment has been delivered:
                # no reordering evidence against it (RACK-ineligible).
                continue
            deadline = seg.sent_ns + reo_wnd_for(seg)
            if deadline <= compare_point:
                lost.append(seg)
            else:
                if next_deadline is None or deadline < next_deadline:
                    next_deadline = deadline
        return lost, next_deadline


def default_reo_wnd_ns(min_rtt_ns: Optional[int], frac: float = 0.25, floor_ns: int = 1_000) -> int:
    """RFC 8985's reorder window: min_rtt / 4 (with a small floor)."""
    if min_rtt_ns is None:
        return floor_ns
    return max(int(min_rtt_ns * frac), floor_ns)
