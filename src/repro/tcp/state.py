"""The Linux congestion state machine (``ca_state``).

The paper's Figure 4 shows one of these per TDN; the single-path stack
keeps exactly one.
"""

from __future__ import annotations

import enum


class CaState(enum.Enum):
    """Congestion avoidance state, as in the Linux stack."""

    OPEN = "open"          # no anomaly: fast path
    DISORDER = "disorder"  # SACKed segments exist, no loss declared
    RECOVERY = "recovery"  # fast recovery after marked losses
    LOSS = "loss"          # RTO fired

    @property
    def in_recovery(self) -> bool:
        return self in (CaState.RECOVERY, CaState.LOSS)
