"""Sender and receiver buffers.

:class:`SendBuffer` tracks how many application bytes are available to
transmit past ``snd_una`` (bulk applications can declare an unlimited
backlog). :class:`ReceiveBuffer` reassembles out-of-order data, advances
``rcv_nxt``, and produces SACK blocks (most recently received first, as
RFC 2018 requires).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.tcp.ranges import RangeSet


class SendBuffer:
    """Application bytes queued for transmission.

    ``written`` is the absolute stream offset up to which the app has
    produced data. With ``unlimited=True`` there is always more data
    (long-lived flows of §5.1); a byte cap still applies through
    ``capacity_bytes`` relative to the unacknowledged base, modelling a
    finite socket send buffer.
    """

    def __init__(self, capacity_bytes: Optional[int] = None, unlimited: bool = False):
        self.capacity_bytes = capacity_bytes
        self.unlimited = unlimited
        self.written = 0

    def write(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot write a negative byte count")
        self.written += nbytes

    def available_beyond(self, offset: int) -> int:
        """Bytes ready to send past stream offset ``offset``."""
        if self.unlimited:
            return 2 ** 62
        return max(0, self.written - offset)

    def within_capacity(self, snd_una: int, snd_nxt: int) -> bool:
        """Whether sending one more segment respects the buffer cap."""
        if self.capacity_bytes is None:
            return True
        return (snd_nxt - snd_una) < self.capacity_bytes


class ReceiveBuffer:
    """Receiver-side reassembly.

    ``receive()`` returns the number of bytes newly delivered in order
    (rcv_nxt advance). Out-of-order ranges are retained and surfaced as
    SACK blocks; block 1 is always the range containing the most
    recently arrived segment.
    """

    def __init__(self, initial_rcv_nxt: int = 0, max_sack_blocks: int = 3):
        self.rcv_nxt = initial_rcv_nxt
        self.max_sack_blocks = max_sack_blocks
        self._ooo = RangeSet()
        # Most-recent-first list of representative points into OOO
        # ranges, used to order SACK blocks.
        self._recent: List[Tuple[int, int]] = []
        self.total_delivered = 0
        self.duplicate_bytes = 0

    @property
    def ooo_bytes(self) -> int:
        """Bytes held out of order (consumes receive window)."""
        return self._ooo.coverage()

    def receive(self, seq: int, end_seq: int) -> int:
        """Accept ``[seq, end_seq)``; returns newly in-order bytes."""
        if seq > end_seq:
            raise ValueError(f"invalid segment range [{seq}, {end_seq})")
        rcv_nxt = self.rcv_nxt
        if end_seq <= rcv_nxt:
            self.duplicate_bytes += end_seq - seq
            return 0
        if seq <= rcv_nxt and not self._ooo._starts:
            # Fast path: in-order data with nothing parked out of order
            # (the overwhelmingly common case for bulk flows). The
            # general path below would add [rcv_nxt, end_seq) to the
            # RangeSet and immediately remove it again — state-identical
            # to doing neither. Only the recent-block list and delivery
            # counters advance.
            recent = self._recent
            if recent:
                self._recent = recent = [
                    (s, e) for (s, e) in recent if not (rcv_nxt <= s < end_seq)
                ]
            recent.insert(0, (rcv_nxt, end_seq))
            del recent[8:]
            delivered = end_seq - rcv_nxt
            self.rcv_nxt = end_seq
            self.total_delivered += delivered
            return delivered
        clipped_seq = max(seq, self.rcv_nxt)
        if clipped_seq < seq or self._ooo.covers(clipped_seq, end_seq):
            self.duplicate_bytes += min(end_seq, max(seq, self.rcv_nxt)) - seq
        merged = self._ooo.add(clipped_seq, end_seq)
        self._note_recent(merged)
        delivered = 0
        if merged[0] <= self.rcv_nxt:
            new_rcv_nxt = merged[1]
            delivered = new_rcv_nxt - self.rcv_nxt
            self.rcv_nxt = new_rcv_nxt
            self._ooo.remove_below(self.rcv_nxt)
        self.total_delivered += delivered
        return delivered

    def _note_recent(self, merged: Tuple[int, int]) -> None:
        # Keep a short most-recent-first list of distinct ranges (by any
        # point inside them; ranges shift as they merge, so store the
        # merged range's start as representative and dedupe lazily).
        self._recent = [(s, e) for (s, e) in self._recent if not (merged[0] <= s < merged[1])]
        self._recent.insert(0, merged)
        del self._recent[8:]

    def sack_blocks(self) -> Tuple[Tuple[int, int], ...]:
        """Up to ``max_sack_blocks`` SACK blocks, most recent first."""
        if not self._ooo:
            return ()
        live = self._ooo.ranges()
        blocks: List[Tuple[int, int]] = []
        seen = set()
        for s, _e in self._recent:
            # Find the live range containing this representative point.
            for r_start, r_end in live:
                if r_start <= s < r_end and (r_start, r_end) not in seen:
                    blocks.append((r_start, r_end))
                    seen.add((r_start, r_end))
                    break
            if len(blocks) >= self.max_sack_blocks:
                break
        # Fill with any remaining ranges (oldest) if short.
        if len(blocks) < self.max_sack_blocks:
            for r in live:
                if r not in seen:
                    blocks.append(r)
                    seen.add(r)
                    if len(blocks) >= self.max_sack_blocks:
                        break
        return tuple(blocks)
