"""TCP option helpers and protocol constants (Figure 5).

The wire encoding itself is modelled by size constants on
:mod:`repro.net.packet`; this module holds the option *semantics*:
subtype values, the TD_CAPABLE negotiation rules, and SACK block
selection limits.
"""

from __future__ import annotations

from typing import Optional, Tuple

# TDTCP option subtypes (Figure 5b/5c).
TD_CAPABLE = 0
TD_DATA_ACK = 1

# At most 3 SACK blocks fit alongside the TDTCP options in a standard
# option space (RFC 2018 allows 3-4; with timestamps/TDTCP options 3).
MAX_SACK_BLOCKS = 3

# The TDN ID field is one byte (§4.1): at most 256 distinct TDNs.
MAX_TDNS = 256


def negotiate_td_capable(local_tdns: Optional[int], peer_tdns: Optional[int]) -> Optional[int]:
    """TD_CAPABLE handshake outcome.

    Both ends must advertise the *same* number of TDNs for TDTCP to be
    enabled (§4.2: the TDN IDs must refer to the same network condition
    at both parties). Any mismatch or absence downgrades to regular TCP.
    Returns the agreed TDN count, or None when downgraded.
    """
    if local_tdns is None or peer_tdns is None:
        return None
    if local_tdns != peer_tdns:
        return None
    if not (1 <= local_tdns <= MAX_TDNS):
        return None
    return local_tdns


def clip_sack_blocks(blocks: Tuple[Tuple[int, int], ...]) -> Tuple[Tuple[int, int], ...]:
    """Enforce the SACK option space limit."""
    return tuple(blocks[:MAX_SACK_BLOCKS])
