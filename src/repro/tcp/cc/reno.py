"""Reno / NewReno congestion control (RFC 5681 / 6582).

Slow start doubles per RTT; congestion avoidance adds one MSS per RTT;
a congestion event halves the window.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp.cc.base import CCClock, CongestionControl, register_cc


@register_cc("reno")
class RenoCC(CongestionControl):
    """Classic AIMD with SACK-aware fast recovery handled by the
    connection; this class only does the window arithmetic."""

    def __init__(self, clock: CCClock, initial_cwnd: float = 10.0, beta: float = 0.5):
        super().__init__(clock, initial_cwnd)
        if not (0.0 < beta < 1.0):
            raise ValueError("beta must be in (0, 1)")
        self.beta = beta
        self._avoidance_credit = 0.0

    def on_ack(self, acked_packets: int, rtt_ns: Optional[int], in_flight: int, ece: bool = False) -> None:
        if acked_packets <= 0:
            return
        if self.in_slow_start:
            # Grow one MSS per ACKed MSS, but do not overshoot ssthresh
            # (standard "slow start exits at ssthresh" behaviour).
            grow = min(float(acked_packets), max(self.ssthresh - self.cwnd, 0.0)) \
                if self.ssthresh != float("inf") else float(acked_packets)
            self.cwnd += grow
            acked_packets -= int(grow)
            if acked_packets <= 0:
                return
        # Congestion avoidance: cwnd += acked / cwnd.
        self._avoidance_credit += acked_packets / max(self.cwnd, 1.0)
        if self._avoidance_credit >= 1.0:
            whole = int(self._avoidance_credit)
            self.cwnd += whole
            self._avoidance_credit -= whole

    def on_congestion_event(self) -> None:
        self.ssthresh = max(self.cwnd * self.beta, self.min_cwnd)
        self.cwnd = self.ssthresh
        self._avoidance_credit = 0.0
