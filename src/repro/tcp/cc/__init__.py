"""Congestion control algorithms (pluggable, per §3.5).

TDTCP "does not propose a new congestion control algorithm — it simply
implements one of the available CCAs in each TDN". The registry here is
what makes that pluggability real: any registered CCA can run per-TDN.
"""

from repro.tcp.cc.base import CongestionControl, CCClock, register_cc, make_congestion_control, registered_cc_names
from repro.tcp.cc.reno import RenoCC
from repro.tcp.cc.cubic import CubicCC
from repro.tcp.cc.dctcp import DCTCPCC
from repro.tcp.cc.highspeed import HighSpeedCC
from repro.tcp.cc.westwood import WestwoodCC

__all__ = [
    "CongestionControl",
    "CCClock",
    "register_cc",
    "make_congestion_control",
    "registered_cc_names",
    "RenoCC",
    "CubicCC",
    "DCTCPCC",
    "HighSpeedCC",
    "WestwoodCC",
]
