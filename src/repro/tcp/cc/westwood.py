"""TCP Westwood+ (Mascolo et al., MobiCom 2001; §6 related work).

Estimates the eligible rate from the ACK stream (EWMA of delivered
bytes per unit time) and, on a congestion event, sets the window to the
estimated bandwidth-delay product instead of blindly halving —
"bandwidth estimation for enhanced transport over wireless links". In
an RDCN the estimate averages across TDNs, which is exactly the failure
mode §6 predicts for this family; having it runnable makes that
testable.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp.cc.base import CCClock, CongestionControl, register_cc
from repro.units import SEC


@register_cc("westwood")
class WestwoodCC(CongestionControl):
    """Westwood+ window arithmetic with rate estimation."""

    # EWMA smoothing over ~RTT-scale intervals.
    GAIN = 0.2

    def __init__(self, clock: CCClock, initial_cwnd: float = 10.0, mss: int = 1500):
        super().__init__(clock, initial_cwnd)
        self.mss = mss
        self.bw_estimate_bps = 0.0
        self._interval_start_ns: Optional[int] = None
        self._interval_acked = 0
        self._min_rtt_ns: Optional[int] = None
        self._avoidance_credit = 0.0

    def _update_bandwidth(self, acked_packets: int, rtt_ns: Optional[int]) -> None:
        now = self.clock.now_ns()
        if rtt_ns:
            if self._min_rtt_ns is None or rtt_ns < self._min_rtt_ns:
                self._min_rtt_ns = rtt_ns
        if self._interval_start_ns is None:
            self._interval_start_ns = now
            self._interval_acked = acked_packets
            return
        self._interval_acked += acked_packets
        elapsed = now - self._interval_start_ns
        window = self._min_rtt_ns or 100_000
        if elapsed >= window:
            sample_bps = self._interval_acked * self.mss * 8 * SEC / elapsed
            if self.bw_estimate_bps == 0.0:
                self.bw_estimate_bps = sample_bps
            else:
                self.bw_estimate_bps += self.GAIN * (sample_bps - self.bw_estimate_bps)
            self._interval_start_ns = now
            self._interval_acked = 0

    def on_ack(self, acked_packets: int, rtt_ns: Optional[int], in_flight: int, ece: bool = False) -> None:
        if acked_packets <= 0:
            return
        self._update_bandwidth(acked_packets, rtt_ns)
        if self.in_slow_start:
            grow = min(float(acked_packets), max(self.ssthresh - self.cwnd, 0.0)) \
                if self.ssthresh != float("inf") else float(acked_packets)
            self.cwnd += grow
            acked_packets -= int(grow)
            if acked_packets <= 0:
                return
        self._avoidance_credit += acked_packets / max(self.cwnd, 1.0)
        if self._avoidance_credit >= 1.0:
            whole = int(self._avoidance_credit)
            self.cwnd += whole
            self._avoidance_credit -= whole

    def _bdp_packets(self) -> float:
        if self.bw_estimate_bps <= 0.0 or self._min_rtt_ns is None:
            return 0.0
        return self.bw_estimate_bps * (self._min_rtt_ns / SEC) / (8 * self.mss)

    def on_congestion_event(self) -> None:
        bdp = self._bdp_packets()
        if bdp > 0:
            self.ssthresh = max(bdp, self.min_cwnd)
        else:
            self.ssthresh = max(self.cwnd / 2.0, self.min_cwnd)
        self.cwnd = min(self.cwnd, self.ssthresh)
        self._avoidance_credit = 0.0

    def on_rto(self) -> None:
        bdp = self._bdp_packets()
        self.ssthresh = max(bdp, self.min_cwnd) if bdp > 0 else max(self.cwnd / 2.0, self.min_cwnd)
        self.cwnd = 1.0

    def snapshot(self) -> dict:
        data = super().snapshot()
        data["bw_estimate_bps"] = self.bw_estimate_bps
        return data
