"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

The switch CE-marks packets above queue threshold K; the receiver echoes
marks; the sender maintains ``alpha``, an EWMA of the marked fraction
per window, and reduces ``cwnd`` by ``alpha/2`` once per window when
marks were seen. Loss handling falls back to Reno-style halving.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp.cc.base import CCClock, CongestionControl, register_cc


@register_cc("dctcp")
class DCTCPCC(CongestionControl):
    """DCTCP window arithmetic; the connection feeds per-ACK ECE bits."""

    G = 1 / 16  # alpha EWMA gain

    def __init__(self, clock: CCClock, initial_cwnd: float = 10.0):
        super().__init__(clock, initial_cwnd)
        self.alpha = 1.0  # start conservative, converges quickly
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._window_acked_target = max(int(initial_cwnd), 1)
        self._avoidance_credit = 0.0

    def on_ack(self, acked_packets: int, rtt_ns: Optional[int], in_flight: int, ece: bool = False) -> None:
        if acked_packets <= 0:
            return
        self._acked_in_window += acked_packets
        if ece:
            self._marked_in_window += acked_packets
        # Window growth: identical to Reno.
        if self.in_slow_start:
            grow = min(float(acked_packets), max(self.ssthresh - self.cwnd, 0.0)) \
                if self.ssthresh != float("inf") else float(acked_packets)
            self.cwnd += grow
            remaining = acked_packets - int(grow)
        else:
            remaining = acked_packets
        if remaining > 0 and not self.in_slow_start:
            self._avoidance_credit += remaining / max(self.cwnd, 1.0)
            if self._avoidance_credit >= 1.0:
                whole = int(self._avoidance_credit)
                self.cwnd += whole
                self._avoidance_credit -= whole
        # One observation window ~ one cwnd of ACKs.
        if self._acked_in_window >= self._window_acked_target:
            self._end_window()

    def _end_window(self) -> None:
        fraction = self._marked_in_window / max(self._acked_in_window, 1)
        self.alpha = (1 - self.G) * self.alpha + self.G * fraction
        if self._marked_in_window > 0:
            # ECN-triggered reduction, once per window.
            self.cwnd = max(self.cwnd * (1.0 - self.alpha / 2.0), self.min_cwnd)
            self.ssthresh = self.cwnd
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._window_acked_target = max(int(self.cwnd), 1)

    def on_congestion_event(self) -> None:
        # Packet loss: fall back to standard halving.
        self.ssthresh = max(self.cwnd * 0.5, self.min_cwnd)
        self.cwnd = self.ssthresh
        self._avoidance_credit = 0.0

    def snapshot(self) -> dict:
        data = super().snapshot()
        data["alpha"] = self.alpha
        return data
