"""HighSpeed TCP (RFC 3649).

The §6 related-work family: "TCP variants for high-speed networks ramp
up more aggressively and can recover more quickly from estimation
errors, but do not address the root of the problem." Included so the
claim can be tested on the RDCN: aggressive ramping alone does not fix
TDN-blind congestion state.

Above a window of 38 MSS, the additive increase ``a(w)`` grows and the
multiplicative decrease ``b(w)`` shrinks with the window, per the RFC's
response function; below it, behaviour is standard Reno.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.tcp.cc.base import CCClock, CongestionControl, register_cc

LOW_WINDOW = 38.0
HIGH_WINDOW = 83_000.0
HIGH_P = 1e-7
HIGH_DECREASE = 0.1


def hstcp_b(w: float) -> float:
    """Multiplicative decrease factor b(w) (RFC 3649 §5)."""
    if w <= LOW_WINDOW:
        return 0.5
    log_ratio = (math.log(w) - math.log(LOW_WINDOW)) / (
        math.log(HIGH_WINDOW) - math.log(LOW_WINDOW)
    )
    return (HIGH_DECREASE - 0.5) * log_ratio + 0.5


def hstcp_p(w: float) -> float:
    """The HSTCP response function's loss rate at window w (RFC 3649
    §1: ``p = 0.078 / w^1.2``)."""
    return 0.078 * w ** -1.2


def hstcp_a(w: float) -> float:
    """Additive increase a(w) in MSS per RTT (RFC 3649 §5):
    ``a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w))``, at least 1."""
    if w <= LOW_WINDOW:
        return 1.0
    b = hstcp_b(w)
    return max(w ** 2 * hstcp_p(w) * 2.0 * b / (2.0 - b), 1.0)


@register_cc("highspeed")
class HighSpeedCC(CongestionControl):
    """HighSpeed TCP window arithmetic."""

    def __init__(self, clock: CCClock, initial_cwnd: float = 10.0):
        super().__init__(clock, initial_cwnd)
        self._avoidance_credit = 0.0

    def on_ack(self, acked_packets: int, rtt_ns: Optional[int], in_flight: int, ece: bool = False) -> None:
        if acked_packets <= 0:
            return
        if self.in_slow_start:
            grow = min(float(acked_packets), max(self.ssthresh - self.cwnd, 0.0)) \
                if self.ssthresh != float("inf") else float(acked_packets)
            self.cwnd += grow
            acked_packets -= int(grow)
            if acked_packets <= 0:
                return
        self._avoidance_credit += hstcp_a(self.cwnd) * acked_packets / max(self.cwnd, 1.0)
        if self._avoidance_credit >= 1.0:
            whole = int(self._avoidance_credit)
            self.cwnd += whole
            self._avoidance_credit -= whole

    def on_congestion_event(self) -> None:
        b = hstcp_b(self.cwnd)
        self.ssthresh = max(self.cwnd * (1.0 - b), self.min_cwnd)
        self.cwnd = self.ssthresh
        self._avoidance_credit = 0.0
