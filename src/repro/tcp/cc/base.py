"""Congestion control interface and registry.

A CCA owns ``cwnd`` and ``ssthresh`` (both in MSS units) and reacts to
ACK/loss/ECN events delivered by the connection. The connection owns
everything else (pipe accounting, state machine, retransmissions).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Protocol

INFINITE_SSTHRESH = float("inf")


class CCClock(Protocol):
    """Minimal clock the CCAs need (CUBIC epochs are time-based)."""

    def now_ns(self) -> int: ...


class CongestionControl:
    """Base class: Reno-style slow start, no-op congestion avoidance."""

    name = "base"

    def __init__(self, clock: CCClock, initial_cwnd: float = 10.0):
        self.clock = clock
        self.cwnd: float = initial_cwnd
        self.ssthresh: float = INFINITE_SSTHRESH
        self.min_cwnd: float = 2.0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    # ------------------------------------------------------------------
    # Events — all window arithmetic in MSS units.
    # ------------------------------------------------------------------
    def on_ack(self, acked_packets: int, rtt_ns: Optional[int], in_flight: int, ece: bool = False) -> None:
        """Cumulative ACK covering ``acked_packets`` new segments."""
        raise NotImplementedError

    def on_congestion_event(self) -> None:
        """Entering fast recovery (loss) or reacting to ECN: reduce."""
        raise NotImplementedError

    def on_recovery_exit(self) -> None:
        """Recovery completed (snd_una passed high_seq)."""
        # Default: deflate to ssthresh (standard full-window completion).
        self.cwnd = max(self.ssthresh, self.min_cwnd)

    def on_rto(self) -> None:
        """Retransmission timeout: collapse the window."""
        self.ssthresh = max(self.cwnd / 2.0, self.min_cwnd)
        self.cwnd = 1.0

    def fluid_advance(self, now_ns: int, dt_ns: int, rtt_ns: int) -> None:
        """Closed-form window growth over ``dt_ns`` of loss-free steady
        transfer (the tiered fluid fast path; see repro.sim.fastpath).

        ``now_ns`` is the *virtual* time at the start of the interval —
        it may lag the wall simulator clock while a fluid span is being
        integrated. The base model is Reno-like: doubling per RTT in
        slow start (with exact handoff at ssthresh), then one MSS per
        RTT in congestion avoidance. Subclasses with richer avoidance
        dynamics (CUBIC) override this.
        """
        if dt_ns <= 0 or rtt_ns <= 0:
            return
        rounds = dt_ns / rtt_ns
        if self.cwnd < self.ssthresh:
            # Slow start: cwnd doubles each RTT until ssthresh.
            grown = self.cwnd * (2.0 ** rounds)
            if grown <= self.ssthresh:
                self.cwnd = grown
                return
            # Exact handoff: spend only the rounds needed to reach
            # ssthresh in slow start, the remainder in avoidance.
            used = math.log2(self.ssthresh / self.cwnd)
            self.cwnd = self.ssthresh
            rounds -= used
        # Congestion avoidance: +1 MSS per RTT.
        self.cwnd += rounds

    def snapshot(self) -> dict:
        """Loggable view of the internal state."""
        return {"name": self.name, "cwnd": self.cwnd, "ssthresh": self.ssthresh}


_REGISTRY: Dict[str, Callable[..., CongestionControl]] = {}


def register_cc(name: str):
    """Class decorator registering a CCA under ``name``."""

    def deco(cls):
        if name in _REGISTRY:
            raise ValueError(f"congestion control {name!r} already registered")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def make_congestion_control(name: str, clock: CCClock, initial_cwnd: float = 10.0, **kwargs) -> CongestionControl:
    """Instantiate a registered CCA by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown congestion control {name!r}; known: {sorted(_REGISTRY)}") from None
    return factory(clock, initial_cwnd=initial_cwnd, **kwargs)


def registered_cc_names() -> list:
    return sorted(_REGISTRY)
