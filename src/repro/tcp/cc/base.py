"""Congestion control interface and registry.

A CCA owns ``cwnd`` and ``ssthresh`` (both in MSS units) and reacts to
ACK/loss/ECN events delivered by the connection. The connection owns
everything else (pipe accounting, state machine, retransmissions).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

INFINITE_SSTHRESH = float("inf")


class CCClock(Protocol):
    """Minimal clock the CCAs need (CUBIC epochs are time-based)."""

    def now_ns(self) -> int: ...


class CongestionControl:
    """Base class: Reno-style slow start, no-op congestion avoidance."""

    name = "base"

    def __init__(self, clock: CCClock, initial_cwnd: float = 10.0):
        self.clock = clock
        self.cwnd: float = initial_cwnd
        self.ssthresh: float = INFINITE_SSTHRESH
        self.min_cwnd: float = 2.0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    # ------------------------------------------------------------------
    # Events — all window arithmetic in MSS units.
    # ------------------------------------------------------------------
    def on_ack(self, acked_packets: int, rtt_ns: Optional[int], in_flight: int, ece: bool = False) -> None:
        """Cumulative ACK covering ``acked_packets`` new segments."""
        raise NotImplementedError

    def on_congestion_event(self) -> None:
        """Entering fast recovery (loss) or reacting to ECN: reduce."""
        raise NotImplementedError

    def on_recovery_exit(self) -> None:
        """Recovery completed (snd_una passed high_seq)."""
        # Default: deflate to ssthresh (standard full-window completion).
        self.cwnd = max(self.ssthresh, self.min_cwnd)

    def on_rto(self) -> None:
        """Retransmission timeout: collapse the window."""
        self.ssthresh = max(self.cwnd / 2.0, self.min_cwnd)
        self.cwnd = 1.0

    def snapshot(self) -> dict:
        """Loggable view of the internal state."""
        return {"name": self.name, "cwnd": self.cwnd, "ssthresh": self.ssthresh}


_REGISTRY: Dict[str, Callable[..., CongestionControl]] = {}


def register_cc(name: str):
    """Class decorator registering a CCA under ``name``."""

    def deco(cls):
        if name in _REGISTRY:
            raise ValueError(f"congestion control {name!r} already registered")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def make_congestion_control(name: str, clock: CCClock, initial_cwnd: float = 10.0, **kwargs) -> CongestionControl:
    """Instantiate a registered CCA by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown congestion control {name!r}; known: {sorted(_REGISTRY)}") from None
    return factory(clock, initial_cwnd=initial_cwnd, **kwargs)


def registered_cc_names() -> list:
    return sorted(_REGISTRY)
