"""CUBIC congestion control (RFC 8312).

The window grows as ``W(t) = C*(t - K)^3 + W_max`` since the last
congestion event, with a TCP-friendly (Reno emulation) floor and fast
convergence. This is the CCA the paper runs both standalone ("cubic")
and inside every TDN of TDTCP.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.tcp.cc.base import (
    INFINITE_SSTHRESH,
    CCClock,
    CongestionControl,
    register_cc,
)
from repro.units import SEC


@register_cc("cubic")
class CubicCC(CongestionControl):
    """CUBIC in MSS units with nanosecond epochs."""

    C = 0.4          # scaling constant (units: MSS / s^3)
    BETA = 0.7       # multiplicative decrease factor
    # RFC 8312 §4.2 Reno-emulation gain, 3*(1-BETA)/(1+BETA) MSS per
    # RTT's worth of ACKs (precomputed: it is paid on every ACK).
    _RENO_GAIN = 3.0 * (1.0 - BETA) / (1.0 + BETA)

    def __init__(self, clock: CCClock, initial_cwnd: float = 10.0, fast_convergence: bool = True):
        super().__init__(clock, initial_cwnd)
        self.fast_convergence = fast_convergence
        self.w_max: float = 0.0
        self.w_last_max: float = 0.0
        self.epoch_start_ns: Optional[int] = None
        self.k_seconds: float = 0.0
        self._tcp_cwnd: float = 0.0       # Reno-emulation estimate
        self._avoidance_credit = 0.0

    # ------------------------------------------------------------------
    def _begin_epoch(self, now_ns: int) -> None:
        self.epoch_start_ns = now_ns
        if self.cwnd < self.w_max:
            self.k_seconds = ((self.w_max - self.cwnd) / self.C) ** (1.0 / 3.0)
        else:
            self.k_seconds = 0.0
            self.w_max = self.cwnd
        self._tcp_cwnd = self.cwnd

    def _cubic_target(self, now_ns: int) -> float:
        assert self.epoch_start_ns is not None
        t = (now_ns - self.epoch_start_ns) / SEC
        return self.C * (t - self.k_seconds) ** 3 + self.w_max

    def on_ack(self, acked_packets: int, rtt_ns: Optional[int], in_flight: int, ece: bool = False) -> None:
        if acked_packets <= 0:
            return
        # The slow-start→avoidance handoff must be exact: an ACK batch
        # that straddles ssthresh spends part of its credit filling the
        # gap to ssthresh and hands only the fractional remainder to the
        # cubic region (truncating here double-spends the fraction).
        acked = float(acked_packets)
        cwnd = self.cwnd
        ssthresh = self.ssthresh
        if cwnd < ssthresh:  # in_slow_start, property flattened
            if ssthresh == INFINITE_SSTHRESH:
                grow = acked
            else:
                gap = ssthresh - cwnd
                grow = min(acked, gap if gap > 0.0 else 0.0)
            cwnd += grow
            self.cwnd = cwnd
            acked -= grow
            if acked <= 0.0:
                return
        now = self.clock.now_ns()
        if self.epoch_start_ns is None:
            self._begin_epoch(now)
        # _cubic_target inlined (it stays as the reference formula).
        t = (now - self.epoch_start_ns) / SEC
        target = self.C * (t - self.k_seconds) ** 3 + self.w_max
        denom = cwnd if cwnd > 1.0 else 1.0
        # TCP-friendly region: per RFC 8312 §4.2 the Reno estimate grows
        # on every ACK — the update is not contingent on an RTT sample.
        tcp_cwnd = self._tcp_cwnd + self._RENO_GAIN * acked / denom
        self._tcp_cwnd = tcp_cwnd
        if tcp_cwnd > target:
            target = tcp_cwnd
        credit = self._avoidance_credit
        if target > cwnd:
            # Approach the target over roughly one RTT of ACKs.
            credit += (target - cwnd) * acked / denom
        else:
            # Mild growth so the window is not frozen below target
            # (RFC 8312's 1%/RTT "max probing").
            credit += 0.01 * acked / denom
        if credit >= 1.0:
            whole = int(credit)
            self.cwnd = cwnd + whole
            credit -= whole
        self._avoidance_credit = credit

    def on_congestion_event(self) -> None:
        now = self.clock.now_ns()
        if self.fast_convergence and self.cwnd < self.w_last_max:
            self.w_last_max = self.cwnd
            self.w_max = self.cwnd * (1.0 + self.BETA) / 2.0
        else:
            self.w_last_max = self.cwnd
            self.w_max = self.cwnd
        self.ssthresh = max(self.cwnd * self.BETA, self.min_cwnd)
        self.cwnd = self.ssthresh
        self.epoch_start_ns = None
        self._avoidance_credit = 0.0
        del now

    def on_rto(self) -> None:
        super().on_rto()
        self.epoch_start_ns = None
        self.w_max = max(self.w_max, self.cwnd)
        self._avoidance_credit = 0.0

    def fluid_advance(self, now_ns: int, dt_ns: int, rtt_ns: int) -> None:
        """Closed-form CUBIC growth over ``dt_ns`` of loss-free transfer.

        Evaluates ``W(t) = C*(t-K)^3 + W_max`` at the end of the interval
        directly against the fluid epoch clock (``now_ns`` is virtual
        time, not ``self.clock``) and applies the RFC 8312 TCP-friendly
        Reno floor accrued over ``dt_ns / rtt_ns`` rounds. At the paper's
        sub-millisecond timescales the Reno floor dominates (K is
        seconds-scale), matching the packet-mode per-ACK updates.
        """
        if dt_ns <= 0 or rtt_ns <= 0:
            return
        rounds = dt_ns / rtt_ns
        cwnd = self.cwnd
        ssthresh = self.ssthresh
        if cwnd < ssthresh:
            if ssthresh == INFINITE_SSTHRESH:
                self.cwnd = cwnd * (2.0 ** rounds)
                return
            grown = cwnd * (2.0 ** rounds)
            if grown <= ssthresh:
                self.cwnd = grown
                return
            # Exact handoff at ssthresh, remainder in the cubic region.
            rounds -= math.log2(ssthresh / cwnd)
            cwnd = ssthresh
            self.cwnd = cwnd
        if self.epoch_start_ns is None:
            self._begin_epoch(now_ns)
        end_ns = now_ns + dt_ns
        target = self._cubic_target(end_ns)
        # Reno-emulation floor: _RENO_GAIN MSS per RTT's worth of ACKs.
        self._tcp_cwnd += self._RENO_GAIN * rounds
        if self._tcp_cwnd > target:
            target = self._tcp_cwnd
        # The fluid span has no per-ACK pacing to smooth toward the
        # target, so take it directly (monotone — never shrink).
        if target > cwnd:
            self.cwnd = target

    def snapshot(self) -> dict:
        data = super().snapshot()
        data.update({"w_max": self.w_max, "k_seconds": self.k_seconds})
        return data
