"""RTT estimation and RTO computation (RFC 6298) with Karn's rule.

The estimator also tracks ``mdev`` and the minimum RTT (used by RACK's
reorder window). Callers enforce Karn's rule by simply not feeding
samples from retransmitted segments.
"""

from __future__ import annotations

from typing import Optional


class RTTEstimator:
    """srtt/rttvar in nanoseconds, RFC 6298 smoothing."""

    ALPHA = 1 / 8
    BETA = 1 / 4

    def __init__(self, min_rto_ns: int, max_rto_ns: int, initial_rto_ns: int):
        if min_rto_ns <= 0 or max_rto_ns < min_rto_ns:
            raise ValueError("invalid RTO bounds")
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns
        self.initial_rto_ns = initial_rto_ns
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns: Optional[int] = None
        self.mdev_ns: int = 0
        self.min_rtt_ns: Optional[int] = None
        self.latest_rtt_ns: Optional[int] = None
        self.samples = 0

    def update(self, sample_ns: int) -> None:
        """Feed one RTT sample (from a never-retransmitted segment)."""
        if sample_ns <= 0:
            return
        self.latest_rtt_ns = sample_ns
        self.samples += 1
        if self.min_rtt_ns is None or sample_ns < self.min_rtt_ns:
            self.min_rtt_ns = sample_ns
        if self.srtt_ns is None:
            self.srtt_ns = sample_ns
            self.rttvar_ns = sample_ns // 2
            self.mdev_ns = sample_ns // 2
            return
        assert self.rttvar_ns is not None
        err = abs(sample_ns - self.srtt_ns)
        self.mdev_ns = int((1 - self.BETA) * self.mdev_ns + self.BETA * err)
        self.rttvar_ns = int((1 - self.BETA) * self.rttvar_ns + self.BETA * err)
        self.srtt_ns = int((1 - self.ALPHA) * self.srtt_ns + self.ALPHA * sample_ns)

    def rto_ns(self) -> int:
        """Current retransmission timeout."""
        if self.srtt_ns is None:
            return max(self.initial_rto_ns, self.min_rto_ns)
        assert self.rttvar_ns is not None
        rto = self.srtt_ns + max(4 * self.rttvar_ns, 1)
        return min(max(rto, self.min_rto_ns), self.max_rto_ns)

    def reset(self) -> None:
        """Forget the path model (used after a downgrade/path reset).

        ``min_rtt_ns`` belongs to the old path and must go too: RACK's
        reorder window is derived from it (see
        :func:`repro.tcp.rack.default_reo_wnd_ns`), and keeping the old
        path's minimum would size the new path's reordering tolerance
        from a route that no longer exists. ``samples`` likewise counts
        the old model's inputs.
        """
        self.srtt_ns = None
        self.rttvar_ns = None
        self.mdev_ns = 0
        self.latest_rtt_ns = None
        self.min_rtt_ns = None
        self.samples = 0
