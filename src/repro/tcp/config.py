"""TCP endpoint configuration."""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.units import msec


@dataclass
class TCPConfig:
    """Knobs for one TCP endpoint.

    Defaults target a microsecond-RTT data center: a 1 ms minimum RTO
    (kernel-default 200 ms would dwarf the simulated timescales), SACK
    and RACK-TLP on, and an initial window of 10 segments.
    """

    mss: int = 1_500
    initial_cwnd: float = 10.0          # MSS units (RFC 6928)
    rwnd_packets: int = 128             # advertised window, in MSS (192 KB)
    send_buffer_packets: int = 128      # sender buffering limit, in MSS
    min_rto_ns: int = msec(1)
    max_rto_ns: int = msec(500)
    initial_rto_ns: int = msec(2)
    dupthresh: int = 3
    sack_enabled: bool = True
    rack_enabled: bool = True
    tlp_enabled: bool = True
    ecn_enabled: bool = False           # set for DCTCP
    # RACK reorder window as a fraction of min RTT (RFC 8985 uses 1/4).
    rack_reo_wnd_frac: float = 0.25
    # Delay before a delivered-but-unACKed probe; kept simple: TLP fires
    # at 2 * srtt after the last transmission when armed.
    tlp_srtt_multiplier: float = 2.0
    # Nagle's algorithm (RFC 896): hold sub-MSS segments while data is
    # outstanding. Off by default (DCN RPCs want TCP_NODELAY).
    nagle_enabled: bool = False
    # Delayed ACKs (RFC 1122): 0 disables (the default for
    # microsecond-RTT DCN studies — and what the evaluation runs with);
    # a positive value coalesces ACKs, acknowledging every second
    # in-order segment or after this timeout. Out-of-order data is
    # always ACKed immediately (fast-retransmit feedback).
    delayed_ack_ns: int = 0

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError("MSS must be positive")
        if self.initial_cwnd <= 0:
            raise ValueError("initial cwnd must be positive")
        if self.min_rto_ns <= 0 or self.max_rto_ns < self.min_rto_ns:
            raise ValueError("invalid RTO bounds")
        if self.dupthresh < 1:
            raise ValueError("dupthresh must be >= 1")

    def to_dict(self) -> dict:
        """Canonical JSON-ready view (every field, declaration order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "TCPConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown TCPConfig fields {sorted(unknown)}")
        return cls(**data)
