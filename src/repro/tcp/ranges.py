"""Disjoint byte-range set.

Shared by the receiver's reassembly buffer and the sender's SACK
scoreboard. Ranges are half-open ``[start, end)``; adjacent and
overlapping ranges merge. The structure stays small (a TCP window's
worth of holes), so a sorted list with linear merge is both simple and
fast enough.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

Range = Tuple[int, int]


class RangeSet:
    """A set of disjoint, sorted, half-open integer ranges."""

    def __init__(self, ranges: Iterable[Range] = ()):
        self._ranges: List[Range] = []
        for start, end in ranges:
            self.add(start, end)

    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self) -> Iterator[Range]:
        return iter(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RangeSet):
            return self._ranges == other._ranges
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeSet({self._ranges})"

    def add(self, start: int, end: int) -> Range:
        """Insert ``[start, end)``; returns the merged range it became.

        Empty ranges are ignored (returned unchanged).
        """
        if start > end:
            raise ValueError(f"invalid range [{start}, {end})")
        if start == end:
            return (start, end)
        merged_start, merged_end = start, end
        out: List[Range] = []
        inserted = False
        for r_start, r_end in self._ranges:
            if r_end < merged_start or r_start > merged_end:
                # Disjoint and not even adjacent.
                if r_start > merged_end and not inserted:
                    out.append((merged_start, merged_end))
                    inserted = True
                out.append((r_start, r_end))
            else:
                merged_start = min(merged_start, r_start)
                merged_end = max(merged_end, r_end)
        if not inserted:
            out.append((merged_start, merged_end))
        out.sort()
        self._ranges = out
        return (merged_start, merged_end)

    def remove_below(self, threshold: int) -> None:
        """Drop all coverage strictly below ``threshold``."""
        out: List[Range] = []
        for start, end in self._ranges:
            if end <= threshold:
                continue
            out.append((max(start, threshold), end))
        self._ranges = out

    def contains_point(self, value: int) -> bool:
        for start, end in self._ranges:
            if start <= value < end:
                return True
            if start > value:
                break
        return False

    def covers(self, start: int, end: int) -> bool:
        """True when ``[start, end)`` is entirely covered by one range."""
        if start >= end:
            return True
        for r_start, r_end in self._ranges:
            if r_start <= start and end <= r_end:
                return True
            if r_start > start:
                break
        return False

    def first_range_at_or_after(self, value: int) -> Range:
        """First range whose end is above ``value``; raises if none."""
        for start, end in self._ranges:
            if end > value:
                return (start, end)
        raise LookupError(f"no range at or after {value}")

    def coverage(self) -> int:
        """Total number of integers covered."""
        return sum(end - start for start, end in self._ranges)

    def ranges(self) -> List[Range]:
        return list(self._ranges)

    def gaps_between(self, start: int, end: int) -> List[Range]:
        """Uncovered sub-ranges of ``[start, end)``."""
        gaps: List[Range] = []
        cursor = start
        for r_start, r_end in self._ranges:
            if r_end <= cursor:
                continue
            if r_start >= end:
                break
            if r_start > cursor:
                gaps.append((cursor, min(r_start, end)))
            cursor = max(cursor, r_end)
            if cursor >= end:
                break
        if cursor < end:
            gaps.append((cursor, end))
        return gaps
