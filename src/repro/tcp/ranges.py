"""Disjoint byte-range set.

Shared by the receiver's reassembly buffer and the sender's SACK
scoreboard. Ranges are half-open ``[start, end)``; adjacent and
overlapping ranges merge.

The set is stored as two parallel sorted lists (``_starts``/``_ends``)
so point and cover queries are a single ``bisect`` (O(log n)) and
``add`` splices the merged neighbourhood in place instead of rebuilding
and re-sorting the whole list. Because ranges are disjoint and sorted,
both lists are individually sorted, which is what makes the bisect
queries valid.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Tuple

Range = Tuple[int, int]


class RangeSet:
    """A set of disjoint, sorted, half-open integer ranges."""

    __slots__ = ("_starts", "_ends", "_cov")

    def __init__(self, ranges: Iterable[Range] = ()):
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._cov = 0  # total covered integers, maintained incrementally
        for start, end in ranges:
            self.add(start, end)

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Range]:
        return iter(zip(self._starts, self._ends))

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RangeSet):
            return self._starts == other._starts and self._ends == other._ends
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeSet({list(zip(self._starts, self._ends))})"

    def add(self, start: int, end: int) -> Range:
        """Insert ``[start, end)``; returns the merged range it became.

        Empty ranges are ignored (returned unchanged).
        """
        if start > end:
            raise ValueError(f"invalid range [{start}, {end})")
        if start == end:
            return (start, end)
        starts = self._starts
        ends = self._ends
        # Ranges overlapping or adjacent to [start, end): those with
        # r_end >= start and r_start <= end.
        lo = bisect_left(ends, start)
        hi = bisect_right(starts, end)
        if lo < hi:
            merged_start = starts[lo]
            if start < merged_start:
                merged_start = start
            merged_end = ends[hi - 1]
            if end > merged_end:
                merged_end = end
            absorbed = 0
            for i in range(lo, hi):
                absorbed += ends[i] - starts[i]
            self._cov += (merged_end - merged_start) - absorbed
            starts[lo:hi] = (merged_start,)
            ends[lo:hi] = (merged_end,)
            return (merged_start, merged_end)
        starts.insert(lo, start)
        ends.insert(lo, end)
        self._cov += end - start
        return (start, end)

    def remove_below(self, threshold: int) -> None:
        """Drop all coverage strictly below ``threshold``."""
        starts = self._starts
        ends = self._ends
        idx = bisect_right(ends, threshold)
        if idx:
            removed = 0
            for i in range(idx):
                removed += ends[i] - starts[i]
            self._cov -= removed
            del starts[:idx]
            del ends[:idx]
        if starts and starts[0] < threshold:
            self._cov -= threshold - starts[0]
            starts[0] = threshold

    def contains_point(self, value: int) -> bool:
        i = bisect_right(self._starts, value) - 1
        return i >= 0 and value < self._ends[i]

    def covers(self, start: int, end: int) -> bool:
        """True when ``[start, end)`` is entirely covered by one range."""
        if start >= end:
            return True
        i = bisect_right(self._starts, start) - 1
        return i >= 0 and end <= self._ends[i]

    def first_range_at_or_after(self, value: int) -> Range:
        """First range whose end is above ``value``; raises if none."""
        i = bisect_right(self._ends, value)
        if i < len(self._ends):
            return (self._starts[i], self._ends[i])
        raise LookupError(f"no range at or after {value}")

    def coverage(self) -> int:
        """Total number of integers covered (maintained, not summed)."""
        return self._cov

    def ranges(self) -> List[Range]:
        return list(zip(self._starts, self._ends))

    def gaps_between(self, start: int, end: int) -> List[Range]:
        """Uncovered sub-ranges of ``[start, end)``."""
        starts = self._starts
        ends = self._ends
        gaps: List[Range] = []
        cursor = start
        for i in range(bisect_right(ends, start), len(starts)):
            r_start = starts[i]
            if r_start >= end:
                break
            if r_start > cursor:
                gaps.append((cursor, r_start if r_start < end else end))
            r_end = ends[i]
            if r_end > cursor:
                cursor = r_end
            if cursor >= end:
                break
        if cursor < end:
            gaps.append((cursor, end))
        return gaps
