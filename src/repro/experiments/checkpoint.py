"""Crash-safe campaign checkpointing: terminal-state journal + sidecar.

A campaign that dies mid-flight (OOM kill, scheduler SIGTERM, Ctrl-C,
power loss) must be resumable without re-executing completed work and
— just as important — without *changing the answer*: the ROADMAP's
sweep fabric calls for incremental re-runs whose merged
:func:`~repro.obs.campaign.campaign_summary` is byte-identical to an
uninterrupted run. Two artifacts make that possible:

* The **campaign journal** (PR 6's :class:`~repro.obs.campaign.CampaignLog`
  JSONL) already records every run's full lifecycle. It is the ground
  truth — :meth:`CampaignCheckpoint.from_journal` can always rebuild
  the terminal state from it, tolerating the truncated final line a
  SIGKILL leaves behind.
* The **checkpoint sidecar** (``<log>.ckpt.json``) is a small,
  atomically-replaced digest of per-run terminal state (finished /
  failed / quarantined, attempts, cache key), updated after every
  terminal event. It spares resume a full journal replay for the
  common bookkeeping and survives even when the journal's tail is torn.

The executor's write ordering makes every kill window safe::

    emit terminal record  ->  update + save sidecar  ->  cache.put

A crash between any two steps only ever loses *later* state: a run
whose terminal record exists but whose sidecar entry (or cache entry)
is missing simply re-executes on resume, and determinism guarantees it
re-emits the identical lifecycle.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.campaign import (
    CAMPAIGN_SCHEMA_VERSION,
    META_EVENTS,
    read_campaign_with_tail,
)

__all__ = [
    "TERMINAL_STATES",
    "RunCheckpoint",
    "CampaignCheckpoint",
    "ResumePlan",
    "checkpoint_path",
    "load_resume_plan",
]

#: Per-run terminal states a checkpoint records. ``finished`` covers
#: both executed successes and cache hits (``cache_hit`` disambiguates);
#: ``failed`` marks infrastructure casualties that resume *resubmits*;
#: ``quarantined`` marks poison runs that resume must *never* resubmit.
TERMINAL_STATES = ("finished", "failed", "quarantined")


@dataclass
class RunCheckpoint:
    """Terminal state of one run, as the checkpoint sidecar records it."""

    label: str
    index: int
    state: str
    attempts: int = 1
    retries: int = 0
    cache_key: Optional[str] = None
    cache_hit: bool = False
    cache_miss: bool = False
    executed: bool = False
    outcome: Optional[str] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("label must be non-empty")
        if self.state not in TERMINAL_STATES:
            raise ValueError(
                f"state must be one of {TERMINAL_STATES}, got {self.state!r}"
            )
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")
        if self.attempts < 0 or self.retries < 0:
            raise ValueError("attempts/retries must be >= 0")

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "index": self.index,
            "state": self.state,
            "attempts": self.attempts,
            "retries": self.retries,
            "cache_key": self.cache_key,
            "cache_hit": self.cache_hit,
            "cache_miss": self.cache_miss,
            "executed": self.executed,
            "outcome": self.outcome,
            "error_type": self.error_type,
            "error_message": self.error_message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunCheckpoint":
        return cls(**data)


@dataclass
class CampaignCheckpoint:
    """All terminal run states of one campaign, keyed by run label."""

    total: int = 0
    runs: Dict[str, RunCheckpoint] = field(default_factory=dict)

    def record(self, run: RunCheckpoint) -> None:
        self.runs[run.label] = run

    def to_dict(self) -> dict:
        return {
            "schema": CAMPAIGN_SCHEMA_VERSION,
            "total": self.total,
            "runs": {
                label: self.runs[label].to_dict() for label in sorted(self.runs)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignCheckpoint":
        if data.get("schema") != CAMPAIGN_SCHEMA_VERSION:
            raise ValueError(
                f"checkpoint schema {data.get('schema')!r} != "
                f"{CAMPAIGN_SCHEMA_VERSION}"
            )
        checkpoint = cls(total=int(data.get("total", 0)))
        for payload in data.get("runs", {}).values():
            checkpoint.record(RunCheckpoint.from_dict(payload))
        return checkpoint

    # ------------------------------------------------------------------
    # Sidecar persistence (atomic: tmp file + rename, like ResultCache)
    # ------------------------------------------------------------------
    def save(self, path) -> str:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(self.to_dict(), sort_keys=True) + "\n")
        os.replace(tmp, path)
        return str(path)

    @classmethod
    def load(cls, path) -> Optional["CampaignCheckpoint"]:
        """The sidecar's checkpoint, or None when missing/corrupt/stale
        — resume then falls back to :meth:`from_journal`."""
        try:
            text = pathlib.Path(path).read_text()
        except OSError:
            return None
        try:
            return cls.from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError):
            return None

    # ------------------------------------------------------------------
    # Journal fallback
    # ------------------------------------------------------------------
    @classmethod
    def from_journal(cls, records: Sequence[dict]) -> "CampaignCheckpoint":
        """Rebuild terminal state straight from campaign records.

        Runs that never reached a terminal event (in flight at the
        kill) are excluded — resume re-executes them. The journal is
        authoritative: this works even when the sidecar never hit disk.
        """
        checkpoint = cls()
        partial: Dict[str, dict] = {}
        for record in records:
            event = record.get("event")
            if event == "campaign_start":
                checkpoint.total += record.get("total", 0)
                continue
            label = record.get("run")
            if not label or event in META_EVENTS:
                continue
            run = partial.setdefault(
                label,
                {"label": label, "index": 0, "state": None, "attempts": 0},
            )
            if event == "queued":
                run["index"] = int(record.get("index", run["index"]))
                if "key" in record:
                    run["cache_key"] = record["key"]
                if "cache_miss" in record:
                    run["cache_miss"] = bool(record["cache_miss"])
            elif event == "started":
                run["attempts"] += 1
                run["executed"] = True
            elif event == "retry":
                run["retries"] = run.get("retries", 0) + 1
            elif event == "cache_hit":
                run["state"] = "finished"
                run["cache_hit"] = True
            elif event == "finished":
                run["state"] = "finished"
                run["outcome"] = record.get("outcome")
            elif event == "failed":
                run["state"] = "failed"
                run["error_type"] = record.get("error_type")
                run["error_message"] = record.get("error_message")
            elif event == "quarantined":
                run["state"] = "quarantined"
        for run in partial.values():
            if run["state"] in TERMINAL_STATES:
                checkpoint.record(RunCheckpoint.from_dict(run))
        return checkpoint


def checkpoint_path(log_path) -> str:
    """The sidecar path for a campaign log: ``<log>.ckpt.json``."""
    return f"{log_path}.ckpt.json"


@dataclass
class ResumePlan:
    """Everything ``run_batch(resume_from=...)`` needs from a prior
    campaign: the old journal's records (the replay source), the
    terminal-state checkpoint (the decision source), and whether the
    journal ended in a torn write."""

    source: str
    checkpoint: CampaignCheckpoint
    records: List[dict]
    partial_tail: Optional[str] = None
    checkpoint_source: str = "sidecar"

    def run_records(self, label: str) -> List[dict]:
        """One run's full lifecycle, in journal order (replay input)."""
        return [r for r in self.records if r.get("run") == label]


def load_resume_plan(log_path) -> ResumePlan:
    """Load a prior campaign for resumption.

    Journal reading tolerates a truncated final line (the mid-write
    crash artifact). The sidecar is preferred for terminal state; when
    missing or corrupt the checkpoint is rebuilt from the journal.
    """
    records, tail = read_campaign_with_tail(log_path)
    checkpoint = CampaignCheckpoint.load(checkpoint_path(log_path))
    source = "sidecar"
    if checkpoint is None:
        checkpoint = CampaignCheckpoint.from_journal(records)
        source = "journal"
    return ResumePlan(
        source=str(log_path),
        checkpoint=checkpoint,
        records=records,
        partial_tail=tail,
        checkpoint_source=source,
    )
