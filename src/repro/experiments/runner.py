"""Run one variant on one RDCN configuration and collect everything
the figures need."""

from __future__ import annotations

import logging

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.engine import WorkloadEngine, load_trace
from repro.apps.workload import build_workload
from repro.experiments.config import ExperimentConfig
from repro.experiments.variants import engine_flow_opener, get_variant
from repro.faults.audit import InvariantAuditor, run_with_watchdog, write_repro_bundle
from repro.faults.injectors import FaultInjector
from repro.metrics.collectors import EventCounterCollector, QueueOccupancyCollector
from repro.obs.sketch import sketch_from_samples
from repro.obs.telemetry import Telemetry
from repro.rdcn.config import NotifierConfig
from repro.rdcn.topology import TwoRackTestbed, build_two_rack_testbed
from repro.sim.fastpath import FLUID_VARIANTS, FluidFastPath, forced_packet_report
from repro.sim.simulator import Simulator
from repro.units import throughput_gbps

logger = logging.getLogger(__name__)


# Process-wide heartbeat hook installed by the executor (directly for
# inline runs, via the worker initializer for pooled runs). It lives in
# module state rather than ExperimentConfig because liveness reporting
# must not perturb cache keys or run semantics.
_WORKER_HEARTBEAT: Optional[Tuple[Callable[[int, int, float, int], None], int]] = None


def set_worker_heartbeat(
    fn: Optional[Callable[[int, int, float, int], None]], every_events: int = 0
) -> None:
    """Install (or clear, with ``fn=None``) the heartbeat hook every
    subsequent :func:`run_experiment` in this process wires onto its
    simulator: ``fn(sim_now, lifetime_events, events_per_s,
    pending_events)`` every ``every_events`` processed events, plus one
    final flush per run."""
    global _WORKER_HEARTBEAT
    if fn is None:
        _WORKER_HEARTBEAT = None
        return
    if every_events < 1:
        raise ValueError("every_events must be >= 1")
    _WORKER_HEARTBEAT = (fn, every_events)


@dataclass
class RunFailure:
    """Structured description of a crashed run: everything needed to
    reproduce it (the bundle on disk holds the full config and plan)."""

    error_type: str
    error_message: str
    seed: int
    fault_plan_path: Optional[str]
    bundle_path: Optional[str]
    # True for failures *outside* the simulation (broken worker pool,
    # transport error, abort): retrying elsewhere may succeed, so the
    # executor resubmits them on resume instead of quarantining.
    infrastructure: bool = False

    def render(self) -> str:
        lines = [
            f"run FAILED: {self.error_type}: {self.error_message}",
            f"  seed: {self.seed}",
        ]
        if self.fault_plan_path:
            lines.append(f"  fault plan: {self.fault_plan_path}")
        if self.bundle_path:
            lines.append(f"  repro bundle: {self.bundle_path}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "error_type": self.error_type,
            "error_message": self.error_message,
            "seed": self.seed,
            "fault_plan_path": self.fault_plan_path,
            "bundle_path": self.bundle_path,
            "infrastructure": self.infrastructure,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunFailure":
        return cls(**data)


@dataclass
class ExperimentResult:
    """Raw outputs of one run."""

    config: ExperimentConfig
    duration_ns: int
    flow_delivered: List[int] = field(default_factory=list)
    aggregate_delivered: int = 0
    # Aggregate receiver-progress step series: (time, total bytes).
    seq_samples: List[Tuple[int, int]] = field(default_factory=list)
    # VOQ occupancy step series of the rack-0 -> rack-1 uplink.
    voq_samples: List[Tuple[int, int]] = field(default_factory=list)
    voq_max: int = 0
    # Per-optical-day counters (Figure 10).
    reordering_per_day: List[int] = field(default_factory=list)
    retx_marks_per_day: List[int] = field(default_factory=list)
    # Sender-side totals.
    retransmissions: int = 0
    spurious_retransmissions: int = 0
    rtos: int = 0
    fast_recoveries: int = 0
    reinjections: int = 0
    notification_latencies: List[int] = field(default_factory=list)
    # Workload-engine outputs (config.workload runs): the deterministic
    # completion digest, and the count of flows the horizon cut off —
    # explicit, so the censored FCT tail is visible instead of missing.
    workload_summary: Optional[dict] = None
    truncated_flows: int = 0
    # Streaming aggregates: name -> serialized QuantileSketch state
    # (repro.obs.sketch). Constant-memory summaries that merge exactly
    # across runs — the campaign dashboard's percentile source.
    sketches: Dict[str, dict] = field(default_factory=dict)
    # Telemetry outputs (populated when config.obs is set): artifact
    # paths written by Telemetry.finish() and the profiler's report.
    artifacts: List[str] = field(default_factory=list)
    profile_report: Optional[str] = None
    events_per_second: Optional[float] = None
    # Robustness outputs: set when fault injection / auditing ran, and
    # on any crash (the run then returns instead of raising).
    failure: Optional[RunFailure] = None
    fault_report: Optional[dict] = None
    audit_report: Optional[dict] = None
    # Tiered-fidelity accounting (config.fidelity == "tiered"): the
    # effective mode, forced-packet reasons (if any), and fluid-span
    # counters. None on plain packet runs.
    fidelity_report: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def throughput_gbps(self) -> float:
        return throughput_gbps(self.aggregate_delivered, self.duration_ns)

    def steady_state_throughput_gbps(self) -> float:
        """Throughput excluding the warm-up weeks."""
        warmup_ns = self.config.warmup_weeks * self.config.rdcn.week_ns
        warm_bytes = 0
        for time_ns, total in self.seq_samples:
            if time_ns <= warmup_ns:
                warm_bytes = total
            else:
                break
        return throughput_gbps(
            self.aggregate_delivered - warm_bytes, self.duration_ns - warmup_ns
        )

    # ------------------------------------------------------------------
    # Canonical serialization (executor result cache, worker transport)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready summary carrying every series the figures and
        sweeps consume. ``from_dict(to_dict(r))`` is value-identical."""
        return {
            "config": self.config.to_dict(),
            "duration_ns": self.duration_ns,
            "flow_delivered": list(self.flow_delivered),
            "aggregate_delivered": self.aggregate_delivered,
            "seq_samples": [[t, v] for t, v in self.seq_samples],
            "voq_samples": [[t, v] for t, v in self.voq_samples],
            "voq_max": self.voq_max,
            "reordering_per_day": list(self.reordering_per_day),
            "retx_marks_per_day": list(self.retx_marks_per_day),
            "retransmissions": self.retransmissions,
            "spurious_retransmissions": self.spurious_retransmissions,
            "rtos": self.rtos,
            "fast_recoveries": self.fast_recoveries,
            "reinjections": self.reinjections,
            "notification_latencies": list(self.notification_latencies),
            "workload_summary": self.workload_summary,
            "truncated_flows": self.truncated_flows,
            "sketches": dict(self.sketches),
            "artifacts": list(self.artifacts),
            "profile_report": self.profile_report,
            "events_per_second": self.events_per_second,
            "failure": self.failure.to_dict() if self.failure is not None else None,
            "fault_report": self.fault_report,
            "audit_report": self.audit_report,
            "fidelity_report": self.fidelity_report,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        kwargs = dict(data)
        kwargs["config"] = ExperimentConfig.from_dict(kwargs["config"])
        kwargs["seq_samples"] = [(int(t), int(v)) for t, v in kwargs["seq_samples"]]
        kwargs["voq_samples"] = [(int(t), int(v)) for t, v in kwargs["voq_samples"]]
        if kwargs.get("failure") is not None:
            kwargs["failure"] = RunFailure.from_dict(kwargs["failure"])
        return cls(**kwargs)


class _AggregateSeqCollector:
    """Merges per-flow rcv_nxt advances into one total-bytes series."""

    def __init__(self) -> None:
        self.total = 0
        self.samples: List[Tuple[int, int]] = []
        self._per_flow_last: Dict[int, int] = {}

    def make_callback(self, flow_index: int):
        self._per_flow_last[flow_index] = 0

        def on_delivered(time_ns: int, rcv_nxt: int) -> None:
            delta = rcv_nxt - self._per_flow_last[flow_index]
            if delta <= 0:
                return
            self._per_flow_last[flow_index] = rcv_nxt
            self.total += delta
            self.samples.append((time_ns, self.total))

        return on_delivered


def _iter_sender_stats(sender):
    """Yield ConnStats objects from a sender endpoint (MPTCP has one
    per subflow)."""
    if hasattr(sender, "subflows"):
        for subflow in sender.subflows:
            yield subflow.stats
    else:
        yield sender.stats


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Build the testbed, run the workload, gather the results.

    Robustness path: when ``config.fault_plan`` is set a
    :class:`FaultInjector` is armed on the testbed before start; when
    ``config.audit`` is set an :class:`InvariantAuditor` periodically
    re-checks accounting invariants. Any exception during the run
    (including ``fail``-mode audit violations and watchdog aborts) is
    captured into a repro bundle and returned as a structured
    ``result.failure`` instead of propagating.
    """
    variant = get_variant(config.variant)
    rdcn = config.rdcn
    if variant.unoptimized_notifier:
        rdcn = replace(rdcn, notifier=NotifierConfig.unoptimized())
    rdcn = replace(rdcn, seed=config.seed)

    # Tiered fidelity: scenarios the fluid model cannot represent run at
    # packet fidelity instead, with the reasons logged and reported.
    fastpath: Optional[FluidFastPath] = None
    forced_reasons: List[str] = []
    if config.fidelity == "tiered":
        if config.fault_plan is not None and len(config.fault_plan) > 0:
            forced_reasons.append("fault_plan")
        if config.audit == "fail":
            forced_reasons.append("audit_fail")
        if config.background_load > 0.0:
            forced_reasons.append("background_load")
        if config.variant not in FLUID_VARIANTS:
            forced_reasons.append(f"variant:{config.variant}")
        if forced_reasons:
            logger.info(
                "tiered fidelity unsupported for this run; forcing packet (%s)",
                ", ".join(forced_reasons),
            )

    # Telemetry attaches to the simulator before anything instrumented
    # is constructed (tracepoints are fetched at construction time).
    telemetry: Optional[Telemetry] = None
    sim: Optional[Simulator] = None
    if config.obs is not None and config.obs.active:
        sim = Simulator()
        telemetry = Telemetry(config.obs).attach(sim)

    testbed = build_two_rack_testbed(rdcn, sim=sim, ecn=variant.needs_ecn)

    # Campaign liveness: wire the process-wide heartbeat hook (if any)
    # onto this run's simulator. Heartbeats never alter simulation
    # behavior — the hook only reads clock/counters.
    heartbeat = _WORKER_HEARTBEAT
    if heartbeat is not None:
        testbed.sim.set_heartbeat(heartbeat[0], heartbeat[1])

    # Fault arming happens before variant/workload construction so the
    # injector's deliver-wrappers sit underneath everything.
    injector: Optional[FaultInjector] = None
    if config.fault_plan is not None and len(config.fault_plan) > 0:
        injector = FaultInjector(testbed.sim, config.fault_plan, testbed.rng)
        injector.arm_testbed(testbed)

    context = variant.prepare(testbed, config)

    seq_collector = _AggregateSeqCollector()
    workload = None
    engine: Optional[WorkloadEngine] = None
    if config.workload is not None:
        # Workload-engine path: fabric-wide empirical traffic or trace
        # replay instead of the bulk long-lived flows.
        wl = config.workload
        connection_cls, cc_name, conn_kwargs = engine_flow_opener(
            config.variant, testbed, config
        )
        trace = None
        if wl.kind == "trace":
            try:
                trace, skipped = load_trace(wl.trace_path, strict=wl.strict_trace)
            except (OSError, ValueError) as error:
                # A bad trace is this run's failure, not a crash that
                # takes down the whole batch.
                result = ExperimentResult(config=config, duration_ns=config.duration_ns)
                result.failure = RunFailure(
                    error_type=type(error).__name__,
                    error_message=str(error),
                    seed=config.seed,
                    fault_plan_path=config.fault_plan_path,
                    bundle_path=None,
                )
                return result
        engine = WorkloadEngine(
            testbed,
            testbed.rng,
            load=wl.load,
            cdf=wl.size_cdf() if wl.kind == "empirical" else None,
            matrix=wl.matrix,
            hotspot_fraction=wl.hotspot_fraction,
            trace=trace,
            connection_cls=connection_cls,
            cc_name=cc_name,
            tcp_config=config.tcp,
            record_cap=wl.record_cap,
            max_flows=wl.max_flows,
            **conn_kwargs,
        )
        if wl.kind == "trace":
            engine.stats.trace_rows_skipped = skipped
        engine.start()
    else:

        def flow_factory(tb: TwoRackTestbed, src, dst, index: int):
            sender, receiver = variant.make_flow(tb, src, dst, index, config, context)
            receiver.on_delivered = seq_collector.make_callback(index)
            return sender, receiver

        workload = build_workload(
            testbed, flow_factory, n_flows=config.n_flows, trace_sequence=False
        )

    voq_collector: Optional[QueueOccupancyCollector] = None
    if config.collect_voq:
        voq_collector = QueueOccupancyCollector(testbed.sim, testbed.uplinks[0].queue)

    if config.fidelity == "tiered" and not forced_reasons:
        occupancy_hook = None
        if voq_collector is not None:
            # Fluid spans bypass the real VOQ; feed the collector the
            # model's per-round occupancy at historical timestamps.
            samples = voq_collector.samples

            def occupancy_hook(time_ns: int, depth: int) -> None:
                samples.append((time_ns, depth))
        fastpath = FluidFastPath(
            testbed, config.duration_ns, occupancy_hook=occupancy_hook
        )
        if engine is not None:
            engine.fastpath = fastpath
        elif workload is not None:
            for flow in workload.flows:
                fastpath.register_flow(flow.sender, flow.receiver)

    if config.background_load > 0.0:
        # Cross traffic between the last host pair, sharing the fabric
        # with the measured flows (§2.1's within-TDN oscillation).
        from repro.apps.background import BackgroundTraffic

        bg_index = rdcn.n_hosts_per_rack - 1
        background = BackgroundTraffic(
            testbed.sim,
            testbed.host(0, bg_index),
            testbed.host(1, bg_index),
            rate_bps=config.background_load * rdcn.packet_rate_bps,
            rng=testbed.rng,
        )
        background.start()

    auditor: Optional[InvariantAuditor] = None
    if config.audit is not None:
        auditor = InvariantAuditor(
            testbed.sim, mode=config.audit, interval_ns=config.audit_interval_ns
        )
        if workload is not None:
            auditor.watch_workload(workload)
        for uplink in testbed.uplinks.values():
            auditor.watch_uplink(uplink)

    result = ExperimentResult(config=config, duration_ns=config.duration_ns)

    try:
        testbed.start()
        if fastpath is not None:
            fastpath.start()
        if auditor is not None:
            auditor.start()
        run_with_watchdog(
            testbed.sim,
            until=config.duration_ns,
            max_events=config.watchdog_max_events,
            max_wall_s=config.watchdog_max_wall_s,
        )
        if auditor is not None:
            auditor.audit()  # final sweep at the horizon
        # Guarantee >= 1 heartbeat per executed run, however short.
        testbed.sim.flush_heartbeat()
    except Exception as error:
        testbed.sim.flush_heartbeat()
        bundle_path: Optional[str] = None
        try:
            bundle_path = write_repro_bundle(
                config.bundle_dir,
                config=config,
                error=error,
                fault_plan=config.fault_plan,
                seed=config.seed,
                label=config.variant,
            )
        except OSError:
            pass  # an unwritable bundle dir must not mask the failure
        result.failure = RunFailure(
            error_type=type(error).__name__,
            error_message=str(error),
            seed=config.seed,
            fault_plan_path=config.fault_plan_path,
            bundle_path=bundle_path,
        )
        if injector is not None:
            result.fault_report = injector.report()
        if auditor is not None:
            result.audit_report = auditor.report()
        if config.fidelity == "tiered":
            result.fidelity_report = (
                fastpath.finish_report(False, forced_reasons)
                if fastpath is not None
                else forced_packet_report(forced_reasons)
            )
        if telemetry is not None:
            # Failed runs keep the full telemetry story: artifacts AND
            # the profile the success path records, so a crash is
            # debuggable from the same outputs.
            result.artifacts = telemetry.finish()
            result.profile_report = telemetry.profile_report()
            if telemetry.profiler is not None:
                result.events_per_second = telemetry.profiler.events_per_second
        return result

    if injector is not None:
        result.fault_report = injector.report()
    if auditor is not None:
        result.audit_report = auditor.report()
    if config.fidelity == "tiered":
        result.fidelity_report = (
            fastpath.finish_report(False, forced_reasons)
            if fastpath is not None
            else forced_packet_report(forced_reasons)
        )
    if engine is not None:
        stats = engine.finish()
        result.workload_summary = stats.summary(
            config.duration_ns, engine.n_racks, engine.load
        )
        result.truncated_flows = stats.truncated_flows
        result.aggregate_delivered = stats.bytes_completed
    else:
        result.flow_delivered = [flow.delivered_bytes for flow in workload.flows]
        result.aggregate_delivered = seq_collector.total
        result.seq_samples = seq_collector.samples
    if voq_collector is not None:
        result.voq_samples = voq_collector.samples
        result.voq_max = voq_collector.max_occupancy()

    if workload is not None:
        reorder_counter = EventCounterCollector(testbed.schedule)
        retx_counter = EventCounterCollector(testbed.schedule)
        for flow in workload.flows:
            for stats in _iter_sender_stats(flow.sender):
                result.retransmissions += stats.retransmissions
                result.spurious_retransmissions += stats.spurious_retransmissions
                result.rtos += stats.rtos
                result.fast_recoveries += stats.fast_recoveries
                reorder_counter.record_events(
                    [(t, 1) for t, _n in stats.reordering_events]
                )
                retx_counter.record_events(
                    [(mark[0], 1) for mark in stats.retransmit_marks]
                )
            if hasattr(flow.sender, "stats") and hasattr(flow.sender.stats, "reinjections"):
                result.reinjections += flow.sender.stats.reinjections
        result.reordering_per_day = reorder_counter.per_day_counts(
            config.weeks, config.warmup_weeks
        )
        result.retx_marks_per_day = retx_counter.per_day_counts(
            config.weeks, config.warmup_weeks
        )
    result.notification_latencies = list(testbed.notifier.delivery_latency_samples)
    result.sketches = {
        "notify_latency_ns": sketch_from_samples(
            float(v) for v in result.notification_latencies
        ).to_dict(),
        "retx_marks_per_day": sketch_from_samples(
            float(v) for v in result.retx_marks_per_day
        ).to_dict(),
        "reordering_per_day": sketch_from_samples(
            float(v) for v in result.reordering_per_day
        ).to_dict(),
    }
    if engine is not None:
        result.sketches.update(engine.stats.sketches())
    if telemetry is not None:
        result.artifacts = telemetry.finish()
        result.profile_report = telemetry.profile_report()
        if telemetry.profiler is not None:
            result.events_per_second = telemetry.profiler.events_per_second
    return result
