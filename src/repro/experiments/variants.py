"""The TCP variants under evaluation (§5.2).

Each :class:`VariantSpec` knows how to prepare the testbed (ECN queues
for DCTCP, the dynamic-buffer controller for retcpdyn, the unoptimized
notifier for tdtcp-unopt) and how to wire one cross-rack flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.tdtcp import TDTCPConnection
from repro.mptcp.connection import create_mptcp_pair
from repro.rdcn.topology import TwoRackTestbed
from repro.retcp.dynbuf import DynamicBufferController
from repro.retcp.retcp import ReTCPConnection
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair


@dataclass
class VariantSpec:
    """One evaluated TCP variant."""

    name: str
    description: str
    needs_ecn: bool = False
    unoptimized_notifier: bool = False

    def prepare(self, testbed: TwoRackTestbed, exp_config) -> dict:
        """Per-run context (e.g. the retcpdyn controller)."""
        return {}

    def make_flow(self, testbed: TwoRackTestbed, src, dst, index: int, exp_config, context: dict):
        """Returns (sender_endpoint, receiver_endpoint)."""
        raise NotImplementedError


class SinglePathVariant(VariantSpec):
    """cubic / dctcp: stock single-path TCP."""

    def __init__(self, name: str, cc_name: str, description: str, needs_ecn: bool = False):
        super().__init__(name=name, description=description, needs_ecn=needs_ecn)
        self.cc_name = cc_name

    def make_flow(self, testbed, src, dst, index, exp_config, context):
        client, server = create_connection_pair(
            testbed.sim, src, dst, cc_name=self.cc_name, config=exp_config.tcp
        )
        return client, server


class MPTCPVariant(VariantSpec):
    """mptcp2f: two subflows pinned to packet/optical with tdm_schd."""

    def __init__(self):
        super().__init__(
            name="mptcp",
            description="MPTCP, 2 subflows pinned per network, tdm_schd scheduler",
        )

    def make_flow(self, testbed, src, dst, index, exp_config, context):
        client, server = create_mptcp_pair(
            testbed.sim,
            src,
            dst,
            cc_name="cubic",
            config=exp_config.tcp,
            n_subflows=min(2, testbed.config.n_tdns),
        )
        return client, server


class ReTCPVariant(VariantSpec):
    """retcp / retcpdyn."""

    def __init__(self, name: str, dynamic_buffers: bool):
        self.dynamic_buffers = dynamic_buffers
        description = (
            "reTCP with dynamic VOQ resizing and advance ramp notification"
            if dynamic_buffers
            else "reTCP reacting to in-band circuit marks only"
        )
        super().__init__(name=name, description=description)

    def prepare(self, testbed, exp_config) -> dict:
        if not self.dynamic_buffers:
            return {}
        controller = DynamicBufferController(
            testbed.sim,
            testbed.driver,
            list(testbed.uplinks.values()),
            normal_capacity=testbed.config.voq_capacity,
            circuit_capacity=testbed.config.retcpdyn_voq_capacity,
            lead_ns=testbed.config.retcpdyn_lead_ns,
            optical_tdn=1,
        )
        return {"controller": controller}

    def make_flow(self, testbed, src, dst, index, exp_config, context):
        client, server = create_connection_pair(
            testbed.sim,
            src,
            dst,
            cc_name="cubic",
            config=exp_config.tcp,
            connection_cls=ReTCPConnection,
            alpha=exp_config.retcp_alpha,
        )
        controller: Optional[DynamicBufferController] = context.get("controller")
        if controller is not None:
            controller.register(client)
            controller.register(server)
        return client, server


class TDTCPVariant(VariantSpec):
    """tdtcp / tdtcp-unopt (unoptimized TDN change notification)."""

    def __init__(self, name: str = "tdtcp", unoptimized_notifier: bool = False):
        description = "TDTCP (per-TDN congestion state, CUBIC per TDN)"
        if unoptimized_notifier:
            description += ", unoptimized notification path"
        super().__init__(
            name=name,
            description=description,
            unoptimized_notifier=unoptimized_notifier,
        )

    def make_flow(self, testbed, src, dst, index, exp_config, context):
        client, server = create_connection_pair(
            testbed.sim,
            src,
            dst,
            cc_name="cubic",
            config=exp_config.tcp,
            connection_cls=TDTCPConnection,
            tdn_count=testbed.config.n_tdns,
        )
        return client, server


VARIANTS: Dict[str, VariantSpec] = {
    spec.name: spec
    for spec in (
        SinglePathVariant("cubic", "cubic", "single-path TCP CUBIC"),
        SinglePathVariant("dctcp", "dctcp", "DCTCP (ECN-based)", needs_ecn=True),
        SinglePathVariant("reno", "reno", "single-path TCP NewReno"),
        MPTCPVariant(),
        ReTCPVariant("retcp", dynamic_buffers=False),
        ReTCPVariant("retcpdyn", dynamic_buffers=True),
        TDTCPVariant("tdtcp"),
        TDTCPVariant("tdtcp-unopt", unoptimized_notifier=True),
    )
}


def get_variant(name: str) -> VariantSpec:
    try:
        return VARIANTS[name]
    except KeyError:
        raise KeyError(f"unknown variant {name!r}; known: {sorted(VARIANTS)}") from None


#: Variants the workload engine can drive: everything that opens one
#: plain connection per flow. MPTCP's subflow bundles don't fit the
#: engine's open/write/close churn discipline.
ENGINE_VARIANTS = ("cubic", "dctcp", "reno", "retcp", "retcpdyn", "tdtcp", "tdtcp-unopt")


def engine_flow_opener(name: str, testbed: TwoRackTestbed, exp_config):
    """How the workload engine opens one short flow under ``name``:
    returns ``(connection_cls, cc_name, conn_kwargs)``.

    retcpdyn keeps its VOQ-resizing controller (``prepare`` still runs)
    but short flows are not registered for the advance cwnd ramp — they
    rarely outlive a single day, so the ramp has nothing to act on.
    """
    if name not in ENGINE_VARIANTS:
        raise ValueError(
            f"variant {name!r} is not supported by the workload engine; "
            f"supported: {ENGINE_VARIANTS}"
        )
    spec = get_variant(name)
    if isinstance(spec, SinglePathVariant):
        return TCPConnection, spec.cc_name, {}
    if isinstance(spec, ReTCPVariant):
        return ReTCPConnection, "cubic", {"alpha": exp_config.retcp_alpha}
    return TDTCPConnection, "cubic", {"tdn_count": testbed.config.n_tdns}
