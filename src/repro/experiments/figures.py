"""Per-figure experiment definitions (§2.2 and §5).

Each ``figN`` function runs the variants that appear in the paper's
figure on the matching RDCN configuration and returns a
:class:`FigureData` with the processed series (folded/tiled sequence
curves, VOQ occupancy curves, CDFs) plus the analytic reference lines.

Scale note: the paper averages thousands of optical weeks of hardware
time; these definitions default to tens of simulated weeks (``weeks``
and ``n_flows`` scale up freely).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentExecutor
from repro.experiments.runner import ExperimentResult, RunFailure
from repro.obs.telemetry import ObsConfig
from repro.metrics.cdf import empirical_cdf
from repro.metrics.seqgraph import (
    constant_rate_curve,
    fold_series_by_week,
    optimal_curve,
    tile_weeks,
)
from repro.rdcn.config import RDCNConfig
from repro.rdcn.schedule import TDNSchedule
from repro.units import gbps, usec

# The line-up of Figure 7/8/9 in the paper's legend order.
FULL_VARIANTS = ("retcpdyn", "tdtcp", "retcp", "dctcp", "cubic", "mptcp")
MOTIVATION_VARIANTS = ("cubic", "mptcp")
REORDERING_VARIANTS = ("cubic", "mptcp", "tdtcp")
# Buffer-economics panels: the variants whose buffer appetite differs
# most — deep-buffer loss-based, shallow-buffer ECN, and TDN-aware.
BUFFER_VARIANTS = ("cubic", "dctcp", "tdtcp")


@dataclass
class FigureData:
    """Processed series for one figure."""

    name: str
    rdcn: RDCNConfig
    weeks_plotted: int
    # variant -> (times_ns, values); sequence curves in bytes.
    seq_curves: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    voq_curves: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    optimal: Optional[Tuple[np.ndarray, np.ndarray]] = None
    packet_only: Optional[Tuple[np.ndarray, np.ndarray]] = None
    throughputs_gbps: Dict[str, float] = field(default_factory=dict)
    # variant -> CDF pairs (values, probabilities) for Figure 10.
    reordering_cdfs: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    retx_cdfs: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    # Partial-figure degradation: variants whose runs crashed end up
    # here (with their structured failures) instead of aborting the
    # figure; the surviving variants still render.
    failures: Dict[str, RunFailure] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def _schedule_of(rdcn: RDCNConfig) -> TDNSchedule:
    return TDNSchedule.uniform(rdcn.schedule_pattern, rdcn.day_ns, rdcn.night_ns)


def _process_run(
    data: FigureData,
    variant: str,
    result: ExperimentResult,
    weeks_plotted: int,
) -> None:
    cfg = result.config
    week_ns = cfg.rdcn.week_ns
    data.results[variant] = result
    data.throughputs_gbps[variant] = result.steady_state_throughput_gbps()
    if result.seq_samples:
        grid, curve, progress = fold_series_by_week(
            result.seq_samples, week_ns, cfg.weeks, cfg.warmup_weeks
        )
        data.seq_curves[variant] = tile_weeks(grid, curve, progress, week_ns, weeks_plotted)
    if result.voq_samples:
        grid, curve, _ = fold_series_by_week(
            result.voq_samples, week_ns, cfg.weeks, cfg.warmup_weeks, cumulative=False
        )
        data.voq_curves[variant] = tile_weeks(grid, curve, 0.0, week_ns, weeks_plotted)


def _reference_curves(data: FigureData, rdcn: RDCNConfig, weeks_plotted: int) -> None:
    schedule = _schedule_of(rdcn)
    rates = [rdcn.tdn_rate_bps(t) for t in range(rdcn.n_tdns)]
    data.optimal = optimal_curve(schedule, rates, n_weeks=weeks_plotted)
    data.packet_only = constant_rate_curve(
        rdcn.packet_rate_bps, weeks_plotted * schedule.week_ns
    )


def run_figure(
    name: str,
    rdcn: RDCNConfig,
    variants: Sequence[str],
    weeks: int = 40,
    warmup_weeks: int = 12,
    n_flows: int = 8,
    weeks_plotted: int = 3,
    seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    retries: int = 1,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> FigureData:
    """Generic driver: run every variant on one RDCN configuration.

    The variant runs are independent, so they execute as one
    :class:`ExperimentExecutor` batch — pass ``executor`` (or
    ``jobs``/``cache_dir``) to fan them out across processes and reuse
    cached results; assembly is in variant order regardless of which
    worker finishes first, so a parallel figure is value-identical to a
    sequential one. A crashed variant no longer aborts the figure: it
    lands in ``FigureData.failures`` while the others render.

    When ``obs`` is set, each variant's run records telemetry under the
    label ``{figure}_{variant}`` (artifact paths end up on the per-
    variant :class:`ExperimentResult`).

    ``rdcn_override`` (an ``RDCNConfig -> RDCNConfig`` transform) is
    applied to the figure's canned setting before running — the CLI's
    ``--buffer-policy``/``--buffer-total``/``--buffer-alpha`` flags ride
    in this way without each figure knowing about them.

    ``fidelity="tiered"`` runs every variant through the fluid fast
    path (``repro.sim.fastpath``); variants or settings the fluid model
    cannot represent fall back to packet fidelity per-run with a logged
    reason (the decision lands on each result's ``fidelity_report``)."""
    if rdcn_override is not None:
        rdcn = rdcn_override(rdcn)
    data = FigureData(name=name, rdcn=rdcn, weeks_plotted=weeks_plotted)
    configs = [
        ExperimentConfig(
            variant=variant,
            rdcn=rdcn,
            n_flows=n_flows,
            weeks=weeks,
            warmup_weeks=warmup_weeks,
            seed=seed,
            fidelity=fidelity,
            obs=obs.for_run(f"{name}_{variant}") if obs is not None else None,
        )
        for variant in variants
    ]
    if executor is None:
        executor = ExperimentExecutor(
            jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, retries=retries
        )
    results = executor.run_batch(configs, labels=[f"{name}/{v}" for v in variants])
    for variant, result in zip(variants, results):
        if result.failure is not None:
            data.failures[variant] = result.failure
            continue
        _process_run(data, variant, result, weeks_plotted)
    _reference_curves(data, rdcn, weeks_plotted)
    return data


# ----------------------------------------------------------------------
# The paper's RDCN settings
# ----------------------------------------------------------------------
def bw_latency_rdcn() -> RDCNConfig:
    """§5.1 default: 10/100 Gbps AND ~100/40 us RTTs (Figures 2, 7, 10,
    11, 13)."""
    return RDCNConfig()


def bw_only_rdcn() -> RDCNConfig:
    """Figure 8: bandwidth difference only — both TDNs at the *low*
    (optical) base latency.

    With short, equal RTTs a single-path sender's queue-inflated window
    already translates into several-fold circuit throughput, which is
    how the paper's CUBIC/DCTCP get close to TDTCP in this setting.
    """
    base = RDCNConfig()
    return replace(base, packet_one_way_ns=base.optical_one_way_ns)


def latency_only_rdcn(rate_gbps: float = 100.0) -> RDCNConfig:
    """Figures 9/14: both TDNs at ``rate_gbps``; RTTs ~20 us vs ~10 us.

    One-way fabric delays are set so end-to-end base RTTs (including
    host links and serialization) land near the paper's 20/10 us.
    """
    base = RDCNConfig()
    return replace(
        base,
        packet_rate_bps=gbps(rate_gbps),
        optical_rate_bps=gbps(rate_gbps),
        host_link_rate_bps=gbps(rate_gbps / base.n_hosts_per_rack),
        packet_one_way_ns=usec(7),
        optical_one_way_ns=usec(2),
    )


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------
def fig2(
    weeks: int = 40, warmup_weeks: int = 12, n_flows: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> FigureData:
    """Figure 2: motivation sequence graph (CUBIC, MPTCP vs optimal and
    packet-only) over three optical weeks."""
    return run_figure(
        "fig2", bw_latency_rdcn(), MOTIVATION_VARIANTS, weeks, warmup_weeks, n_flows,
        seed=seed, obs=obs, executor=executor, rdcn_override=rdcn_override,
        fidelity=fidelity,
    )


def fig7(
    weeks: int = 40, warmup_weeks: int = 12, n_flows: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> FigureData:
    """Figure 7: all variants under bandwidth AND latency differences.

    (a) is ``seq_curves``; (b) is ``voq_curves``.
    """
    return run_figure(
        "fig7", bw_latency_rdcn(), FULL_VARIANTS, weeks, warmup_weeks, n_flows,
        seed=seed, obs=obs, executor=executor, rdcn_override=rdcn_override,
        fidelity=fidelity,
    )


def fig8(
    weeks: int = 40, warmup_weeks: int = 12, n_flows: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> FigureData:
    """Figure 8: bandwidth difference only."""
    return run_figure(
        "fig8", bw_only_rdcn(), FULL_VARIANTS, weeks, warmup_weeks, n_flows,
        seed=seed, obs=obs, executor=executor, rdcn_override=rdcn_override,
        fidelity=fidelity,
    )


def fig9(
    weeks: int = 40, warmup_weeks: int = 12, n_flows: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> FigureData:
    """Figure 9: latency difference only at 100 Gbps."""
    return run_figure(
        "fig9", latency_only_rdcn(100.0), FULL_VARIANTS, weeks, warmup_weeks, n_flows,
        seed=seed, obs=obs, executor=executor, rdcn_override=rdcn_override,
        fidelity=fidelity,
    )


def fig10(
    weeks: int = 60, warmup_weeks: int = 12, n_flows: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> FigureData:
    """Figure 10: CDFs of reordering events and retransmitted packets
    per optical day for CUBIC, MPTCP, and TDTCP."""
    data = run_figure(
        "fig10", bw_latency_rdcn(), REORDERING_VARIANTS, weeks, warmup_weeks, n_flows,
        seed=seed, obs=obs, executor=executor, rdcn_override=rdcn_override,
        fidelity=fidelity,
    )
    for variant, result in data.results.items():
        data.reordering_cdfs[variant] = empirical_cdf(result.reordering_per_day)
        data.retx_cdfs[variant] = empirical_cdf(result.retx_marks_per_day)
    return data


def fig11(
    weeks: int = 40, warmup_weeks: int = 12, n_flows: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> FigureData:
    """Figure 11: TDTCP with and without the §5.4 notification
    optimizations."""
    return run_figure(
        "fig11",
        bw_latency_rdcn(),
        ("tdtcp", "tdtcp-unopt"),
        weeks,
        warmup_weeks,
        n_flows,
        seed=seed,
        obs=obs,
        executor=executor,
        rdcn_override=rdcn_override,
        fidelity=fidelity,
    )


def fig13(
    weeks: int = 40, warmup_weeks: int = 12, n_flows: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> FigureData:
    """Figure 13 (Appendix A.3): VOQ occupancy of CUBIC and MPTCP in the
    Figure-2 configuration."""
    return run_figure(
        "fig13", bw_latency_rdcn(), MOTIVATION_VARIANTS, weeks, warmup_weeks, n_flows,
        seed=seed, obs=obs, executor=executor, rdcn_override=rdcn_override,
        fidelity=fidelity,
    )


def buffer_rdcn(total: int, policy: str, alpha: float = 1.0) -> RDCNConfig:
    """The Figure-2 RDCN with ``total`` packets of ToR buffer under one
    sharing policy (static carves it into the VOQ; pooled policies back
    it with a shared pool of the same size)."""
    return replace(
        bw_latency_rdcn(),
        voq_capacity=total,
        buffer_policy=policy,
        buffer_alpha=alpha,
        buffer_total_capacity=None if policy == "static" else total,
    )


def fig_buffer(
    total: int,
    policy: str,
    alpha: float = 1.0,
    variants: Sequence[str] = BUFFER_VARIANTS,
    weeks: int = 40, warmup_weeks: int = 12, n_flows: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> FigureData:
    """One buffer-economics panel: sequence/VOQ curves of the buffer
    variants with ``total`` packets of ToR memory under ``policy``.

    The full figure family is one panel per (total, policy) point —
    see :func:`buffer_figure_family` and
    ``experiments.sweeps.buffer_economics_sweep`` for the aggregate
    throughput surface.
    """
    from repro.experiments.sweeps import POLICY_TAGS

    return run_figure(
        f"fig-buffer-{total}x{POLICY_TAGS[policy]}",
        buffer_rdcn(total, policy, alpha),
        variants,
        weeks,
        warmup_weeks,
        n_flows,
        seed=seed,
        obs=obs,
        executor=executor,
        rdcn_override=rdcn_override,
        fidelity=fidelity,
    )


def buffer_figure_family(
    totals: Sequence[int] = (32, 64, 96),
    policies: Sequence[str] = ("static", "complete-sharing", "dynamic-threshold"),
    alpha: float = 1.0,
    variants: Sequence[str] = BUFFER_VARIANTS,
    weeks: int = 40, warmup_weeks: int = 12, n_flows: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> Dict[str, FigureData]:
    """The buffer-economics figure family: a panel per (total buffer x
    sharing policy) point, keyed by the panel name."""
    family: Dict[str, FigureData] = {}
    for total in totals:
        for policy in policies:
            data = fig_buffer(
                total, policy, alpha, variants, weeks, warmup_weeks, n_flows,
                seed=seed, obs=obs, executor=executor, rdcn_override=rdcn_override,
                fidelity=fidelity,
            )
            family[data.name] = data
    return family


@dataclass
class SlowdownFigure:
    """The FCT-slowdown figure family: per-(variant x load) percentile
    curves from the workload engine's streaming sketches.

    ``curves[variant][label]`` is one value per offered load (NaN where
    that cell failed or recorded no completions), aligned with
    ``loads``. The per-size-bin families ride along as
    ``bin_curves[bin][variant][label]``.
    """

    name: str
    loads: Tuple[float, ...]
    variants: Tuple[str, ...]
    curves: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)
    bin_curves: Dict[str, Dict[str, Dict[str, np.ndarray]]] = field(default_factory=dict)
    achieved_loads: Dict[str, np.ndarray] = field(default_factory=dict)
    sweep: Optional[object] = None  # the underlying LoadSweepResult
    failures: Dict[str, RunFailure] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def fig_fct_slowdown(
    loads: Sequence[float] = (0.2, 0.4, 0.6),
    variants: Sequence[str] = ("cubic", "tdtcp"),
    cdf: str = "web-search",
    matrix: str = "permutation",
    hotspot_fraction: float = 0.5,
    weeks: int = 24, warmup_weeks: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    percentile_labels: Sequence[str] = ("p50", "p99"),
    fidelity: str = "packet",
) -> SlowdownFigure:
    """FCT-slowdown curves per (variant x offered load).

    One workload-engine run per cell through the executor (parallel,
    cached, checkpointable like every other batch); the slowdown
    percentiles are read from each run's merged-ready sketches. This is
    the figure the ROADMAP's production-workload item calls for — the
    empirical-traffic counterpart of the paper's long-lived-flow plots.
    """
    from repro.apps.engine import SIZE_BINS
    from repro.experiments.sweeps import load_sweep

    sweep = load_sweep(
        loads=loads, variants=variants, cdf=cdf, matrix=matrix,
        hotspot_fraction=hotspot_fraction,
        weeks=weeks, warmup_weeks=warmup_weeks, seed=seed,
        executor=executor, obs=obs, fidelity=fidelity,
    )
    data = SlowdownFigure(
        name="fig-fct-slowdown",
        loads=tuple(loads),
        variants=tuple(variants),
        sweep=sweep,
    )
    by_cell = {(p.load, p.variant): p for p in sweep.points}
    for point in sweep.failures:
        data.failures[f"{point.load:.2f}/{point.variant}"] = point.failure

    def curve(variant: str, sketch: str, label: str) -> np.ndarray:
        values = []
        for load in loads:
            point = by_cell.get((load, variant))
            value = point.percentile(sketch, label) if point is not None and point.ok else None
            values.append(float("nan") if value is None else value)
        return np.asarray(values, dtype=float)

    for variant in variants:
        data.curves[variant] = {
            label: curve(variant, "slowdown", label) for label in percentile_labels
        }
        data.achieved_loads[variant] = np.asarray(
            [
                by_cell[(load, variant)].achieved_load
                if (load, variant) in by_cell and by_cell[(load, variant)].ok
                else float("nan")
                for load in loads
            ],
            dtype=float,
        )
        for bin_label, _bound in SIZE_BINS:
            per_bin = data.bin_curves.setdefault(bin_label, {})
            per_bin[variant] = {
                label: np.asarray(
                    [
                        _bin_percentile(by_cell.get((load, variant)), bin_label, label)
                        for load in loads
                    ],
                    dtype=float,
                )
                for label in percentile_labels
            }
    return data


def _bin_percentile(point, bin_label: str, label: str) -> float:
    if point is None or not point.ok or point.summary is None:
        return float("nan")
    bins = point.summary.get("slowdown_by_bin") or {}
    value = (bins.get(bin_label) or {}).get(label)
    return float("nan") if value is None else value


@dataclass
class FctCdfFigure:
    """Per-(load x variant) FCT CDF curves decoded from the workload
    engine's serialized DDSketch families.

    ``curves[(load, variant)]`` is ``(values, cumulative_probability)``
    — one point per occupied sketch bucket, so the curve stays within
    relative error ``alpha`` of the exact empirical CDF at constant
    memory however many flows the cell completed.
    """

    name: str
    loads: Tuple[float, ...]
    variants: Tuple[str, ...]
    sketch: str
    curves: Dict[Tuple[float, str], Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    sweep: Optional[object] = None  # the underlying LoadSweepResult
    failures: Dict[str, RunFailure] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures


def fig_fct_cdf(
    loads: Sequence[float] = (0.2, 0.4, 0.6),
    variants: Sequence[str] = ("cubic", "tdtcp"),
    cdf: str = "web-search",
    matrix: str = "permutation",
    hotspot_fraction: float = 0.5,
    weeks: int = 24, warmup_weeks: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    fidelity: str = "packet",
    sketch: str = "fct_us",
    sweep=None,
) -> FctCdfFigure:
    """FCT CDF curves per (variant x offered load).

    Each curve is decoded straight from the run's merge-ready
    :class:`~repro.obs.sketch.QuantileSketch` state (``sketch`` selects
    the family — ``fct_us`` by default, ``slowdown`` also works), so a
    10M-flow tiered campaign and an 8-flow smoke run cost the same to
    plot. Pass ``sweep`` (an existing
    :class:`~repro.experiments.sweeps.LoadSweepResult`) to decode
    curves without re-running anything — the CLI's
    ``sweep-load --cdf-out`` takes that path.
    """
    from repro.experiments.sweeps import load_sweep
    from repro.obs.sketch import QuantileSketch

    if sweep is None:
        sweep = load_sweep(
            loads=loads, variants=variants, cdf=cdf, matrix=matrix,
            hotspot_fraction=hotspot_fraction,
            weeks=weeks, warmup_weeks=warmup_weeks, seed=seed,
            executor=executor, obs=obs, fidelity=fidelity,
        )
    else:
        loads = sorted({p.load for p in sweep.points})
        variants = sorted({p.variant for p in sweep.points})
    data = FctCdfFigure(
        name="fig-fct-cdf",
        loads=tuple(loads),
        variants=tuple(variants),
        sketch=sketch,
        sweep=sweep,
    )
    for point in sweep.points:
        if not point.ok:
            data.failures[f"{point.load:.2f}/{point.variant}"] = point.failure
            continue
        state = point.sketches.get(sketch)
        if not state:
            continue
        points = QuantileSketch.from_dict(state).cdf_points()
        if not points:
            continue
        data.curves[(point.load, point.variant)] = (
            np.asarray([value for value, _p in points], dtype=float),
            np.asarray([prob for _v, prob in points], dtype=float),
        )
    return data


def fig14(
    rate_gbps: float, weeks: int = 40, warmup_weeks: int = 12, n_flows: int = 8, seed: int = 1,
    obs: Optional[ObsConfig] = None,
    executor: Optional[ExperimentExecutor] = None,
    rdcn_override: Optional[Callable[[RDCNConfig], RDCNConfig]] = None,
    fidelity: str = "packet",
) -> FigureData:
    """Figure 14 (Appendix A.4): VOQ occupancy, latency-only RDCN at a
    fixed rate (the paper shows 10 and 100 Gbps panels)."""
    return run_figure(
        f"fig14-{int(rate_gbps)}g",
        latency_only_rdcn(rate_gbps),
        FULL_VARIANTS,
        weeks,
        warmup_weeks,
        n_flows,
        seed=seed,
        obs=obs,
        executor=executor,
        rdcn_override=rdcn_override,
        fidelity=fidelity,
    )
