"""Seeded exponential backoff with full jitter for executor retries.

Before this module, a failed run was resubmitted to the pool
immediately — a transient fault (an OOM-killed worker, a briefly
wedged filesystem) was hammered back-to-back with zero spacing. The
classic fix is *capped exponential backoff with full jitter* (the
AWS architecture-blog recipe): attempt ``n`` sleeps a uniform draw
from ``[0, min(cap, base * multiplier**(n-1))]``.

Two reproducibility constraints shape the implementation:

* **Determinism** — delays come from a :class:`~repro.sim.rng.SeededRandom`
  fork keyed by ``(label, attempt)``, not from a shared stream, so the
  schedule for any one run is independent of how many *other* runs
  failed or in what order their retries interleaved. Same seed →
  byte-identical delay schedule.
* **Testability** — the policy only *computes* delays.  Sleeping is the
  executor's job, through an injectable ``sleep`` callable, so tests
  assert on the schedule without waiting on a wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.rng import SeededRandom

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with full jitter, seeded per decision.

    ``delay_s(label, attempt)`` is a pure function of the policy fields
    and its arguments: attempt 1 draws from ``[0, base_s]``, attempt 2
    from ``[0, base_s * multiplier]``, …, with the envelope capped at
    ``cap_s``.
    """

    base_s: float = 0.1
    cap_s: float = 5.0
    multiplier: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {self.base_s}")
        if self.cap_s < self.base_s:
            raise ValueError(
                f"cap_s ({self.cap_s}) must be >= base_s ({self.base_s})"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def envelope_s(self, attempt: int) -> float:
        """The jitter-free upper bound for retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.cap_s, self.base_s * self.multiplier ** (attempt - 1))

    def delay_s(self, label: str, attempt: int) -> float:
        """Full-jitter delay before retry ``attempt`` of run ``label``.

        A fresh fork per ``(label, attempt)`` keeps the draw independent
        of every other retry decision in the campaign — schedules never
        shift when an unrelated run starts failing.
        """
        envelope = self.envelope_s(attempt)
        if envelope <= 0.0:
            return 0.0
        rng = SeededRandom(self.seed).fork(f"backoff:{label}:{attempt}")
        return rng.uniform(0.0, envelope)

    def schedule(self, label: str, attempts: int) -> list:
        """The full delay schedule for ``attempts`` retries of a run."""
        return [self.delay_s(label, n) for n in range(1, attempts + 1)]
