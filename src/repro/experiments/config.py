"""Experiment configuration: one variant run on one RDCN setting."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.faults.audit import AUDIT_MODES
from repro.faults.plan import FaultPlan
from repro.obs.telemetry import ObsConfig
from repro.rdcn.config import NotifierConfig, RDCNConfig
from repro.tcp.config import TCPConfig


@dataclass
class ExperimentConfig:
    """Everything a single run needs.

    The paper runs 16 flows for 40 s (thousands of weeks) on hardware;
    the defaults here are scaled for a Python event simulator — 4 flows
    for tens of weeks — which preserves every mechanism while keeping
    runs interactive. ``n_flows`` and ``weeks`` scale up freely.
    """

    variant: str = "tdtcp"
    rdcn: RDCNConfig = field(default_factory=RDCNConfig)
    tcp: Optional[TCPConfig] = None
    n_flows: int = 4
    weeks: int = 30
    warmup_weeks: int = 5
    # reTCP's multiplicative ramp factor: sized so the aggregate ramped
    # window roughly fills the enlarged VOQ plus circuit BDP without
    # overflowing it (swept in benchmarks/test_ablations.py).
    retcp_alpha: float = 2.0
    # Cross traffic (§2.1's "subject to background traffic"): fraction
    # of the packet network's rate injected as on/off background load
    # between the last host pair (0 disables).
    background_load: float = 0.0
    collect_voq: bool = True
    collect_sequence: bool = True
    seed: int = 1
    # Telemetry (tracepoints / metrics / profiling); None disables —
    # the probe sites then cost one attribute check each.
    obs: Optional[ObsConfig] = None
    # Fault injection (repro.faults): a FaultPlan armed on the testbed
    # before the run, or a path to load one from. None = no faults.
    fault_plan: Optional[FaultPlan] = None
    fault_plan_path: Optional[str] = None
    # Runtime invariant auditing: None disables, "warn" records
    # violations, "fail" raises at the first dirty audit.
    audit: Optional[str] = None
    audit_interval_ns: int = 200_000
    # Watchdog budgets for the run loop; None = unbounded.
    watchdog_max_events: Optional[int] = None
    watchdog_max_wall_s: Optional[float] = None
    # Where crash-capture repro bundles are written.
    bundle_dir: str = "out/bundles"

    def __post_init__(self) -> None:
        if self.weeks <= self.warmup_weeks:
            raise ValueError("weeks must exceed warmup_weeks")
        if self.audit is not None and self.audit not in AUDIT_MODES:
            raise ValueError(f"audit must be None or one of {AUDIT_MODES}")
        if self.fault_plan is None and self.fault_plan_path is not None:
            self.fault_plan = FaultPlan.load(self.fault_plan_path)
        if self.n_flows < 1:
            raise ValueError("need at least one flow")
        if not (0.0 <= self.background_load < 1.0):
            raise ValueError("background_load must be in [0, 1)")
        if self.tcp is None:
            self.tcp = TCPConfig(mss=self.rdcn.mss)
        if self.n_flows > self.rdcn.n_hosts_per_rack:
            self.rdcn = replace(self.rdcn, n_hosts_per_rack=self.n_flows)

    @property
    def duration_ns(self) -> int:
        return self.weeks * self.rdcn.week_ns

    def with_unoptimized_notifier(self) -> "ExperimentConfig":
        rdcn = replace(self.rdcn, notifier=NotifierConfig.unoptimized())
        return replace(self, rdcn=rdcn)
