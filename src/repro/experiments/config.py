"""Experiment configuration: one variant run on one RDCN setting."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Optional

#: Bumped whenever the canonical config encoding (or the semantics of
#: any encoded field) changes, so stale executor cache entries written
#: under an older scheme can never satisfy a new lookup.
#: v2: RDCNConfig grew the shared-buffer fields (buffer_policy /
#: buffer_alpha / buffer_total_capacity).
#: v3: ExperimentConfig grew the nested WorkloadConfig (workload-engine
#: runs) and the empirical-workload mean/rounding fixes changed what a
#: load value simulates.
#: v4: ExperimentConfig grew ``fidelity`` ("packet" | "tiered"): the
#: tiered fluid fast path changes what a run computes, so the mode is
#: part of the semantic cache key.
CONFIG_SCHEMA_VERSION = 4

#: Run fidelity modes: "packet" is the exact event-per-segment core;
#: "tiered" opts into the slot-level fluid fast path (repro.sim.fastpath)
#: with packet-level fallback at fidelity triggers.
FIDELITY_MODES = ("packet", "tiered")

from repro.faults.audit import AUDIT_MODES
from repro.faults.plan import FaultPlan
from repro.obs.telemetry import ObsConfig
from repro.rdcn.config import NotifierConfig, RDCNConfig
from repro.tcp.config import TCPConfig

#: Named empirical CDFs the workload engine knows out of the box.
WORKLOAD_CDFS = ("web-search", "data-mining", "custom")


@dataclass
class WorkloadConfig:
    """Fabric-wide workload-engine settings (repro.apps.engine).

    Attaching one of these to an :class:`ExperimentConfig` switches the
    run from the bulk long-lived-flow workload to the engine: Poisson
    empirical traffic (``kind="empirical"``) or CSV trace replay
    (``kind="trace"``) across every ToR pair.
    """

    kind: str = "empirical"  # "empirical" | "trace"
    cdf: str = "web-search"
    #: Custom CDF points ((cum_prob, size_bytes), ...) for cdf="custom".
    custom_cdf: Optional[tuple] = None
    #: Target offered load as a fraction of per-ToR fabric capacity.
    load: float = 0.4
    matrix: str = "permutation"  # "permutation" | "all-to-all" | "hotspot"
    hotspot_fraction: float = 0.5
    #: Trace replay inputs. The *content hash* is the semantic identity
    #: of a trace for cache keys; the path is where this process finds
    #: it (excluded from canonical_json, like fault_plan_path).
    trace_path: Optional[str] = None
    trace_sha256: Optional[str] = None
    strict_trace: bool = True
    #: Per-flow record storage: 0 = none (pure streaming), N > 0 keeps a
    #: reservoir sample of at most N records.
    record_cap: int = 0
    #: Stop launching after this many flows (None = run to the horizon).
    max_flows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("empirical", "trace"):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if self.cdf not in WORKLOAD_CDFS:
            raise ValueError(f"unknown workload cdf {self.cdf!r}; known: {WORKLOAD_CDFS}")
        if self.cdf == "custom" and self.kind == "empirical" and not self.custom_cdf:
            raise ValueError("cdf='custom' needs custom_cdf points")
        if not (0.0 < self.load <= 1.0):
            raise ValueError("load must be in (0, 1]")
        if self.matrix not in ("permutation", "all-to-all", "hotspot"):
            raise ValueError(f"unknown traffic matrix {self.matrix!r}")
        if not (0.0 <= self.hotspot_fraction <= 1.0):
            raise ValueError("hotspot_fraction must be in [0, 1]")
        if self.record_cap < 0:
            raise ValueError("record_cap must be >= 0")
        if self.max_flows is not None and self.max_flows < 1:
            raise ValueError("max_flows must be >= 1")
        if self.kind == "trace":
            if self.trace_path is None:
                raise ValueError("kind='trace' needs trace_path")
            if self.trace_sha256 is None:
                self.trace_sha256 = _file_sha256(self.trace_path)
        if self.custom_cdf is not None:
            # Canonical form: tuples of tuples (JSON round-trips as
            # lists, so normalize both directions).
            self.custom_cdf = tuple((float(p), int(s)) for p, s in self.custom_cdf)

    def size_cdf(self):
        """The (prob, size) points this config names."""
        from repro.apps.tracegen import DATA_MINING_CDF, WEB_SEARCH_CDF

        if self.cdf == "web-search":
            return WEB_SEARCH_CDF
        if self.cdf == "data-mining":
            return DATA_MINING_CDF
        return self.custom_cdf

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown WorkloadConfig fields {sorted(unknown)}")
        return cls(**data)


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class ExperimentConfig:
    """Everything a single run needs.

    The paper runs 16 flows for 40 s (thousands of weeks) on hardware;
    the defaults here are scaled for a Python event simulator — 4 flows
    for tens of weeks — which preserves every mechanism while keeping
    runs interactive. ``n_flows`` and ``weeks`` scale up freely.
    """

    variant: str = "tdtcp"
    rdcn: RDCNConfig = field(default_factory=RDCNConfig)
    tcp: Optional[TCPConfig] = None
    n_flows: int = 4
    weeks: int = 30
    warmup_weeks: int = 5
    # reTCP's multiplicative ramp factor: sized so the aggregate ramped
    # window roughly fills the enlarged VOQ plus circuit BDP without
    # overflowing it (swept in benchmarks/test_ablations.py).
    retcp_alpha: float = 2.0
    # Cross traffic (§2.1's "subject to background traffic"): fraction
    # of the packet network's rate injected as on/off background load
    # between the last host pair (0 disables).
    background_load: float = 0.0
    collect_voq: bool = True
    collect_sequence: bool = True
    seed: int = 1
    # Simulation fidelity: "packet" (exact, default) or "tiered" (fluid
    # fast path between fidelity triggers; see repro.sim.fastpath).
    # Semantic — two runs differing only here may produce different
    # traces, so it participates in cache_key().
    fidelity: str = "packet"
    # Telemetry (tracepoints / metrics / profiling); None disables —
    # the probe sites then cost one attribute check each.
    obs: Optional[ObsConfig] = None
    # Workload engine (repro.apps.engine): when set the run launches
    # fabric-wide empirical/trace traffic instead of the bulk flows.
    workload: Optional[WorkloadConfig] = None
    # Fault injection (repro.faults): a FaultPlan armed on the testbed
    # before the run, or a path to load one from. None = no faults.
    fault_plan: Optional[FaultPlan] = None
    fault_plan_path: Optional[str] = None
    # Runtime invariant auditing: None disables, "warn" records
    # violations, "fail" raises at the first dirty audit.
    audit: Optional[str] = None
    audit_interval_ns: int = 200_000
    # Watchdog budgets for the run loop; None = unbounded.
    watchdog_max_events: Optional[int] = None
    watchdog_max_wall_s: Optional[float] = None
    # Where crash-capture repro bundles are written.
    bundle_dir: str = "out/bundles"

    def __post_init__(self) -> None:
        if self.weeks <= self.warmup_weeks:
            raise ValueError("weeks must exceed warmup_weeks")
        if self.fidelity not in FIDELITY_MODES:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_MODES}, got {self.fidelity!r}"
            )
        if self.audit is not None and self.audit not in AUDIT_MODES:
            raise ValueError(f"audit must be None or one of {AUDIT_MODES}")
        if self.fault_plan is None and self.fault_plan_path is not None:
            self.fault_plan = FaultPlan.load(self.fault_plan_path)
        if self.n_flows < 1:
            raise ValueError("need at least one flow")
        if self.workload is not None and self.variant == "mptcp":
            # The engine opens/closes one plain connection per flow;
            # MPTCP's subflow bundles don't fit that churn discipline.
            raise ValueError("the workload engine does not support the mptcp variant")
        if not (0.0 <= self.background_load < 1.0):
            raise ValueError("background_load must be in [0, 1)")
        if self.tcp is None:
            self.tcp = TCPConfig(mss=self.rdcn.mss)
        if self.n_flows > self.rdcn.n_hosts_per_rack:
            self.rdcn = replace(self.rdcn, n_hosts_per_rack=self.n_flows)

    @property
    def duration_ns(self) -> int:
        return self.weeks * self.rdcn.week_ns

    def with_unoptimized_notifier(self) -> "ExperimentConfig":
        rdcn = replace(self.rdcn, notifier=NotifierConfig.unoptimized())
        return replace(self, rdcn=rdcn)

    # ------------------------------------------------------------------
    # Canonical serialization (executor cache keys, spawn-safe workers)
    # ------------------------------------------------------------------
    #: Fields that never change what a run computes: telemetry output
    #: locations and the *path* a fault plan was loaded from (the plan
    #: content itself is part of the key). Excluded from cache_key().
    NON_SEMANTIC_FIELDS = ("obs", "bundle_dir", "fault_plan_path")

    def to_dict(self) -> dict:
        """Canonical JSON-ready view of the post-init state. Nested
        configs serialize through their own ``to_dict``; the round trip
        ``from_dict(to_dict(c)) == c`` is exact."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is not None and f.name in (
                "rdcn", "tcp", "obs", "fault_plan", "workload"
            ):
                value = value.to_dict()
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ExperimentConfig fields {sorted(unknown)}")
        kwargs = dict(data)
        if kwargs.get("rdcn") is not None:
            kwargs["rdcn"] = RDCNConfig.from_dict(kwargs["rdcn"])
        if kwargs.get("tcp") is not None:
            kwargs["tcp"] = TCPConfig.from_dict(kwargs["tcp"])
        if kwargs.get("obs") is not None:
            kwargs["obs"] = ObsConfig.from_dict(kwargs["obs"])
        if kwargs.get("fault_plan") is not None:
            kwargs["fault_plan"] = FaultPlan.from_dict(kwargs["fault_plan"])
        if kwargs.get("workload") is not None:
            kwargs["workload"] = WorkloadConfig.from_dict(kwargs["workload"])
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """Deterministic encoding of the semantic fields only — the
        cache-key payload (see ``NON_SEMANTIC_FIELDS``)."""
        payload = self.to_dict()
        for name in self.NON_SEMANTIC_FIELDS:
            payload.pop(name, None)
        if payload.get("workload") is not None:
            # The trace's *content hash* is its semantic identity; the
            # filesystem path is just where this process found it.
            payload["workload"] = dict(payload["workload"])
            payload["workload"].pop("trace_path", None)
        return json.dumps(
            {"schema": CONFIG_SCHEMA_VERSION, "config": payload},
            sort_keys=True,
            separators=(",", ":"),
        )

    def cache_key(self) -> str:
        """Stable content hash identifying this run's outputs: two
        configs share a key iff every simulation-affecting field (fault
        plan included) is identical."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()
