"""Parallel experiment execution with deterministic result caching.

The paper averages "results across thousands of optical weeks" per
figure (§5); every figure and sweep is a batch of fully independent
seeded runs, so :class:`ExperimentExecutor` maps a list of
:class:`~repro.experiments.config.ExperimentConfig`\\ s across worker
processes and reassembles the results **in input order** — a parallel
batch is value-identical to the sequential loop it replaces.

Three layers:

* **Transport** — workers receive a config as its canonical dict
  (:meth:`ExperimentConfig.to_dict`) and return the result the same way
  (:meth:`ExperimentResult.to_dict`), so the pool is spawn-safe: no
  live simulator objects ever cross a process boundary, and the
  ``jobs=1`` inline path round-trips through the very same encoding to
  keep both paths bit-for-bit interchangeable.
* **Cache** — :class:`ResultCache` stores successful results on disk
  under ``sha256(canonical config JSON)``
  (:meth:`ExperimentConfig.cache_key`). Two configs share a key iff
  every simulation-affecting field matches (fault plan included;
  telemetry output paths excluded), so a warm cache replays a batch
  without executing a single simulation. Corrupt or stale-schema
  entries read as misses, never as errors. Runs with active telemetry
  bypass the cache entirely — their artifacts must actually be written.
* **Retry** — a bounded retry policy re-executes failed runs
  (``result.failure`` set, e.g. a watchdog wall-clock abort on a loaded
  machine) up to ``retries`` extra times. Failures still standing after
  the last attempt come back as structured
  :class:`~repro.experiments.runner.RunFailure` results — callers
  decide whether a failed item degrades or aborts the batch. Failed
  results are never cached.

Progress and cache-hit/miss/retry counters are surfaced through a
:class:`repro.obs.metrics.MetricsRegistry` (``executor_*`` families)
plus a per-batch :class:`BatchStats`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import queue as queue_mod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Callable, List, Optional, Sequence

from repro.experiments.config import CONFIG_SCHEMA_VERSION, ExperimentConfig
from repro.experiments.runner import (
    ExperimentResult,
    RunFailure,
    run_experiment,
    set_worker_heartbeat,
)
from repro.obs.campaign import CAMPAIGN_SCHEMA_VERSION, CampaignLog
from repro.obs.metrics import MetricsRegistry

#: (done, total, label, outcome) — outcome is "cached", "ok", "failed",
#: or "retry" (retry reports do not advance ``done``). ``done`` is
#: strictly monotonic non-decreasing across one batch.
ProgressFn = Callable[[int, int, str, str], None]

#: Default heartbeat cadence when a campaign log is attached: every
#: ~100k processed events a worker reports (sim_now, events, events/s,
#: heap size) — frequent enough to spot a wedged run within seconds,
#: rare enough to be invisible in the profile.
DEFAULT_HEARTBEAT_EVENTS = 100_000


def execute_config_dict(payload: dict) -> dict:
    """Worker entry point (module-level so spawned processes can import
    it): canonical config dict in, canonical result dict out."""
    config = ExperimentConfig.from_dict(payload)
    return run_experiment(config).to_dict()


def execute_config_dict_hb(payload: dict, label: str, hb_queue, every_events: int) -> dict:
    """Heartbeating worker entry point: like :func:`execute_config_dict`
    but first installs a process-wide heartbeat hook that relays
    ``(label, sim_now, events, events_per_s, pending_events)`` tuples
    over ``hb_queue`` (a ``multiprocessing.Manager().Queue()`` — plain
    queues cannot cross a ``ProcessPoolExecutor.submit`` boundary)."""

    def hook(sim_now: int, events: int, events_per_s: float, pending: int) -> None:
        try:
            hb_queue.put((label, sim_now, events, events_per_s, pending))
        except Exception:
            pass  # a dead relay must never kill the run itself

    set_worker_heartbeat(hook, every_events)
    try:
        return execute_config_dict(payload)
    finally:
        set_worker_heartbeat(None)


def _synthetic_failure(config: ExperimentConfig, error: Exception) -> ExperimentResult:
    """A structured failure for errors *outside* the run itself
    (transport, a broken worker) — ``run_experiment`` already converts
    in-run crashes into ``result.failure``."""
    result = ExperimentResult(config=config, duration_ns=config.duration_ns)
    result.failure = RunFailure(
        error_type=type(error).__name__,
        error_message=str(error),
        seed=config.seed,
        fault_plan_path=config.fault_plan_path,
        bundle_path=None,
    )
    return result


class ResultCache:
    """On-disk map from a config's content hash to its serialized
    result. Entries are sharded by key prefix and written atomically
    (tmp file + rename) so concurrent batches can share a directory."""

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)

    def path_for(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[ExperimentResult]:
        """The cached result, or None on miss/corruption/schema skew."""
        try:
            text = self.path_for(key).read_text()
        except OSError:
            return None
        try:
            doc = json.loads(text)
            if doc.get("schema") != CONFIG_SCHEMA_VERSION or doc.get("key") != key:
                return None
            return ExperimentResult.from_dict(doc["result"])
        except (ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, result: ExperimentResult) -> str:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CONFIG_SCHEMA_VERSION,
            "key": key,
            "result": result.to_dict(),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True))
        os.replace(tmp, path)
        return str(path)


@dataclass
class BatchStats:
    """Counters for one ``run_batch`` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    failures: int = 0
    wall_s: float = 0.0

    def render(self) -> str:
        return (
            f"{self.total} runs: {self.executed} executed, "
            f"{self.cache_hits} cache hits, {self.cache_misses} cache misses, "
            f"{self.retries} retries, {self.failures} failures "
            f"in {self.wall_s:.1f}s"
        )


class ExperimentExecutor:
    """Maps config batches across a spawn-context process pool.

    ``jobs=1`` runs inline (no pool) through the same serialized
    transport, so results are identical whichever path executes them.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        retries: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressFn] = None,
        campaign: Optional[CampaignLog] = None,
        heartbeat_events: int = DEFAULT_HEARTBEAT_EVENTS,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if heartbeat_events < 1:
            raise ValueError("heartbeat_events must be >= 1")
        self.jobs = jobs
        self.retries = retries
        self.cache = ResultCache(cache_dir) if (cache_dir and use_cache) else None
        self.progress = progress
        self.campaign = campaign
        self.heartbeat_events = heartbeat_events
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.last_batch = BatchStats()
        self._progress_done = 0
        self._m_hits = self.metrics.counter(
            "executor_cache_hits_total", "batch items served from the result cache"
        )
        self._m_misses = self.metrics.counter(
            "executor_cache_misses_total", "cache lookups that fell through to execution"
        )
        self._m_retries = self.metrics.counter(
            "executor_retries_total", "failed runs re-executed under the retry policy"
        )
        self._m_runs = self.metrics.counter(
            "executor_runs_total", "completed batch items", ("outcome",)
        )

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_batch(
        self,
        configs: Sequence[ExperimentConfig],
        labels: Optional[Sequence[str]] = None,
    ) -> List[ExperimentResult]:
        """Run every config; results come back in input order no matter
        which worker finished first (order-independent assembly — the
        determinism contract the figures rely on)."""
        configs = list(configs)
        if labels is None:
            labels = [f"{c.variant}/seed{c.seed}" for c in configs]
        if len(labels) != len(configs):
            raise ValueError("labels must match configs one-to-one")
        started_wall = perf_counter()
        stats = self.last_batch = BatchStats(total=len(configs))
        self._progress_done = 0
        results: List[Optional[ExperimentResult]] = [None] * len(configs)
        keys = [self._cacheable_key(c) for c in configs]
        done = 0
        self._emit(
            "campaign_start",
            schema=CAMPAIGN_SCHEMA_VERSION,
            total=len(configs),
            jobs=self.jobs,
        )

        pending: List[int] = []
        for i, config in enumerate(configs):
            self._emit(
                "queued",
                run=labels[i],
                index=i,
                total=len(configs),
                variant=config.variant,
                seed=config.seed,
            )
            cached = self.cache.get(keys[i]) if keys[i] is not None else None
            if cached is not None:
                results[i] = cached
                stats.cache_hits += 1
                self._m_hits.inc(1)
                done += 1
                self._emit("cache_hit", run=labels[i], index=i)
                self._report(done, stats.total, labels[i], "cached")
                continue
            if keys[i] is not None:
                stats.cache_misses += 1
                self._m_misses.inc(1)
            pending.append(i)

        if pending:
            stats.executed += len(pending)
            if self.jobs == 1 or len(pending) == 1:
                for i in pending:
                    results[i] = self._run_inline(configs[i], labels[i], stats, done)
                    done += 1
                    self._finish_item(results[i], labels[i], done, stats)
            else:
                done = self._run_pool(configs, labels, pending, results, done, stats)

        for i in pending:
            if self.cache is not None and keys[i] is not None and results[i].ok:
                self.cache.put(keys[i], results[i])
        stats.wall_s = perf_counter() - started_wall
        self._emit("campaign_end", stats=asdict(stats))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cacheable_key(self, config: ExperimentConfig) -> Optional[str]:
        if self.cache is None:
            return None
        if config.obs is not None and config.obs.active:
            return None  # telemetry artifacts cannot be replayed from cache
        return config.cache_key()

    def _emit(self, event: str, **fields) -> None:
        if self.campaign is not None:
            self.campaign.emit(event, **fields)

    def _report(self, done: int, total: int, label: str, outcome: str) -> None:
        # Clamp to the high-water mark: retry reports and out-of-order
        # completion can hand in stale counts, but consumers see a
        # monotonically non-decreasing ``done``.
        if done > self._progress_done:
            self._progress_done = done
        if self.progress is not None:
            self.progress(self._progress_done, total, label, outcome)

    def _finish_item(
        self, result: ExperimentResult, label: str, done: int, stats: BatchStats
    ) -> None:
        if result.ok:
            self._m_runs.inc(1, outcome="ok")
            self._emit("finished", run=label, outcome="ok", sketches=result.sketches)
            self._report(done, stats.total, label, "ok")
        else:
            stats.failures += 1
            self._m_runs.inc(1, outcome="failed")
            self._emit(
                "failed",
                run=label,
                error_type=result.failure.error_type,
                error_message=result.failure.error_message,
            )
            self._report(done, stats.total, label, "failed")

    def _run_once(self, config: ExperimentConfig) -> ExperimentResult:
        try:
            return ExperimentResult.from_dict(execute_config_dict(config.to_dict()))
        except Exception as error:
            return _synthetic_failure(config, error)

    def _run_inline(
        self, config: ExperimentConfig, label: str, stats: BatchStats, done: int
    ) -> ExperimentResult:
        campaign = self.campaign
        if campaign is not None:
            # Inline runs heartbeat straight into the log — same hook,
            # no process boundary.
            def hook(sim_now: int, events: int, events_per_s: float, pending: int) -> None:
                campaign.emit(
                    "heartbeat",
                    run=label,
                    sim_now=sim_now,
                    events=events,
                    events_per_s=events_per_s,
                    pending_events=pending,
                )

            set_worker_heartbeat(hook, self.heartbeat_events)
        try:
            attempt = 1
            self._emit("started", run=label, attempt=attempt)
            result = self._run_once(config)
            for _attempt in range(self.retries):
                if result.ok:
                    break
                stats.retries += 1
                self._m_retries.inc(1)
                attempt += 1
                self._emit("retry", run=label, attempt=attempt)
                self._report(done, stats.total, label, "retry")
                self._emit("started", run=label, attempt=attempt)
                result = self._run_once(config)
            return result
        finally:
            if campaign is not None:
                set_worker_heartbeat(None)

    def _submit(self, pool, config: ExperimentConfig, label: str, hb_queue):
        if hb_queue is None:
            return pool.submit(execute_config_dict, config.to_dict())
        return pool.submit(
            execute_config_dict_hb,
            config.to_dict(),
            label,
            hb_queue,
            self.heartbeat_events,
        )

    def _drain_heartbeats(self, hb_queue) -> None:
        while True:
            try:
                label, sim_now, events, events_per_s, pending = hb_queue.get_nowait()
            except queue_mod.Empty:
                return
            except (EOFError, OSError):
                return  # manager went away mid-shutdown
            self._emit(
                "heartbeat",
                run=label,
                sim_now=sim_now,
                events=events,
                events_per_s=events_per_s,
                pending_events=pending,
            )

    def _run_pool(
        self,
        configs: List[ExperimentConfig],
        labels: Sequence[str],
        pending: List[int],
        results: List[Optional[ExperimentResult]],
        done: int,
        stats: BatchStats,
    ) -> int:
        ctx = multiprocessing.get_context("spawn")
        attempts_left = {i: self.retries for i in pending}
        attempts = {i: 1 for i in pending}
        manager = None
        hb_queue = None
        if self.campaign is not None:
            # Heartbeats cross the pool boundary through a managed
            # queue (picklable by proxy); drained between waits so the
            # live view updates while runs are still in flight.
            manager = ctx.Manager()
            hb_queue = manager.Queue()
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending)), mp_context=ctx
            ) as pool:
                futures = {}
                for i in pending:
                    futures[self._submit(pool, configs[i], labels[i], hb_queue)] = i
                    self._emit("started", run=labels[i], attempt=1)
                while futures:
                    if hb_queue is None:
                        finished, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                    else:
                        finished, _ = wait(
                            set(futures), timeout=0.2, return_when=FIRST_COMPLETED
                        )
                        # A worker's heartbeats are all enqueued (the
                        # manager put is synchronous) before its future
                        # resolves, so draining here keeps each run's
                        # heartbeats ahead of its finished event.
                        self._drain_heartbeats(hb_queue)
                    for fut in finished:
                        i = futures.pop(fut)
                        try:
                            result = ExperimentResult.from_dict(fut.result())
                        except Exception as error:
                            result = _synthetic_failure(configs[i], error)
                        if not result.ok and attempts_left[i] > 0:
                            attempts_left[i] -= 1
                            stats.retries += 1
                            self._m_retries.inc(1)
                            attempts[i] += 1
                            self._emit("retry", run=labels[i], attempt=attempts[i])
                            self._report(done, stats.total, labels[i], "retry")
                            try:
                                futures[
                                    self._submit(pool, configs[i], labels[i], hb_queue)
                                ] = i
                                self._emit(
                                    "started", run=labels[i], attempt=attempts[i]
                                )
                                continue
                            except Exception as error:  # pool already broken
                                result = _synthetic_failure(configs[i], error)
                        results[i] = result
                        done += 1
                        self._finish_item(result, labels[i], done, stats)
            if hb_queue is not None:
                self._drain_heartbeats(hb_queue)
        finally:
            if manager is not None:
                manager.shutdown()
        return done
