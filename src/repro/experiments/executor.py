"""Parallel experiment execution with deterministic result caching.

The paper averages "results across thousands of optical weeks" per
figure (§5); every figure and sweep is a batch of fully independent
seeded runs, so :class:`ExperimentExecutor` maps a list of
:class:`~repro.experiments.config.ExperimentConfig`\\ s across worker
processes and reassembles the results **in input order** — a parallel
batch is value-identical to the sequential loop it replaces.

Four layers:

* **Transport** — workers receive a config as its canonical dict
  (:meth:`ExperimentConfig.to_dict`) and return the result the same way
  (:meth:`ExperimentResult.to_dict`), so the pool is spawn-safe: no
  live simulator objects ever cross a process boundary, and the
  ``jobs=1`` inline path round-trips through the very same encoding to
  keep both paths bit-for-bit interchangeable.
* **Cache** — :class:`ResultCache` stores successful results on disk
  under ``sha256(canonical config JSON)``
  (:meth:`ExperimentConfig.cache_key`). Two configs share a key iff
  every simulation-affecting field matches (fault plan included;
  telemetry output paths excluded), so a warm cache replays a batch
  without executing a single simulation. Corrupt or stale-schema
  entries read as misses, never as errors; a failed *write* (ENOSPC, a
  read-only volume) is counted and traced but never crashes the batch.
  Runs with active telemetry bypass the cache entirely — their
  artifacts must actually be written.
* **Retry** — a bounded retry policy re-executes failed runs
  (``result.failure`` set, e.g. a watchdog wall-clock abort on a loaded
  machine) up to ``retries`` extra times, spaced by seeded
  exponential backoff with full jitter (:class:`BackoffPolicy`).
  Failures still standing after the last attempt come back as
  structured :class:`~repro.experiments.runner.RunFailure` results —
  callers decide whether a failed item degrades or aborts the batch.
  A run whose failure is *not* infrastructural (the simulation itself
  crashed every attempt) is additionally **quarantined**: marked in the
  campaign journal and checkpoint so a resumed campaign never
  resubmits it. Failed results are never cached.
* **Crash safety** — every terminal run event updates an atomically
  replaced checkpoint sidecar (``checkpoint_to``), results are cached
  write-through the moment a run finishes, and SIGINT/SIGTERM route
  through a graceful-shutdown path that drains heartbeats, flushes the
  checkpoint, emits a ``campaign_abort`` record, and raises
  :class:`CampaignAborted`. ``run_batch(resume_from=...)`` replays
  completed runs from the prior journal + cache and executes only the
  remainder — the resumed journal digests byte-identically to an
  uninterrupted run (see ``docs/robustness.md``).

Progress and cache-hit/miss/retry counters are surfaced through a
:class:`repro.obs.metrics.MetricsRegistry` (``executor_*`` families)
plus a per-batch :class:`BatchStats`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import queue as queue_mod
import signal
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.backoff import BackoffPolicy
from repro.experiments.checkpoint import (
    CampaignCheckpoint,
    ResumePlan,
    RunCheckpoint,
)
from repro.experiments.config import CONFIG_SCHEMA_VERSION, ExperimentConfig
from repro.experiments.runner import (
    ExperimentResult,
    RunFailure,
    run_experiment,
    set_worker_heartbeat,
)
from repro.obs.campaign import CAMPAIGN_SCHEMA_VERSION, CampaignLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracepoints import Tracepoint

#: (done, total, label, outcome) — outcome is "cached", "ok", "failed",
#: or "retry" (retry reports do not advance ``done``). ``done`` is
#: strictly monotonic non-decreasing across one batch.
ProgressFn = Callable[[int, int, str, str], None]

#: Default heartbeat cadence when a campaign log is attached: every
#: ~100k processed events a worker reports (sim_now, events, events/s,
#: heap size) — frequent enough to spot a wedged run within seconds,
#: rare enough to be invisible in the profile.
DEFAULT_HEARTBEAT_EVENTS = 100_000

#: Process-level probe (not simulator-attached — the executor runs in
#: wall time): fired once per result-cache write failure. Tests and
#: harnesses ``subscribe`` directly.
CACHE_WRITE_ERROR_TP = Tracepoint(
    "executor:cache_write_error",
    ("key", "error"),
    "result-cache write failed; the batch continues uncached",
)


class CampaignAborted(RuntimeError):
    """A batch was interrupted (SIGINT/SIGTERM) and shut down cleanly:
    pending work cancelled, heartbeats drained, checkpoint flushed, a
    ``campaign_abort`` record emitted. The CLI maps this to a distinct
    exit code so schedulers can tell an abort from a failure."""

    def __init__(self, reason: str, done: int, total: int) -> None:
        super().__init__(
            f"campaign aborted ({reason}): {done}/{total} runs complete"
        )
        self.reason = reason
        self.done = done
        self.total = total


class _ShutdownRequested(BaseException):
    """Internal: raised by the signal handlers installed around
    ``run_batch`` (BaseException so worker-error handling that catches
    ``Exception`` can never swallow a shutdown)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def execute_config_dict(payload: dict) -> dict:
    """Worker entry point (module-level so spawned processes can import
    it): canonical config dict in, canonical result dict out."""
    config = ExperimentConfig.from_dict(payload)
    return run_experiment(config).to_dict()


def execute_config_dict_hb(payload: dict, label: str, hb_queue, every_events: int) -> dict:
    """Heartbeating worker entry point: like :func:`execute_config_dict`
    but first installs a process-wide heartbeat hook that relays
    ``(label, sim_now, events, events_per_s, pending_events)`` tuples
    over ``hb_queue`` (a ``multiprocessing.Manager().Queue()`` — plain
    queues cannot cross a ``ProcessPoolExecutor.submit`` boundary)."""

    def hook(sim_now: int, events: int, events_per_s: float, pending: int) -> None:
        try:
            hb_queue.put((label, sim_now, events, events_per_s, pending))
        except Exception:
            pass  # a dead relay must never kill the run itself

    set_worker_heartbeat(hook, every_events)
    try:
        return execute_config_dict(payload)
    finally:
        set_worker_heartbeat(None)


def _synthetic_failure(config: ExperimentConfig, error: Exception) -> ExperimentResult:
    """A structured failure for errors *outside* the run itself
    (transport, a broken worker) — ``run_experiment`` already converts
    in-run crashes into ``result.failure``. Marked ``infrastructure``
    so resume resubmits instead of quarantining."""
    result = ExperimentResult(config=config, duration_ns=config.duration_ns)
    result.failure = RunFailure(
        error_type=type(error).__name__,
        error_message=str(error),
        seed=config.seed,
        fault_plan_path=config.fault_plan_path,
        bundle_path=None,
        infrastructure=True,
    )
    return result


class ResultCache:
    """On-disk map from a config's content hash to its serialized
    result. Entries are sharded by key prefix and written atomically
    (tmp file + rename) so concurrent batches can share a directory."""

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        self.write_errors = 0
        self.last_write_error: Optional[str] = None

    def path_for(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[ExperimentResult]:
        """The cached result, or None on miss/corruption/schema skew."""
        try:
            text = self.path_for(key).read_text()
        except OSError:
            return None
        try:
            doc = json.loads(text)
            if doc.get("schema") != CONFIG_SCHEMA_VERSION or doc.get("key") != key:
                return None
            return ExperimentResult.from_dict(doc["result"])
        except (ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, result: ExperimentResult) -> Optional[str]:
        """Store one result; returns the entry path, or None when the
        write failed (ENOSPC, permissions, …). A full disk must degrade
        a batch to "uncached", never crash it — the caller counts and
        traces the error and moves on."""
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            doc = {
                "schema": CONFIG_SCHEMA_VERSION,
                "key": key,
                "result": result.to_dict(),
            }
            tmp.write_text(json.dumps(doc, sort_keys=True))
            os.replace(tmp, path)
        except OSError as error:
            self.write_errors += 1
            self.last_write_error = f"{type(error).__name__}: {error}"
            try:  # a half-written tmp file must not leak
                tmp.unlink()
            except OSError:
                pass
            return None
        return str(path)


@dataclass
class BatchStats:
    """Counters for one ``run_batch`` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    failures: int = 0
    quarantined: int = 0
    broken_pools: int = 0
    wall_s: float = 0.0

    def render(self) -> str:
        extras = ""
        if self.quarantined:
            extras += f", {self.quarantined} quarantined"
        if self.broken_pools:
            extras += f", {self.broken_pools} broken pools"
        return (
            f"{self.total} runs: {self.executed} executed, "
            f"{self.cache_hits} cache hits, {self.cache_misses} cache misses, "
            f"{self.retries} retries, {self.failures} failures{extras} "
            f"in {self.wall_s:.1f}s"
        )


class ExperimentExecutor:
    """Maps config batches across a spawn-context process pool.

    ``jobs=1`` runs inline (no pool) through the same serialized
    transport, so results are identical whichever path executes them.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        retries: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressFn] = None,
        campaign: Optional[CampaignLog] = None,
        heartbeat_events: int = DEFAULT_HEARTBEAT_EVENTS,
        backoff: Optional[BackoffPolicy] = None,
        resume: Optional[ResumePlan] = None,
        checkpoint_to: Optional[str] = None,
        chaos=None,
        pool_rebuilds: int = 2,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if heartbeat_events < 1:
            raise ValueError("heartbeat_events must be >= 1")
        if pool_rebuilds < 0:
            raise ValueError("pool_rebuilds must be >= 0")
        self.jobs = jobs
        self.retries = retries
        self.cache = ResultCache(cache_dir) if (cache_dir and use_cache) else None
        self.progress = progress
        self.campaign = campaign
        self.heartbeat_events = heartbeat_events
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.resume = resume
        self.checkpoint_to = str(checkpoint_to) if checkpoint_to else None
        self.chaos = chaos
        self.pool_rebuilds = pool_rebuilds
        self._sleep = sleep
        self._clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.last_batch = BatchStats()
        self.last_replayed = 0
        self.last_fresh = 0
        self._progress_done = 0
        self._ckpt: Optional[CampaignCheckpoint] = None
        self._batch_labels: List[str] = []
        self._batch_keys: List[Optional[str]] = []
        self._batch_missed: set = set()
        self._m_hits = self.metrics.counter(
            "executor_cache_hits_total", "batch items served from the result cache"
        )
        self._m_misses = self.metrics.counter(
            "executor_cache_misses_total", "cache lookups that fell through to execution"
        )
        self._m_retries = self.metrics.counter(
            "executor_retries_total", "failed runs re-executed under the retry policy"
        )
        self._m_runs = self.metrics.counter(
            "executor_runs_total", "completed batch items", ("outcome",)
        )
        self._m_cache_write_errors = self.metrics.counter(
            "executor_cache_write_errors_total",
            "result-cache writes that failed (run continued uncached)",
        )
        self._m_backoff_s = self.metrics.counter(
            "executor_backoff_seconds_total",
            "seconds of retry backoff delay scheduled",
        )
        self._m_quarantined = self.metrics.counter(
            "executor_quarantined_total",
            "poison runs quarantined after failing every attempt",
        )
        self._m_pool_rebuilds = self.metrics.counter(
            "executor_pool_rebuilds_total",
            "worker pools rebuilt after breaking mid-batch",
        )

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_batch(
        self,
        configs: Sequence[ExperimentConfig],
        labels: Optional[Sequence[str]] = None,
        resume_from: Optional[ResumePlan] = None,
    ) -> List[ExperimentResult]:
        """Run every config; results come back in input order no matter
        which worker finished first (order-independent assembly — the
        determinism contract the figures rely on).

        With ``resume_from`` (or an executor-level ``resume`` plan),
        runs the prior campaign already completed are *replayed*: their
        journal records are re-emitted verbatim and their results come
        from the cache (or, for quarantined runs, from the recorded
        failure) — zero simulations re-execute for them, and the new
        journal digests byte-identically to an uninterrupted run.
        """
        configs = list(configs)
        if labels is None:
            labels = [f"{c.variant}/seed{c.seed}" for c in configs]
        if len(labels) != len(configs):
            raise ValueError("labels must match configs one-to-one")
        resume = resume_from if resume_from is not None else self.resume
        started_wall = perf_counter()
        stats = self.last_batch = BatchStats(total=len(configs))
        self._progress_done = 0
        self.last_replayed = 0
        self.last_fresh = 0
        results: List[Optional[ExperimentResult]] = [None] * len(configs)
        keys = [self._cacheable_key(c) for c in configs]
        self._batch_labels = list(labels)
        self._batch_keys = keys
        self._batch_missed = set()
        if self.checkpoint_to is not None:
            # The checkpoint is cumulative across batches in one log
            # (sweeps emit several campaign_start records): totals
            # accumulate exactly like campaign_summary's.
            if self._ckpt is None:
                self._ckpt = CampaignCheckpoint()
            self._ckpt.total += len(configs)
        replay = self._plan_replays(configs, labels, keys, resume)
        done = 0
        with self._signal_guard():
            try:
                self._emit(
                    "campaign_start",
                    schema=CAMPAIGN_SCHEMA_VERSION,
                    total=len(configs),
                    jobs=self.jobs,
                )
                if resume is not None:
                    self._emit(
                        "campaign_resume",
                        schema=CAMPAIGN_SCHEMA_VERSION,
                        total=len(configs),
                        replayed=len(replay),
                        remaining=len(configs) - len(replay),
                        jobs=self.jobs,
                    )
                pending: List[int] = []
                for i, config in enumerate(configs):
                    if i in replay:
                        done = self._replay_run(i, replay[i], resume, results, stats, done)
                        continue
                    queued = dict(
                        run=labels[i],
                        index=i,
                        total=len(configs),
                        variant=config.variant,
                        seed=config.seed,
                    )
                    cached = self.cache.get(keys[i]) if keys[i] is not None else None
                    if keys[i] is not None:
                        # The key and miss flag let a checkpoint be
                        # rebuilt from the journal alone.
                        queued["key"] = keys[i]
                        queued["cache_miss"] = cached is None
                    self._emit("queued", **queued)
                    if cached is not None:
                        results[i] = cached
                        stats.cache_hits += 1
                        self._m_hits.inc(1)
                        done += 1
                        self._emit("cache_hit", run=labels[i], index=i)
                        self._checkpoint_terminal(
                            i, "finished", attempts=0, retries=0,
                            cache_hit=True, outcome="ok",
                        )
                        self._report(done, stats.total, labels[i], "cached")
                        continue
                    if keys[i] is not None:
                        stats.cache_misses += 1
                        self._m_misses.inc(1)
                        self._batch_missed.add(i)
                    pending.append(i)

                if pending:
                    stats.executed += len(pending)
                    if self.jobs == 1 or len(pending) == 1:
                        for i in pending:
                            result, attempts = self._run_inline(
                                configs[i], labels[i], stats, done
                            )
                            results[i] = result
                            done += 1
                            self._finish_item(i, result, labels[i], done, stats, attempts)
                    else:
                        done = self._run_pool(configs, labels, pending, results, done, stats)
            except (KeyboardInterrupt, _ShutdownRequested) as error:
                reason = getattr(error, "reason", "SIGINT")
                if self._ckpt is not None and self.checkpoint_to is not None:
                    self._ckpt.save(self.checkpoint_to)
                stats.wall_s = perf_counter() - started_wall
                self._emit(
                    "campaign_abort",
                    reason=reason,
                    done=self._progress_done,
                    total=len(configs),
                )
                raise CampaignAborted(
                    reason, done=self._progress_done, total=len(configs)
                ) from error
        stats.wall_s = perf_counter() - started_wall
        self._emit("campaign_end", stats=asdict(stats))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cacheable_key(self, config: ExperimentConfig) -> Optional[str]:
        if self.cache is None:
            return None
        if config.obs is not None and config.obs.active:
            return None  # telemetry artifacts cannot be replayed from cache
        return config.cache_key()

    def _emit(self, event: str, **fields) -> None:
        if self.campaign is not None:
            self.campaign.emit(event, **fields)

    @contextmanager
    def _signal_guard(self):
        """Route SIGINT/SIGTERM into the graceful-shutdown path for the
        duration of a batch (main thread only; otherwise a no-op)."""
        if threading.current_thread() is not threading.main_thread():
            yield
            return
        previous: Dict[int, object] = {}

        def handler(signum, _frame):
            raise _ShutdownRequested(signal.Signals(signum).name)

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        try:
            yield
        finally:
            for sig, old in previous.items():
                try:
                    signal.signal(sig, old)
                except (ValueError, OSError):  # pragma: no cover
                    pass

    def _report(self, done: int, total: int, label: str, outcome: str) -> None:
        # Clamp to the high-water mark: retry reports and out-of-order
        # completion can hand in stale counts, but consumers see a
        # monotonically non-decreasing ``done``.
        if done > self._progress_done:
            self._progress_done = done
        if self.progress is not None:
            self.progress(self._progress_done, total, label, outcome)

    # -- resume ---------------------------------------------------------
    def _plan_replays(
        self,
        configs: List[ExperimentConfig],
        labels: Sequence[str],
        keys: List[Optional[str]],
        resume: Optional[ResumePlan],
    ) -> Dict[int, Tuple[RunCheckpoint, ExperimentResult]]:
        """Which batch indices can be replayed from the prior campaign,
        with the result each replay hands back. Everything else — runs
        the prior campaign never finished, infrastructure failures, and
        finished runs whose cached result is gone or whose config
        changed (key mismatch) — executes fresh."""
        replay: Dict[int, Tuple[RunCheckpoint, ExperimentResult]] = {}
        if resume is None:
            return replay
        for i, config in enumerate(configs):
            entry = resume.checkpoint.runs.get(labels[i])
            if entry is None or entry.state == "failed":
                continue  # unknown / in-flight / infrastructure: resubmit
            if entry.state == "quarantined":
                result = ExperimentResult(config=config, duration_ns=config.duration_ns)
                result.failure = RunFailure(
                    error_type=entry.error_type or "RunFailure",
                    error_message=entry.error_message or "",
                    seed=config.seed,
                    fault_plan_path=config.fault_plan_path,
                    bundle_path=None,
                )
                replay[i] = (entry, result)
                continue
            if keys[i] is None or entry.cache_key != keys[i]:
                continue
            cached = self.cache.get(keys[i]) if self.cache is not None else None
            if cached is None:
                continue
            replay[i] = (entry, cached)
        return replay

    def _replay_run(
        self,
        i: int,
        entry_result: Tuple[RunCheckpoint, ExperimentResult],
        resume: ResumePlan,
        results: List[Optional[ExperimentResult]],
        stats: BatchStats,
        done: int,
    ) -> int:
        """Re-emit one completed run's journal records verbatim (fresh
        seq/wall clock, ``replayed`` marker) and hand back its prior
        result. The per-run record sequence — and therefore the
        campaign summary — is indistinguishable from an uninterrupted
        run's."""
        entry, result = entry_result
        label = self._batch_labels[i]
        for record in resume.run_records(label):
            fields = {
                k: v
                for k, v in record.items()
                if k not in ("event", "seq", "wall_ms", "replayed")
            }
            self._emit(record["event"], replayed=True, **fields)
        results[i] = result
        if entry.cache_hit:
            stats.cache_hits += 1
            self._m_hits.inc(1)
        if entry.cache_miss:
            stats.cache_misses += 1
            self._m_misses.inc(1)
        if entry.executed:
            stats.executed += 1
        if entry.retries:
            stats.retries += entry.retries
            self._m_retries.inc(entry.retries)
        if entry.state in ("failed", "quarantined"):
            stats.failures += 1
            self._m_runs.inc(1, outcome="failed")
        else:
            self._m_runs.inc(1, outcome="ok")
        if entry.state == "quarantined":
            stats.quarantined += 1
            self._m_quarantined.inc(1)
        if self._ckpt is not None and self.checkpoint_to is not None:
            self._ckpt.record(entry)
            self._ckpt.save(self.checkpoint_to)
        done += 1
        self.last_replayed += 1
        self._report(done, stats.total, label, "cached" if result.ok else "failed")
        return done

    # -- terminal bookkeeping ------------------------------------------
    def _checkpoint_terminal(
        self,
        i: int,
        state: str,
        attempts: int,
        retries: int,
        *,
        cache_hit: bool = False,
        executed: bool = False,
        outcome: Optional[str] = None,
        error_type: Optional[str] = None,
        error_message: Optional[str] = None,
    ) -> None:
        if self._ckpt is None or self.checkpoint_to is None:
            return
        self._ckpt.record(
            RunCheckpoint(
                label=self._batch_labels[i],
                index=i,
                state=state,
                attempts=attempts,
                retries=retries,
                cache_key=self._batch_keys[i],
                cache_hit=cache_hit,
                cache_miss=i in self._batch_missed,
                executed=executed,
                outcome=outcome,
                error_type=error_type,
                error_message=error_message,
            )
        )
        self._ckpt.save(self.checkpoint_to)

    def _cache_put(self, i: int, result: ExperimentResult) -> None:
        """Write-through caching at run completion (not batch end), so
        a kill after a run's terminal record loses at most that one
        uncached result. Write errors degrade to uncached: counted,
        traced, never fatal."""
        key = self._batch_keys[i]
        if self.cache is None or key is None or not result.ok:
            return
        error: Optional[str] = None
        path: Optional[str] = None
        try:
            if self.chaos is not None:
                self.chaos.on_cache_put(key)  # may raise OSError/ENOSPC
            path = self.cache.put(key, result)
            if path is None:
                error = self.cache.last_write_error or "OSError"
        except OSError as exc:
            error = f"{type(exc).__name__}: {exc}"
        if error is not None:
            self._m_cache_write_errors.inc(1)
            if CACHE_WRITE_ERROR_TP.enabled:
                CACHE_WRITE_ERROR_TP.emit(0, key=key, error=error)
            return
        if self.chaos is not None:
            self.chaos.after_cache_put(key, path)

    def _finish_item(
        self,
        i: int,
        result: ExperimentResult,
        label: str,
        done: int,
        stats: BatchStats,
        attempts: int,
    ) -> None:
        self.last_fresh += 1
        retries = max(attempts - 1, 0)
        if result.ok:
            self._m_runs.inc(1, outcome="ok")
            self._emit("finished", run=label, outcome="ok", sketches=result.sketches)
            self._checkpoint_terminal(
                i, "finished", attempts, retries, executed=True, outcome="ok"
            )
            # Report before the cache write: the run is durably terminal
            # once checkpointed, and a multi-MB cache entry can take long
            # enough that an abort landing mid-write would undercount
            # ``done`` in the campaign_abort record.
            self._report(done, stats.total, label, "ok")
            self._cache_put(i, result)
            return
        stats.failures += 1
        self._m_runs.inc(1, outcome="failed")
        self._emit(
            "failed",
            run=label,
            error_type=result.failure.error_type,
            error_message=result.failure.error_message,
        )
        # The simulation itself failed every attempt: poison. Resume
        # must never resubmit it. Infrastructure casualties (broken
        # pool, transport) stay plain "failed" and are resubmitted.
        quarantine = not result.failure.infrastructure
        if quarantine:
            stats.quarantined += 1
            self._m_quarantined.inc(1)
            self._emit("quarantined", run=label, attempts=attempts)
        self._checkpoint_terminal(
            i,
            "quarantined" if quarantine else "failed",
            attempts,
            retries,
            executed=True,
            error_type=result.failure.error_type,
            error_message=result.failure.error_message,
        )
        self._report(done, stats.total, label, "failed")

    # -- backoff --------------------------------------------------------
    def _backoff_delay(self, label: str, retry_n: int) -> float:
        """The (seeded, full-jitter) delay before retry ``retry_n``;
        accounted in the backoff metric. 0.0 when no policy applies."""
        if self.backoff is None or retry_n < 1:
            return 0.0
        delay = self.backoff.delay_s(label, retry_n)
        if delay > 0:
            self._m_backoff_s.inc(delay)
        return delay

    # -- execution paths ------------------------------------------------
    def _run_once(self, config: ExperimentConfig) -> ExperimentResult:
        try:
            return ExperimentResult.from_dict(execute_config_dict(config.to_dict()))
        except Exception as error:
            return _synthetic_failure(config, error)

    def _run_inline(
        self, config: ExperimentConfig, label: str, stats: BatchStats, done: int
    ) -> Tuple[ExperimentResult, int]:
        campaign = self.campaign
        if campaign is not None:
            # Inline runs heartbeat straight into the log — same hook,
            # no process boundary.
            def hook(sim_now: int, events: int, events_per_s: float, pending: int) -> None:
                campaign.emit(
                    "heartbeat",
                    run=label,
                    sim_now=sim_now,
                    events=events,
                    events_per_s=events_per_s,
                    pending_events=pending,
                )

            set_worker_heartbeat(hook, self.heartbeat_events)
        try:
            attempt = 1
            self._emit("started", run=label, attempt=attempt)
            result = self._run_once(config)
            for _attempt in range(self.retries):
                if result.ok:
                    break
                stats.retries += 1
                self._m_retries.inc(1)
                attempt += 1
                self._emit("retry", run=label, attempt=attempt)
                self._report(done, stats.total, label, "retry")
                delay = self._backoff_delay(label, attempt - 1)
                if delay > 0:
                    self._sleep(delay)
                self._emit("started", run=label, attempt=attempt)
                result = self._run_once(config)
            return result, attempt
        finally:
            if campaign is not None:
                set_worker_heartbeat(None)

    def _submit(self, pool, config: ExperimentConfig, label: str, attempt: int, hb_queue):
        directive = None
        if self.chaos is not None:
            directive = self.chaos.worker_directive(label, attempt)
        if directive is not None:
            from repro.faults.executor_chaos import execute_config_dict_chaos

            return pool.submit(
                execute_config_dict_chaos,
                config.to_dict(),
                label,
                hb_queue,
                self.heartbeat_events,
                directive,
            )
        if hb_queue is None:
            return pool.submit(execute_config_dict, config.to_dict())
        return pool.submit(
            execute_config_dict_hb,
            config.to_dict(),
            label,
            hb_queue,
            self.heartbeat_events,
        )

    def _drain_heartbeats(self, hb_queue) -> None:
        while True:
            try:
                label, sim_now, events, events_per_s, pending = hb_queue.get_nowait()
            except queue_mod.Empty:
                return
            except (EOFError, OSError):
                return  # manager went away mid-shutdown
            self._emit(
                "heartbeat",
                run=label,
                sim_now=sim_now,
                events=events,
                events_per_s=events_per_s,
                pending_events=pending,
            )

    def _run_pool(
        self,
        configs: List[ExperimentConfig],
        labels: Sequence[str],
        pending: List[int],
        results: List[Optional[ExperimentResult]],
        done: int,
        stats: BatchStats,
    ) -> int:
        ctx = multiprocessing.get_context("spawn")
        attempts_left = {i: self.retries for i in pending}
        attempts = {i: 1 for i in pending}
        manager = None
        hb_queue = None
        if self.campaign is not None:
            # Heartbeats cross the pool boundary through a managed
            # queue (picklable by proxy); drained between waits so the
            # live view updates while runs are still in flight.
            manager = ctx.Manager()
            hb_queue = manager.Queue()
        max_workers = min(self.jobs, len(pending))
        pool = ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)
        futures: Dict = {}
        # (ready_at, index): initial submissions (ready now) and retry
        # resubmissions waiting out their backoff window.
        deferred: List[Tuple[float, int]] = [(0.0, i) for i in pending]
        rebuilds_left = self.pool_rebuilds

        def settle(i: int, result: ExperimentResult) -> None:
            nonlocal done
            if not result.ok and attempts_left[i] > 0:
                attempts_left[i] -= 1
                stats.retries += 1
                self._m_retries.inc(1)
                attempts[i] += 1
                self._emit("retry", run=labels[i], attempt=attempts[i])
                self._report(done, stats.total, labels[i], "retry")
                delay = self._backoff_delay(labels[i], attempts[i] - 1)
                deferred.append((self._clock() + delay, i))
                return
            results[i] = result
            done += 1
            self._finish_item(i, result, labels[i], done, stats, attempts[i])

        def submit_one(i: int) -> None:
            if self.chaos is not None:
                self.chaos.on_submit(labels[i], attempts[i])  # may raise
            futures[self._submit(pool, configs[i], labels[i], attempts[i], hb_queue)] = i
            self._emit("started", run=labels[i], attempt=attempts[i])

        def handle_broken(error: BaseException, casualties: List[int]) -> None:
            # A dead child poisons the whole pool: every in-flight run
            # is a casualty. Each consumes an attempt (retried on a
            # fresh pool, with backoff); when the rebuild budget is
            # spent the casualties surface as infrastructure failures.
            nonlocal pool, rebuilds_left
            stats.broken_pools += 1
            if hb_queue is not None:
                self._drain_heartbeats(hb_queue)
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            if rebuilds_left > 0:
                rebuilds_left -= 1
                pool = ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)
                self._m_pool_rebuilds.inc(1)
            else:
                for i in casualties:
                    attempts_left[i] = 0
            for i in sorted(casualties):
                settle(i, _synthetic_failure(configs[i], error))

        try:
            while futures or deferred:
                now = self._clock()
                ready = sorted(item for item in deferred if item[0] <= now)
                deferred = [item for item in deferred if item[0] > now]
                for _ready_at, i in ready:
                    try:
                        submit_one(i)
                    except BrokenExecutor as error:
                        casualties = [i] + list(futures.values())
                        futures.clear()
                        handle_broken(error, casualties)
                    except Exception as error:
                        settle(i, _synthetic_failure(configs[i], error))
                if not futures:
                    if deferred:  # everything is waiting out a backoff
                        next_at = min(item[0] for item in deferred)
                        self._sleep(max(0.0, min(next_at - self._clock(), 0.2)))
                    continue
                timeout = 0.2 if (hb_queue is not None or deferred) else None
                finished, _ = wait(
                    set(futures), timeout=timeout, return_when=FIRST_COMPLETED
                )
                if hb_queue is not None:
                    # A worker's heartbeats are all enqueued (the
                    # manager put is synchronous) before its future
                    # resolves, so draining here keeps each run's
                    # heartbeats ahead of its finished event.
                    self._drain_heartbeats(hb_queue)
                broken: Optional[Tuple[BaseException, int]] = None
                for fut in finished:
                    i = futures.pop(fut)
                    try:
                        result = ExperimentResult.from_dict(fut.result())
                    except BrokenExecutor as error:
                        broken = (error, i)
                        break
                    except Exception as error:
                        result = _synthetic_failure(configs[i], error)
                    settle(i, result)
                if broken is not None:
                    error, first = broken
                    casualties = [first] + list(futures.values())
                    futures.clear()
                    handle_broken(error, casualties)
            pool.shutdown(wait=True)
            if hb_queue is not None:
                self._drain_heartbeats(hb_queue)
        except BaseException:
            # Graceful shutdown (or an unexpected error): stop feeding
            # the pool, cancel what never started, put workers down,
            # and drain the heartbeat queue so every relayed beat lands
            # in the journal before the campaign_abort record.
            for fut in futures:
                fut.cancel()
            procs = list((getattr(pool, "_processes", None) or {}).values())
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            for proc in procs:
                try:
                    proc.terminate()
                except Exception:
                    pass
            if hb_queue is not None:
                self._drain_heartbeats(hb_queue)
            raise
        finally:
            if manager is not None:
                manager.shutdown()
        return done
