"""Text rendering of figure data — the rows/series the paper reports.

Benchmarks print these tables so a run of ``pytest benchmarks/``
regenerates every figure as text; EXPERIMENTS.md records them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.figures import FigureData
from repro.metrics.cdf import quantile
from repro.metrics.seqgraph import step_interpolate
from repro.obs.campaign import campaign_summary
from repro.obs.sketch import PERCENTILE_LABELS, QuantileSketch
from repro.units import to_usec


def render_series_table(
    data: FigureData,
    curves: Dict[str, Tuple[np.ndarray, np.ndarray]],
    value_label: str,
    scale: float = 1.0,
    points: int = 12,
    include_references: bool = False,
) -> str:
    """One row per sampled time, one column per variant.

    Rows are anchored to a base time grid (sampled from the first
    non-empty column) and every other column is step-interpolated onto
    that grid — columns with different sample times or lengths line up
    on real timestamps instead of raw row indices.
    """
    columns: List[Tuple[str, Tuple[np.ndarray, np.ndarray]]] = []
    if include_references and data.optimal is not None:
        columns.append(("optimal", data.optimal))
    columns.extend(sorted(curves.items()))
    if include_references and data.packet_only is not None:
        columns.append(("packet-only", data.packet_only))
    if not columns:
        return "(no series)"
    grid_ns = np.asarray([], dtype=np.int64)
    for _name, (times, _values) in columns:
        if len(times) > 0:
            idx = np.linspace(0, len(times) - 1, points).astype(int)
            grid_ns = np.asarray(times, dtype=np.int64)[idx]
            break
    resampled: Dict[str, np.ndarray] = {}
    for name, (times, values) in columns:
        times = np.asarray(times)
        values = np.asarray(values, dtype=float)
        initial = float(values[0]) if len(values) else float("nan")
        resampled[name] = step_interpolate(times, values, grid_ns, initial=initial)
    names = [name for name, _ in columns]
    header = f"{'time(us)':>10} " + " ".join(f"{n:>12}" for n in names)
    lines = [f"[{data.name}] {value_label}", header]
    for row in range(len(grid_ns)):
        cells = [f"{resampled[name][row] * scale:12.2f}" for name in names]
        lines.append(f"{to_usec(int(grid_ns[row])):10.1f} " + " ".join(cells))
    return "\n".join(lines)


def render_seq_graph(data: FigureData, points: int = 12) -> str:
    """Sequence-number graph as text (bytes in MB)."""
    return render_series_table(
        data, data.seq_curves, "sequence progress (MB)", scale=1e-6,
        points=points, include_references=True,
    )


def render_voq_graph(data: FigureData, points: int = 12, jumbo_equivalent: bool = True) -> str:
    """VOQ occupancy over time. With ``jumbo_equivalent`` the counts are
    divided by 6 so the axis matches the paper's jumbo-frame units."""
    scale = 1.0 / 6.0 if jumbo_equivalent else 1.0
    label = "VOQ length (jumbo-frame equivalents)" if jumbo_equivalent else "VOQ length (packets)"
    return render_series_table(data, data.voq_curves, label, scale=scale, points=points)


def render_throughput_summary(data: FigureData, baseline: str = "cubic") -> str:
    lines = [f"[{data.name}] steady-state throughput"]
    base = data.throughputs_gbps.get(baseline)
    optimal_rate = None
    if data.optimal is not None:
        times, values = data.optimal
        optimal_rate = values[-1] * 8 / (times[-1] / 1e9) / 1e9 if times[-1] > 0 else None
    for variant in sorted(data.throughputs_gbps, key=data.throughputs_gbps.get, reverse=True):
        thr = data.throughputs_gbps[variant]
        rel = f" ({(thr / base - 1) * +100:+.0f}% vs {baseline})" if base else ""
        lines.append(f"  {variant:<12} {thr:6.2f} Gbps{rel}")
    if optimal_rate:
        lines.append(f"  {'optimal':<12} {optimal_rate:6.2f} Gbps (analytic)")
    return "\n".join(lines)


def render_cdf_summary(
    name: str,
    per_day: Dict[str, Sequence[int]],
    quantiles: Iterable[float] = (0.5, 0.9, 0.99, 1.0),
) -> str:
    """Figure-10-style distribution summary of per-day counts."""
    qs = list(quantiles)
    header = f"{'variant':<10} " + " ".join(f"{'p' + str(int(q * 100)):>5}" for q in qs) + "  zero-days"
    lines = [f"[{name}] per-optical-day distribution", header]
    for variant, samples in sorted(per_day.items()):
        cells = " ".join(f"{quantile(samples, q):5.0f}" for q in qs)
        zero = sum(1 for s in samples if s == 0) / len(samples) if len(samples) else 0.0
        lines.append(f"{variant:<10} {cells}  {zero * 100:8.0f}%")
    return "\n".join(lines)


def figure_to_csv(data: FigureData, directory) -> List[str]:
    """Write a figure's series as CSV files (one per series family);
    returns the paths written. For plotting outside this package."""
    import csv
    import pathlib

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[str] = []

    def dump(name: str, curves: Dict[str, Tuple[np.ndarray, np.ndarray]], extra=None):
        if not curves and not extra:
            return
        path = directory / f"{data.name}_{name}.csv"
        columns = dict(curves)
        if extra:
            columns.update(extra)
        names = sorted(columns)
        grids = {n: columns[n] for n in names}
        length = max(len(g[0]) for g in grids.values())
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            header = []
            for n in names:
                header.extend([f"{n}_time_ns", f"{n}_value"])
            writer.writerow(header)
            for i in range(length):
                row = []
                for n in names:
                    times, values = grids[n]
                    if i < len(times):
                        row.extend([int(times[i]), float(values[i])])
                    else:
                        row.extend(["", ""])
                writer.writerow(row)
        written.append(str(path))

    refs = {}
    if data.optimal is not None:
        refs["optimal"] = data.optimal
    if data.packet_only is not None:
        refs["packet_only"] = data.packet_only
    dump("seq", data.seq_curves, extra=refs)
    dump("voq", data.voq_curves)
    if data.throughputs_gbps:
        path = directory / f"{data.name}_throughput.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["variant", "gbps"])
            for variant, thr in sorted(data.throughputs_gbps.items()):
                writer.writerow([variant, thr])
        written.append(str(path))
    return written


def sweep_to_csv(result, directory) -> List[str]:
    """Write a :class:`SweepResult` as one long-format CSV (setting,
    variant, throughput, retransmissions, rtos, status); returns the
    paths written. Failed points carry an empty throughput cell and
    status ``failed`` — never a fake zero."""
    import csv
    import pathlib

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.name}_points.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["setting", "variant", "throughput_gbps", "retransmissions", "rtos", "status"]
        )
        for point in result.points:
            writer.writerow([
                point.label,
                point.variant,
                f"{point.throughput_gbps:.6f}" if point.ok else "",
                point.retransmissions,
                point.rtos,
                "ok" if point.ok else "failed",
            ])
    return [str(path)]


def render_slowdown_figure(data) -> str:
    """Text view of a :class:`SlowdownFigure`: one block per percentile
    label, loads down, variants across (NaN cells print as ``-``)."""
    lines = [f"[{data.name}] FCT slowdown vs offered load ({', '.join(data.variants)})"]
    labels = sorted({label for curves in data.curves.values() for label in curves})
    for label in labels:
        lines.append(f"  slowdown {label}:")
        header = f"{'load':>8} " + " ".join(f"{v:>10}" for v in data.variants)
        lines.append("  " + header)
        for row, load in enumerate(data.loads):
            cells = []
            for variant in data.variants:
                value = data.curves.get(variant, {}).get(label)
                cell = value[row] if value is not None and row < len(value) else float("nan")
                cells.append(f"{cell:10.2f}" if cell == cell else f"{'-':>10}")
            lines.append(f"  {load:8.2f} " + " ".join(cells))
    if data.failures:
        for cell, failure in sorted(data.failures.items()):
            lines.append(f"  [{cell}] {failure.render()}")
    return "\n".join(lines)


def load_sweep_to_csv(result, directory) -> List[str]:
    """Write a :class:`LoadSweepResult` as one long-format CSV: one row
    per (load, variant) with counts, loads, and the slowdown/FCT
    percentiles. Failed cells carry empty measurement columns and
    status ``failed`` — never fake zeros."""
    import csv
    import pathlib

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.name}_points.csv"
    labels = [label for label, _q in PERCENTILE_LABELS]
    header = (
        ["load", "variant", "offered_load", "achieved_load", "started",
         "completed", "truncated", "completion_rate"]
        + [f"slowdown_{label}" for label in labels]
        + [f"fct_us_{label}" for label in labels]
        + ["status"]
    )

    def fmt(value) -> str:
        return "" if value is None else f"{value:.6g}"

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for point in result.points:
            if not point.ok:
                writer.writerow(
                    [f"{point.load:.4f}", point.variant] + [""] * (len(header) - 3)
                    + ["failed"]
                )
                continue
            writer.writerow(
                [f"{point.load:.4f}", point.variant,
                 f"{point.load:.6g}", fmt(point.achieved_load),
                 point.started, point.completed, point.truncated,
                 f"{point.completion_rate:.6g}"]
                + [fmt(point.percentile("slowdown", label)) for label in labels]
                + [fmt(point.percentile("fct_us", label)) for label in labels]
                + ["ok"]
            )
    return [str(path)]


def fct_cdf_to_csv(result, directory, sketch: str = "fct_us") -> List[str]:
    """Write a :class:`LoadSweepResult`'s FCT CDFs as one long-format
    CSV: ``(load, variant, value, cum_probability)`` rows decoded from
    each cell's serialized DDSketch state via
    :meth:`QuantileSketch.cdf_points` — one row per occupied bucket,
    within relative error ``alpha`` of the exact empirical CDF at
    constant memory. Failed cells and cells without the family are
    skipped (their absence marks them); returns the paths written."""
    import csv
    import pathlib

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.name}_{sketch}_cdf.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["load", "variant", "value", "cum_probability"])
        for point in result.points:
            if not point.ok:
                continue
            state = point.sketches.get(sketch)
            if not state:
                continue
            for value, prob in QuantileSketch.from_dict(state).cdf_points():
                writer.writerow(
                    [f"{point.load:.4f}", point.variant,
                     f"{value:.6g}", f"{prob:.6g}"]
                )
    return [str(path)]


def headline_claims(data: FigureData) -> Dict[str, float]:
    """The abstract's numbers from a Figure-7 run: TDTCP vs CUBIC/DCTCP
    (paper: +24%), vs MPTCP (paper: +41%), vs reTCP-dyn (paper: parity)."""
    thr = data.throughputs_gbps

    def gain(a: str, b: str) -> Optional[float]:
        if a in thr and b in thr and thr[b] > 0:
            return (thr[a] / thr[b] - 1.0) * 100.0
        return None

    claims = {}
    for other in ("cubic", "dctcp", "mptcp", "retcp", "retcpdyn"):
        value = gain("tdtcp", other)
        if value is not None:
            claims[f"tdtcp_vs_{other}_pct"] = value
    return claims


# ----------------------------------------------------------------------
# Campaign dashboard (repro.obs.campaign JSONL -> markdown / HTML)
# ----------------------------------------------------------------------

def merge_campaign_sketches(
    records: Sequence[dict],
) -> Dict[str, Dict[str, QuantileSketch]]:
    """sketch name -> variant -> exact merge of every finished run's
    sketch (bucket counts are integers, so per-variant percentiles are
    independent of run completion order)."""
    variant_of: Dict[str, str] = {}
    merged: Dict[str, Dict[str, QuantileSketch]] = {}
    for record in records:
        if record.get("event") == "queued":
            variant_of[record["run"]] = str(record.get("variant", "?"))
    for record in records:
        if record.get("event") != "finished":
            continue
        variant = variant_of.get(record.get("run"), "?")
        for name, state in (record.get("sketches") or {}).items():
            per_variant = merged.setdefault(name, {})
            sketch = QuantileSketch.from_dict(state)
            if variant in per_variant:
                per_variant[variant].merge(sketch)
            else:
                per_variant[variant] = sketch
    return merged


def _campaign_timeline(records: Sequence[dict]) -> List[dict]:
    """Per-run wall-clock timeline rows (input order by queue index)."""
    rows: Dict[str, dict] = {}
    for record in records:
        event = record.get("event")
        label = record.get("run")
        if not label:
            continue
        row = rows.setdefault(
            label,
            {"run": label, "index": None, "variant": "?", "seed": None,
             "state": "queued", "attempts": 0, "retries": 0, "heartbeats": 0,
             "queued_ms": None, "started_ms": None, "ended_ms": None,
             "error": None},
        )
        if event == "queued":
            row["index"] = record.get("index")
            row["variant"] = record.get("variant", "?")
            row["seed"] = record.get("seed")
            row["queued_ms"] = record.get("wall_ms")
        elif event == "started":
            row["attempts"] += 1
            row["state"] = "running"
            if row["started_ms"] is None:
                row["started_ms"] = record.get("wall_ms")
        elif event == "retry":
            row["retries"] += 1
        elif event == "heartbeat":
            row["heartbeats"] += 1
        elif event == "cache_hit":
            row["state"] = "cached"
            row["ended_ms"] = record.get("wall_ms")
        elif event == "finished":
            row["state"] = "finished"
            row["ended_ms"] = record.get("wall_ms")
        elif event == "failed":
            row["state"] = "failed"
            row["ended_ms"] = record.get("wall_ms")
            row["error"] = f"{record.get('error_type')}: {record.get('error_message')}"
        elif event == "quarantined":
            row["state"] = "quarantined"
        if record.get("replayed"):
            row["replayed"] = True
    ordered = sorted(
        rows.values(), key=lambda r: (r["index"] is None, r["index"], r["run"])
    )
    return ordered


def _fmt(value, scale: float = 1.0, digits: int = 4) -> str:
    if value is None:
        return "-"
    return f"{value * scale:.{digits}g}"


def render_campaign(records: Sequence[dict]) -> str:
    """Markdown dashboard of a campaign JSONL stream: headline counts,
    per-variant sketch percentiles, the run timeline, and the
    failure/retry table."""
    summary = campaign_summary(records)
    timeline = _campaign_timeline(records)
    states: Dict[str, int] = {}
    for row in timeline:
        states[row["state"]] = states.get(row["state"], 0) + 1
    lines = ["# Campaign report", ""]
    lines.append(
        f"**{summary['total']} runs** — "
        + ", ".join(f"{count} {state}" for state, count in sorted(states.items()))
    )
    if summary["stats"]:
        stats = summary["stats"]
        lines.append(
            f"executed {stats.get('executed', 0)}, cache hits "
            f"{stats.get('cache_hits', 0)}, cache misses {stats.get('cache_misses', 0)}, "
            f"retries {stats.get('retries', 0)}, failures {stats.get('failures', 0)}"
        )
    heartbeat_total = summary["event_counts"].get("heartbeat", 0)
    lines.append(f"heartbeats observed: {heartbeat_total}")
    # Resume/abort records are meta (excluded from the deterministic
    # summary) but headline news for a human reader.
    for record in records:
        if record.get("event") == "campaign_resume":
            lines.append(
                f"**resumed**: {record.get('replayed', 0)} runs replayed from the "
                f"prior journal, {record.get('remaining', 0)} executed fresh"
            )
        elif record.get("event") == "campaign_abort":
            lines.append(
                f"**aborted** ({record.get('reason', '?')}) at "
                f"{record.get('done', 0)}/{record.get('total', 0)} runs — "
                f"resumable via --resume"
            )
    replayed_rows = sum(1 for row in timeline if row.get("replayed"))
    if replayed_rows:
        lines.append(f"replayed run records: {replayed_rows}")
    lines.append("")

    merged = merge_campaign_sketches(records)
    if merged:
        lines.append("## Percentiles (sketches merged per variant)")
        lines.append("")
        header = "| sketch | variant | count | " + " | ".join(
            label for label, _q in PERCENTILE_LABELS
        ) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (3 + len(PERCENTILE_LABELS)))
        for name in sorted(merged):
            for variant in sorted(merged[name]):
                sketch = merged[name][variant]
                cells = " | ".join(
                    _fmt(sketch.quantile(q)) for _label, q in PERCENTILE_LABELS
                )
                lines.append(
                    f"| {name} | {variant} | {sketch.count} | {cells} |"
                )
        lines.append("")

    if timeline:
        lines.append("## Run timeline")
        lines.append("")
        lines.append(
            "| # | run | variant | seed | state | attempts | heartbeats "
            "| started (s) | ended (s) | duration (s) |"
        )
        lines.append("|" + "---|" * 10)
        for row in timeline:
            started = row["started_ms"]
            ended = row["ended_ms"]
            duration = (
                (ended - started) / 1000.0
                if started is not None and ended is not None
                else None
            )
            lines.append(
                f"| {row['index'] if row['index'] is not None else '-'} "
                f"| {row['run']} | {row['variant']} | {row['seed']} "
                f"| {row['state']} | {row['attempts']} | {row['heartbeats']} "
                f"| {_fmt(started, 1e-3)} | {_fmt(ended, 1e-3)} | {_fmt(duration)} |"
            )
        lines.append("")

    troubled = [
        r for r in timeline
        if r["retries"] or r["state"] in ("failed", "quarantined")
    ]
    lines.append("## Failures & retries")
    lines.append("")
    if troubled:
        lines.append("| run | state | retries | error |")
        lines.append("|" + "---|" * 4)
        for row in troubled:
            lines.append(
                f"| {row['run']} | {row['state']} | {row['retries']} "
                f"| {row['error'] or '-'} |"
            )
    else:
        lines.append("none — every run completed on its first attempt.")
    lines.append("")
    return "\n".join(lines)


_CAMPAIGN_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em; color: #1c2733; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #cdd5de; padding: 4px 10px; text-align: right; }
th { background: #eef2f6; }
td:first-child, th:first-child, td.l, th.l { text-align: left; }
.state-finished { color: #19722e; } .state-cached { color: #555; }
.state-failed { color: #a31515; font-weight: bold; }
.state-quarantined { color: #8a4b00; font-weight: bold; }
.banner-abort { color: #a31515; font-weight: bold; }
.banner-resume { color: #19722e; }
.bar { background: #4a90d9; height: 10px; display: inline-block; }
"""


def render_campaign_html(records: Sequence[dict], title: str = "Campaign report") -> str:
    """Self-contained static HTML dashboard of a campaign stream —
    the same content as :func:`render_campaign` plus wall-clock
    timeline bars. No external assets (CI uploads it as an artifact)."""
    import html as html_mod

    esc = html_mod.escape
    summary = campaign_summary(records)
    timeline = _campaign_timeline(records)
    merged = merge_campaign_sketches(records)
    end_ms = max(
        (row["ended_ms"] for row in timeline if row["ended_ms"] is not None),
        default=0.0,
    ) or 1.0

    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{esc(title)}</title><style>{_CAMPAIGN_CSS}</style></head><body>",
        f"<h1>{esc(title)}</h1>",
        f"<p><b>{summary['total']} runs</b>, "
        f"{summary['event_counts'].get('heartbeat', 0)} heartbeats observed.</p>",
    ]
    for record in records:
        if record.get("event") == "campaign_resume":
            parts.append(
                f"<p class='banner-resume'>resumed: {record.get('replayed', 0)} runs "
                f"replayed from the prior journal, {record.get('remaining', 0)} "
                f"executed fresh</p>"
            )
        elif record.get("event") == "campaign_abort":
            parts.append(
                f"<p class='banner-abort'>aborted ({esc(str(record.get('reason', '?')))}) "
                f"at {record.get('done', 0)}/{record.get('total', 0)} runs — "
                f"resumable via --resume</p>"
            )
    if summary["stats"]:
        stats = summary["stats"]
        parts.append(
            "<p>executed {executed}, cache hits {cache_hits}, cache misses "
            "{cache_misses}, retries {retries}, failures {failures}</p>".format(
                executed=stats.get("executed", 0),
                cache_hits=stats.get("cache_hits", 0),
                cache_misses=stats.get("cache_misses", 0),
                retries=stats.get("retries", 0),
                failures=stats.get("failures", 0),
            )
        )
    if merged:
        parts.append("<h2>Percentiles (sketches merged per variant)</h2><table>")
        parts.append(
            "<tr><th class='l'>sketch</th><th class='l'>variant</th><th>count</th>"
            + "".join(f"<th>{label}</th>" for label, _q in PERCENTILE_LABELS)
            + "</tr>"
        )
        for name in sorted(merged):
            for variant in sorted(merged[name]):
                sketch = merged[name][variant]
                cells = "".join(
                    f"<td>{_fmt(sketch.quantile(q))}</td>"
                    for _label, q in PERCENTILE_LABELS
                )
                parts.append(
                    f"<tr><td class='l'>{esc(name)}</td><td class='l'>{esc(variant)}</td>"
                    f"<td>{sketch.count}</td>{cells}</tr>"
                )
        parts.append("</table>")
    if timeline:
        parts.append("<h2>Run timeline</h2><table>")
        parts.append(
            "<tr><th>#</th><th class='l'>run</th><th class='l'>variant</th>"
            "<th>seed</th><th class='l'>state</th><th>attempts</th>"
            "<th>heartbeats</th><th>duration (s)</th><th class='l'>timeline</th></tr>"
        )
        for row in timeline:
            started = row["started_ms"] if row["started_ms"] is not None else row["queued_ms"]
            ended = row["ended_ms"]
            duration = (
                (ended - started) / 1000.0
                if started is not None and ended is not None
                else None
            )
            if started is not None and ended is not None:
                left = 100.0 * started / end_ms
                width = max(100.0 * (ended - started) / end_ms, 0.5)
                bar = (
                    f"<div style='width:240px'><span class='bar' "
                    f"title='{_fmt(duration)}s' "
                    f"style='margin-left:{left * 2.4:.0f}px;width:{width * 2.4:.0f}px'>"
                    f"</span></div>"
                )
            else:
                bar = ""
            parts.append(
                f"<tr><td>{row['index'] if row['index'] is not None else '-'}</td>"
                f"<td class='l'>{esc(row['run'])}</td><td class='l'>{esc(row['variant'])}</td>"
                f"<td>{row['seed']}</td>"
                f"<td class='l state-{esc(row['state'])}'>{esc(row['state'])}</td>"
                f"<td>{row['attempts']}</td><td>{row['heartbeats']}</td>"
                f"<td>{_fmt(duration)}</td><td class='l'>{bar}</td></tr>"
            )
        parts.append("</table>")
    troubled = [
        r for r in timeline
        if r["retries"] or r["state"] in ("failed", "quarantined")
    ]
    parts.append("<h2>Failures &amp; retries</h2>")
    if troubled:
        parts.append(
            "<table><tr><th class='l'>run</th><th class='l'>state</th>"
            "<th>retries</th><th class='l'>error</th></tr>"
        )
        for row in troubled:
            parts.append(
                f"<tr><td class='l'>{esc(row['run'])}</td>"
                f"<td class='l state-{esc(row['state'])}'>{esc(row['state'])}</td>"
                f"<td>{row['retries']}</td><td class='l'>{esc(row['error'] or '-')}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p>none — every run completed on its first attempt.</p>")
    parts.append("</body></html>")
    return "".join(parts)


def render_headline_claims(data: FigureData) -> str:
    paper = {
        "tdtcp_vs_cubic_pct": 24.0,
        "tdtcp_vs_dctcp_pct": 24.0,
        "tdtcp_vs_mptcp_pct": 41.0,
        "tdtcp_vs_retcpdyn_pct": 0.0,
    }
    claims = headline_claims(data)
    lines = [f"[{data.name}] headline claims (paper vs measured)"]
    for key, measured in sorted(claims.items()):
        expect = paper.get(key)
        expect_s = f"{expect:+6.1f}%" if expect is not None else "   n/a "
        lines.append(f"  {key:<24} paper {expect_s}   measured {measured:+6.1f}%")
    return "\n".join(lines)
