"""Text rendering of figure data — the rows/series the paper reports.

Benchmarks print these tables so a run of ``pytest benchmarks/``
regenerates every figure as text; EXPERIMENTS.md records them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.figures import FigureData
from repro.metrics.cdf import quantile
from repro.metrics.seqgraph import step_interpolate
from repro.units import to_usec


def render_series_table(
    data: FigureData,
    curves: Dict[str, Tuple[np.ndarray, np.ndarray]],
    value_label: str,
    scale: float = 1.0,
    points: int = 12,
    include_references: bool = False,
) -> str:
    """One row per sampled time, one column per variant.

    Rows are anchored to a base time grid (sampled from the first
    non-empty column) and every other column is step-interpolated onto
    that grid — columns with different sample times or lengths line up
    on real timestamps instead of raw row indices.
    """
    columns: List[Tuple[str, Tuple[np.ndarray, np.ndarray]]] = []
    if include_references and data.optimal is not None:
        columns.append(("optimal", data.optimal))
    columns.extend(sorted(curves.items()))
    if include_references and data.packet_only is not None:
        columns.append(("packet-only", data.packet_only))
    if not columns:
        return "(no series)"
    grid_ns = np.asarray([], dtype=np.int64)
    for _name, (times, _values) in columns:
        if len(times) > 0:
            idx = np.linspace(0, len(times) - 1, points).astype(int)
            grid_ns = np.asarray(times, dtype=np.int64)[idx]
            break
    resampled: Dict[str, np.ndarray] = {}
    for name, (times, values) in columns:
        times = np.asarray(times)
        values = np.asarray(values, dtype=float)
        initial = float(values[0]) if len(values) else float("nan")
        resampled[name] = step_interpolate(times, values, grid_ns, initial=initial)
    names = [name for name, _ in columns]
    header = f"{'time(us)':>10} " + " ".join(f"{n:>12}" for n in names)
    lines = [f"[{data.name}] {value_label}", header]
    for row in range(len(grid_ns)):
        cells = [f"{resampled[name][row] * scale:12.2f}" for name in names]
        lines.append(f"{to_usec(int(grid_ns[row])):10.1f} " + " ".join(cells))
    return "\n".join(lines)


def render_seq_graph(data: FigureData, points: int = 12) -> str:
    """Sequence-number graph as text (bytes in MB)."""
    return render_series_table(
        data, data.seq_curves, "sequence progress (MB)", scale=1e-6,
        points=points, include_references=True,
    )


def render_voq_graph(data: FigureData, points: int = 12, jumbo_equivalent: bool = True) -> str:
    """VOQ occupancy over time. With ``jumbo_equivalent`` the counts are
    divided by 6 so the axis matches the paper's jumbo-frame units."""
    scale = 1.0 / 6.0 if jumbo_equivalent else 1.0
    label = "VOQ length (jumbo-frame equivalents)" if jumbo_equivalent else "VOQ length (packets)"
    return render_series_table(data, data.voq_curves, label, scale=scale, points=points)


def render_throughput_summary(data: FigureData, baseline: str = "cubic") -> str:
    lines = [f"[{data.name}] steady-state throughput"]
    base = data.throughputs_gbps.get(baseline)
    optimal_rate = None
    if data.optimal is not None:
        times, values = data.optimal
        optimal_rate = values[-1] * 8 / (times[-1] / 1e9) / 1e9 if times[-1] > 0 else None
    for variant in sorted(data.throughputs_gbps, key=data.throughputs_gbps.get, reverse=True):
        thr = data.throughputs_gbps[variant]
        rel = f" ({(thr / base - 1) * +100:+.0f}% vs {baseline})" if base else ""
        lines.append(f"  {variant:<12} {thr:6.2f} Gbps{rel}")
    if optimal_rate:
        lines.append(f"  {'optimal':<12} {optimal_rate:6.2f} Gbps (analytic)")
    return "\n".join(lines)


def render_cdf_summary(
    name: str,
    per_day: Dict[str, Sequence[int]],
    quantiles: Iterable[float] = (0.5, 0.9, 0.99, 1.0),
) -> str:
    """Figure-10-style distribution summary of per-day counts."""
    qs = list(quantiles)
    header = f"{'variant':<10} " + " ".join(f"{'p' + str(int(q * 100)):>5}" for q in qs) + "  zero-days"
    lines = [f"[{name}] per-optical-day distribution", header]
    for variant, samples in sorted(per_day.items()):
        cells = " ".join(f"{quantile(samples, q):5.0f}" for q in qs)
        zero = sum(1 for s in samples if s == 0) / len(samples) if len(samples) else 0.0
        lines.append(f"{variant:<10} {cells}  {zero * 100:8.0f}%")
    return "\n".join(lines)


def figure_to_csv(data: FigureData, directory) -> List[str]:
    """Write a figure's series as CSV files (one per series family);
    returns the paths written. For plotting outside this package."""
    import csv
    import pathlib

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[str] = []

    def dump(name: str, curves: Dict[str, Tuple[np.ndarray, np.ndarray]], extra=None):
        if not curves and not extra:
            return
        path = directory / f"{data.name}_{name}.csv"
        columns = dict(curves)
        if extra:
            columns.update(extra)
        names = sorted(columns)
        grids = {n: columns[n] for n in names}
        length = max(len(g[0]) for g in grids.values())
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            header = []
            for n in names:
                header.extend([f"{n}_time_ns", f"{n}_value"])
            writer.writerow(header)
            for i in range(length):
                row = []
                for n in names:
                    times, values = grids[n]
                    if i < len(times):
                        row.extend([int(times[i]), float(values[i])])
                    else:
                        row.extend(["", ""])
                writer.writerow(row)
        written.append(str(path))

    refs = {}
    if data.optimal is not None:
        refs["optimal"] = data.optimal
    if data.packet_only is not None:
        refs["packet_only"] = data.packet_only
    dump("seq", data.seq_curves, extra=refs)
    dump("voq", data.voq_curves)
    if data.throughputs_gbps:
        path = directory / f"{data.name}_throughput.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["variant", "gbps"])
            for variant, thr in sorted(data.throughputs_gbps.items()):
                writer.writerow([variant, thr])
        written.append(str(path))
    return written


def headline_claims(data: FigureData) -> Dict[str, float]:
    """The abstract's numbers from a Figure-7 run: TDTCP vs CUBIC/DCTCP
    (paper: +24%), vs MPTCP (paper: +41%), vs reTCP-dyn (paper: parity)."""
    thr = data.throughputs_gbps

    def gain(a: str, b: str) -> Optional[float]:
        if a in thr and b in thr and thr[b] > 0:
            return (thr[a] / thr[b] - 1.0) * 100.0
        return None

    claims = {}
    for other in ("cubic", "dctcp", "mptcp", "retcp", "retcpdyn"):
        value = gain("tdtcp", other)
        if value is not None:
            claims[f"tdtcp_vs_{other}_pct"] = value
    return claims


def render_headline_claims(data: FigureData) -> str:
    paper = {
        "tdtcp_vs_cubic_pct": 24.0,
        "tdtcp_vs_dctcp_pct": 24.0,
        "tdtcp_vs_mptcp_pct": 41.0,
        "tdtcp_vs_retcpdyn_pct": 0.0,
    }
    claims = headline_claims(data)
    lines = [f"[{data.name}] headline claims (paper vs measured)"]
    for key, measured in sorted(claims.items()):
        expect = paper.get(key)
        expect_s = f"{expect:+6.1f}%" if expect is not None else "   n/a "
        lines.append(f"  {key:<24} paper {expect_s}   measured {measured:+6.1f}%")
    return "\n".join(lines)
