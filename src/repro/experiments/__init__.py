"""Experiment harness: variants, runner, parallel executor, and
per-figure definitions."""

from repro.experiments.backoff import BackoffPolicy
from repro.experiments.checkpoint import (
    CampaignCheckpoint,
    ResumePlan,
    RunCheckpoint,
    checkpoint_path,
    load_resume_plan,
)
from repro.experiments.config import ExperimentConfig, WorkloadConfig
from repro.experiments.sweeps import LoadPoint, LoadSweepResult, load_sweep
from repro.experiments.executor import (
    BatchStats,
    CampaignAborted,
    ExperimentExecutor,
    ResultCache,
)
from repro.experiments.variants import VARIANTS, VariantSpec, get_variant
from repro.experiments.runner import ExperimentResult, RunFailure, run_experiment

__all__ = [
    "ExperimentConfig",
    "WorkloadConfig",
    "LoadPoint",
    "LoadSweepResult",
    "load_sweep",
    "VARIANTS",
    "VariantSpec",
    "get_variant",
    "ExperimentResult",
    "RunFailure",
    "run_experiment",
    "ExperimentExecutor",
    "ResultCache",
    "BatchStats",
    "BackoffPolicy",
    "CampaignAborted",
    "CampaignCheckpoint",
    "ResumePlan",
    "RunCheckpoint",
    "checkpoint_path",
    "load_resume_plan",
]
