"""Experiment harness: variants, runner, and per-figure definitions."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.variants import VARIANTS, VariantSpec, get_variant
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = [
    "ExperimentConfig",
    "VARIANTS",
    "VariantSpec",
    "get_variant",
    "ExperimentResult",
    "run_experiment",
]
