"""Command-line entry point: regenerate paper figures from a shell.

Usage::

    python -m repro.experiments.cli fig7 --weeks 40 --flows 8
    python -m repro.experiments.cli fig7 --jobs 4 --cache-dir out/cache
    python -m repro.experiments.cli fig10 --csv out/
    python -m repro.experiments.cli fig7 --trace-out out/ --metrics-out out/ --profile
    python -m repro.experiments.cli sweep-ratio
    python -m repro.experiments.cli sweep-load --loads 0.2,0.4 --variants cubic,tdtcp --jobs 2
    python -m repro.experiments.cli replay-trace --trace flows.csv --variant tdtcp
    python -m repro.experiments.cli chaos --fault-plan examples/fault_plans/day_one_storm.json --audit fail
    python -m repro.experiments.cli list
"""

from __future__ import annotations

import argparse
import hashlib
import pathlib
import sys
import tempfile
from typing import Callable, Dict, List, Optional

from repro.experiments import figures
from repro.experiments.checkpoint import checkpoint_path, load_resume_plan
from repro.experiments.executor import (
    DEFAULT_HEARTBEAT_EVENTS,
    CampaignAborted,
    ExperimentExecutor,
)
from repro.obs.campaign import CampaignLog, LiveCampaignView
from repro.obs.telemetry import ObsConfig
from repro.experiments.report import (
    fct_cdf_to_csv,
    figure_to_csv,
    load_sweep_to_csv,
    render_cdf_summary,
    render_headline_claims,
    render_seq_graph,
    render_throughput_summary,
    render_voq_graph,
    sweep_to_csv,
)
from repro.experiments.sweeps import (
    buffer_economics_sweep,
    day_length_sweep,
    duty_ratio_sweep,
    load_sweep,
)
from repro.net.queues import BUFFER_POLICIES

#: Exit code for a SIGINT/SIGTERM campaign abort (EX_TEMPFAIL): the
#: campaign checkpointed cleanly and ``--resume`` will pick it up —
#: distinct from 1 (a run actually failed).
EXIT_ABORTED = 75

FIGURES: Dict[str, Callable] = {
    "fig2": figures.fig2,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig13": figures.fig13,
    "fig14-10g": lambda **kw: figures.fig14(10.0, **kw),
    "fig14-100g": lambda **kw: figures.fig14(100.0, **kw),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.cli",
        description="Regenerate the TDTCP paper's figures on the simulator.",
    )
    parser.add_argument("target", help="figure id (fig2..fig14-100g), 'chaos', 'sweep-ratio', 'sweep-day', 'sweep-buffer', 'sweep-load', 'replay-trace', or 'list'")
    parser.add_argument("--weeks", type=int, default=24, help="optical weeks to simulate")
    parser.add_argument("--warmup", type=int, default=8, help="warm-up weeks excluded from averages")
    parser.add_argument("--flows", type=int, default=8, help="parallel cross-rack flows")
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument(
        "--fidelity", choices=("packet", "tiered"), default="packet",
        help="simulation fidelity: 'packet' (exact, default) or 'tiered' "
             "(fluid fast path for steady in-slot transfer; unsupported "
             "runs fall back to packet with a logged reason)",
    )
    parser.add_argument("--csv", metavar="DIR", default=None, help="also write series as CSV files")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for figure/sweep batches (default: 1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="on-disk result cache keyed by config content hash; a warm cache re-run executes zero simulations",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache even when --cache-dir is set",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="re-execute a failed run up to this many extra times (default: 1)",
    )
    parser.add_argument(
        "--trace-out", metavar="DIR", default=None,
        help="record tracepoints; write JSONL, Chrome trace JSON, and CSVs here",
    )
    parser.add_argument(
        "--metrics-out", metavar="DIR", default=None,
        help="derive the metrics registry from tracepoints; write its JSON snapshot here",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attribute simulator wall time per event callback and print the report",
    )
    parser.add_argument(
        "--tracepoints", metavar="GLOB", default="*",
        help="glob over tracepoint names to record (default: all, e.g. 'tcp:*')",
    )
    parser.add_argument(
        "--fault-plan", metavar="JSON", default=None,
        help="fault-plan JSON file (repro.faults) armed on the testbed before the run",
    )
    parser.add_argument(
        "--audit", choices=("warn", "fail"), default=None,
        help="run the invariant auditor: 'warn' records violations, 'fail' aborts the run",
    )
    parser.add_argument(
        "--bundle-dir", metavar="DIR", default="out/bundles",
        help="where crash-capture repro bundles are written (default: out/bundles)",
    )
    parser.add_argument(
        "--watchdog-events", type=int, default=None,
        help="abort a run after this many simulator events",
    )
    parser.add_argument(
        "--watchdog-wall", type=float, default=None,
        help="abort a run after this many wall-clock seconds",
    )
    parser.add_argument(
        "--campaign-log", metavar="JSONL", default=None,
        help="append run-lifecycle events (queued/started/heartbeat/finished/…) to this JSONL file",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="repaint live campaign progress (per-run heartbeats, ETA, cache-hit rate) when stderr is a TTY",
    )
    parser.add_argument(
        "--heartbeat-events", type=int, default=DEFAULT_HEARTBEAT_EVENTS,
        help=f"worker heartbeat cadence in simulator events (default: {DEFAULT_HEARTBEAT_EVENTS})",
    )
    parser.add_argument(
        "--resume", metavar="JSONL", default=None,
        help="resume an interrupted campaign from its journal: completed runs are "
             "replayed from the checkpoint sidecar + result cache, only the "
             "remainder executes (new journal defaults to <log>.resumed.jsonl)",
    )
    parser.add_argument(
        "--executor-fault-plan", metavar="JSON", default=None,
        help="executor-layer chaos plan (repro.faults.executor_chaos) injecting "
             "worker kills, broken pools, and cache faults around the batch",
    )
    parser.add_argument(
        "--chaos-dir", metavar="DIR", default=None,
        help="chaos-executor target: where gauntlet journals/caches are written "
             "(default: a fresh temporary directory)",
    )
    parser.add_argument(
        "--variant", default="tdtcp",
        help="variant for the 'chaos' and 'replay-trace' targets (default: tdtcp)",
    )
    parser.add_argument(
        "--buffer-policy", choices=BUFFER_POLICIES, default=None,
        help="ToR buffer sharing policy override for figure runs; restricts 'sweep-buffer' to one policy",
    )
    parser.add_argument(
        "--buffer-total", type=int, default=None,
        help="total ToR buffer (packets) shared by the pool; restricts 'sweep-buffer' to one total",
    )
    parser.add_argument(
        "--buffer-alpha", type=float, default=None,
        help="dynamic-threshold alpha (admit while VOQ length < alpha x free pool)",
    )
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="chaos target: run twice and require byte-identical JSONL traces",
    )
    parser.add_argument(
        "--loads", default="0.2,0.4,0.6",
        help="sweep-load: comma-separated offered loads in (0, 1] (default: 0.2,0.4,0.6)",
    )
    parser.add_argument(
        "--variants", default="cubic,tdtcp",
        help="sweep-load: comma-separated engine variants (default: cubic,tdtcp)",
    )
    parser.add_argument(
        "--workload-cdf", choices=("web-search", "data-mining"), default="web-search",
        help="empirical flow-size CDF for sweep-load (default: web-search)",
    )
    parser.add_argument(
        "--matrix", choices=("permutation", "all-to-all", "hotspot"),
        default="permutation",
        help="traffic matrix for sweep-load (default: permutation)",
    )
    parser.add_argument(
        "--hotspot-fraction", type=float, default=0.5,
        help="fraction of arrivals redirected to the hotspot pair (matrix=hotspot)",
    )
    parser.add_argument(
        "--cdf-out", metavar="DIR", default=None,
        help="sweep-load: also write per-(load, variant) FCT and slowdown "
             "CDF curves decoded from the runs' DDSketch states",
    )
    parser.add_argument(
        "--record-cap", type=int, default=0,
        help="per-flow record reservoir size (default: 0 = streaming only)",
    )
    parser.add_argument(
        "--max-flows", type=int, default=None,
        help="stop launching workload-engine flows after this many",
    )
    parser.add_argument(
        "--trace", metavar="CSV", default=None,
        help="replay-trace: workload trace CSV (start_ns,src,dst,size_bytes)",
    )
    parser.add_argument(
        "--lenient-trace", action="store_true",
        help="skip malformed trace rows (counted) instead of failing on the first",
    )
    return parser


def obs_config_from_args(args) -> Optional[ObsConfig]:
    """Build an :class:`ObsConfig` from the CLI flags (None when no
    telemetry was requested)."""
    if not (args.trace_out or args.metrics_out or args.profile):
        return None
    return ObsConfig(
        trace_dir=args.trace_out,
        metrics_dir=args.metrics_out,
        profile=args.profile,
        tracepoints=args.tracepoints,
    )


def executor_from_args(args) -> ExperimentExecutor:
    """One executor per CLI invocation: worker count, cache location,
    retry budget, and campaign bus straight from the flags, progress on
    stderr. ``--live`` upgrades the progress lines to an in-place TTY
    view when stderr is a terminal; otherwise it falls back to the
    plain lines.

    ``--resume`` loads the prior journal *before* the new log opens
    (opening truncates), defaults the new journal to
    ``<log>.resumed.jsonl`` so the original survives as evidence, and
    arms the executor's replay plan. Any journal-producing run also
    gets a checkpoint sidecar (``<log>.ckpt.json``) so *it* can be
    resumed in turn."""
    resume = None
    log_path = args.campaign_log
    if args.resume:
        resume = load_resume_plan(args.resume)
        if resume.partial_tail is not None:
            print(f"resume: tolerated truncated journal tail in {args.resume}",
                  file=sys.stderr)
        print(f"resume: {len(resume.checkpoint.runs)} terminal runs from "
              f"{resume.checkpoint_source}", file=sys.stderr)
        if log_path is None:
            log_path = str(pathlib.Path(args.resume).with_suffix("")) + ".resumed.jsonl"
    campaign = None
    live = None
    if log_path or args.live:
        campaign = CampaignLog(log_path)
        if args.live and sys.stderr.isatty():
            live = LiveCampaignView(sys.stderr, jobs=args.jobs)
            campaign.subscribe(live.on_record)
    chaos = None
    if args.executor_fault_plan:
        from repro.faults.executor_chaos import ExecutorChaos, load_executor_fault_plan

        chaos = ExecutorChaos(load_executor_fault_plan(args.executor_fault_plan))

    def progress(done: int, total: int, label: str, outcome: str) -> None:
        print(f"  [{done}/{total}] {label}: {outcome}", file=sys.stderr)

    plain = args.jobs > 1 or args.cache_dir or campaign is not None
    return ExperimentExecutor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        retries=args.retries,
        progress=progress if (plain and live is None) else None,
        campaign=campaign,
        heartbeat_events=args.heartbeat_events,
        resume=resume,
        checkpoint_to=checkpoint_path(campaign.path) if (campaign and campaign.path) else None,
        chaos=chaos,
    )


def buffer_override_from_args(args):
    """An ``RDCNConfig -> RDCNConfig`` transform applying the buffer
    flags, or None when none were given (figure runs then keep their
    canned static carving — byte-identical to pre-flag behavior)."""
    if args.buffer_policy is None and args.buffer_total is None and args.buffer_alpha is None:
        return None
    from dataclasses import replace

    def override(rdcn):
        kwargs = {}
        if args.buffer_policy is not None:
            kwargs["buffer_policy"] = args.buffer_policy
        if args.buffer_total is not None:
            kwargs["voq_capacity"] = args.buffer_total
            if (args.buffer_policy or rdcn.buffer_policy) != "static":
                kwargs["buffer_total_capacity"] = args.buffer_total
        if args.buffer_alpha is not None:
            kwargs["buffer_alpha"] = args.buffer_alpha
        return replace(rdcn, **kwargs)

    return override


def run_figure(name: str, args) -> int:
    """Run one figure; failed variants degrade the figure (reported
    per-variant on stderr, exit 1) instead of aborting it."""
    executor = executor_from_args(args)
    data = FIGURES[name](
        weeks=args.weeks, warmup_weeks=args.warmup, n_flows=args.flows, seed=args.seed,
        obs=obs_config_from_args(args), executor=executor,
        rdcn_override=buffer_override_from_args(args),
        fidelity=args.fidelity,
    )
    sections = [render_throughput_summary(data)]
    if data.seq_curves:
        sections.insert(0, render_seq_graph(data))
    if data.voq_curves:
        sections.append(render_voq_graph(data))
    if name == "fig7":
        sections.append(render_headline_claims(data))
    if name == "fig10":
        sections.append(
            render_cdf_summary(
                "fig10 retransmission marks/day",
                {v: r.retx_marks_per_day for v, r in data.results.items()},
            )
        )
    if args.csv:
        written = figure_to_csv(data, args.csv)
        sections.append("CSV written:\n  " + "\n  ".join(written))
    artifacts = [path for result in data.results.values() for path in result.artifacts]
    if artifacts:
        sections.append("telemetry artifacts:\n  " + "\n  ".join(artifacts))
    if args.profile:
        for variant, result in data.results.items():
            if result.profile_report:
                sections.append(f"profile [{name}/{variant}]\n{result.profile_report}")
    sections.append(f"executor: {executor.last_batch.render()}")
    if executor.resume is not None:
        sections.append(
            f"resume: {executor.last_replayed} replayed, "
            f"{executor.last_fresh} executed fresh"
        )
    if executor.campaign is not None:
        executor.campaign.close()
        if executor.campaign.path:
            sections.append(f"campaign log: {executor.campaign.path}")
    print("\n\n".join(sections))
    if data.failures:
        for variant, failure in sorted(data.failures.items()):
            print(f"[{name}/{variant}] {failure.render()}", file=sys.stderr)
        return 1
    return 0


def _chaos_config(args, obs: Optional[ObsConfig] = None):
    from repro.experiments.config import ExperimentConfig

    return ExperimentConfig(
        variant=args.variant,
        n_flows=args.flows,
        weeks=args.weeks,
        warmup_weeks=args.warmup,
        seed=args.seed,
        obs=obs,
        fault_plan_path=args.fault_plan,
        audit=args.audit or "fail",
        watchdog_max_events=args.watchdog_events,
        watchdog_max_wall_s=args.watchdog_wall,
        bundle_dir=args.bundle_dir,
    )


def run_chaos(args) -> int:
    """The chaos target: one bulk run under a fault plan with the
    invariant auditor on (fail mode unless overridden). Exits non-zero
    with the repro-bundle path printed when the run fails."""
    from repro.experiments.runner import run_experiment

    obs = obs_config_from_args(args)
    result = run_experiment(_chaos_config(args, obs=obs))
    if result.fault_report is not None:
        effects = result.fault_report["effects"]
        print(f"fault plan: {result.fault_report['plan']} "
              f"({result.fault_report['specs']} specs, "
              f"{result.fault_report['total_effects']} effects)")
        for kind, count in sorted(effects.items()):
            print(f"  {kind}: {count}")
        for note in result.fault_report["unmatched"]:
            print(f"  warning: {note}")
    if result.audit_report is not None:
        report = result.audit_report
        print(f"auditor [{report['mode']}]: {report['checks_run']} audits, "
              f"{report['violation_count']} violations")
        for violation in report["violations"][:10]:
            print(f"  [{violation['time_ns']} ns] {violation['check']} "
                  f"@ {violation['subject']}: {violation['detail']}")
    if result.failure is not None:
        print(result.failure.render(), file=sys.stderr)
        return 1
    print(f"delivered: {result.aggregate_delivered:,} bytes "
          f"({result.throughput_gbps:.2f} Gbps aggregate)")
    if args.check_determinism:
        digests = []
        with tempfile.TemporaryDirectory() as tmp:
            for replica in ("a", "b"):
                replica_obs = ObsConfig(trace_dir=tmp, label=f"chaos_{replica}",
                                        chrome_trace=False, csv=False)
                replica_result = run_experiment(_chaos_config(args, obs=replica_obs))
                if replica_result.failure is not None:
                    print(replica_result.failure.render(), file=sys.stderr)
                    return 1
                trace = pathlib.Path(tmp) / f"chaos_{replica}.jsonl"
                digests.append(hashlib.sha256(trace.read_bytes()).hexdigest())
        if digests[0] != digests[1]:
            print(f"determinism check FAILED: {digests[0]} != {digests[1]}",
                  file=sys.stderr)
            return 1
        print(f"determinism check passed: trace sha256 {digests[0][:16]}…")
    return 0


def run_chaos_executor(args) -> int:
    """The executor-chaos gauntlet: one small campaign per fault kind
    (worker kills, broken pools, ENOSPC cache writes, corrupt cache
    entries, slow workers, torn journals + resume), each validated for
    schema-clean records and **exactly one** terminal record per run.
    With ``--executor-fault-plan`` runs that single plan instead.

    A full pass exits 0; any lost/duplicated terminal record, schema
    violation, or wrong resume summary exits 1."""
    import json
    import tempfile as tempfile_mod

    from repro.experiments.config import ExperimentConfig
    from repro.faults.executor_chaos import (
        ExecutorChaos,
        ExecutorFaultPlan,
        ExecutorFaultSpec,
        load_executor_fault_plan,
        truncate_journal_tail,
    )
    from repro.obs.campaign import (
        CAMPAIGN_SCHEMA_VERSION,
        campaign_summary,
        read_campaign,
        validate_records,
    )

    jobs = max(args.jobs, 2)  # pool faults need an actual pool
    out_dir = pathlib.Path(args.chaos_dir or tempfile_mod.mkdtemp(prefix="chaos-executor-"))
    out_dir.mkdir(parents=True, exist_ok=True)
    configs = [
        ExperimentConfig(
            variant=args.variant, weeks=args.weeks, warmup_weeks=args.warmup,
            n_flows=args.flows, seed=args.seed + i,
        )
        for i in range(3)
    ]
    labels = [f"{c.variant}/seed{c.seed}" for c in configs]

    if args.executor_fault_plan:
        legs = [("custom", load_executor_fault_plan(args.executor_fault_plan))]
    else:
        legs = [
            ("worker_kill", ExecutorFaultPlan(
                specs=(ExecutorFaultSpec(kind="worker_kill", target=labels[0]),))),
            ("worker_kill_midrun", ExecutorFaultPlan(
                specs=(ExecutorFaultSpec(kind="worker_kill", target=labels[1],
                                         params={"after_events": 1}),))),
            ("broken_pool", ExecutorFaultPlan(
                specs=(ExecutorFaultSpec(kind="broken_pool", target=labels[0]),))),
            ("cache_write_error", ExecutorFaultPlan(
                specs=(ExecutorFaultSpec(kind="cache_write_error", count=0),))),
            ("cache_corrupt", ExecutorFaultPlan(
                specs=(ExecutorFaultSpec(kind="cache_corrupt", count=0),))),
            ("slow_worker", ExecutorFaultPlan(
                specs=(ExecutorFaultSpec(kind="slow_worker", target=labels[0],
                                         params={"stall_s": 0.2}),))),
            ("journal_truncate", ExecutorFaultPlan(
                specs=(ExecutorFaultSpec(kind="journal_truncate"),))),
        ]

    def run_leg(name: str, plan: ExecutorFaultPlan, tag: str) -> tuple:
        """One chaos campaign; returns (journal records, executor)."""
        log_path = out_dir / f"{name}.{tag}.jsonl"
        chaos = ExecutorChaos(plan)
        with CampaignLog(str(log_path)) as log:
            executor = ExperimentExecutor(
                jobs=jobs,
                cache_dir=str(out_dir / f"{name}.cache"),
                retries=args.retries,
                campaign=log,
                heartbeat_events=args.heartbeat_events,
                checkpoint_to=checkpoint_path(str(log_path)),
                chaos=chaos,
            )
            executor.run_batch(configs, labels=labels)
        for spec in plan.journal_truncate_specs():
            truncate_journal_tail(log_path)
        return log_path, chaos, executor

    failures: List[str] = []

    def check_records(name: str, records: List[dict]) -> None:
        for error in validate_records(records):
            failures.append(f"{name}: schema violation: {error}")
        starts = [r for r in records if r["event"] == "campaign_start"]
        if not starts or starts[0].get("schema") != CAMPAIGN_SCHEMA_VERSION:
            failures.append(f"{name}: campaign_start missing or wrong schema")
        for label in labels:
            terminal = [r for r in records
                        if r.get("run") == label
                        and r["event"] in ("finished", "failed")]
            if len(terminal) != 1:
                failures.append(
                    f"{name}: {label} has {len(terminal)} terminal records "
                    f"(want exactly 1)")

    for name, plan in legs:
        log_path, chaos, executor = run_leg(name, plan, "a")
        # read_campaign tolerates the deliberately torn tail in the
        # journal_truncate leg; every terminal record precedes it.
        records = read_campaign(log_path)
        check_records(name, records)
        if not chaos.log and plan.specs and name != "journal_truncate":
            failures.append(f"{name}: plan armed but no fault fired")
        if name == "cache_write_error":
            wrote = executor.metrics.get("executor_cache_write_errors_total")
            if not wrote or wrote.total() < 1:
                failures.append(f"{name}: no cache write error was counted")
        if name == "cache_corrupt":
            # Corrupt entries must read back as misses: a warm re-run
            # re-executes instead of erroring out.
            rerun_path = out_dir / f"{name}.warm.jsonl"
            with CampaignLog(str(rerun_path)) as log:
                warm = ExperimentExecutor(
                    jobs=jobs, cache_dir=str(out_dir / f"{name}.cache"),
                    campaign=log, heartbeat_events=args.heartbeat_events,
                )
                results = warm.run_batch(configs, labels=labels)
            if not all(r.ok for r in results):
                failures.append(f"{name}: warm re-run over corrupt cache failed")
        if name == "journal_truncate":
            plan_loaded = load_resume_plan(str(log_path))
            if plan_loaded.partial_tail is None:
                failures.append(f"{name}: torn tail not detected")
            resumed_path = out_dir / f"{name}.resumed.jsonl"
            with CampaignLog(str(resumed_path)) as log:
                resumed = ExperimentExecutor(
                    jobs=jobs, cache_dir=str(out_dir / f"{name}.cache"),
                    campaign=log, heartbeat_events=args.heartbeat_events,
                    checkpoint_to=checkpoint_path(str(resumed_path)),
                    resume=plan_loaded,
                )
                resumed.run_batch(configs, labels=labels)
            # Reference: the same campaign, no chaos, fresh cache.
            ref_path, _, _ = run_leg(f"{name}.ref", ExecutorFaultPlan(), "b")
            ref = json.dumps(campaign_summary(read_campaign(ref_path)), sort_keys=True)
            got = json.dumps(campaign_summary(read_campaign(resumed_path)), sort_keys=True)
            if ref != got:
                failures.append(f"{name}: resumed summary != uninterrupted summary")
        fired = ", ".join(f"{kind}@{target}" for kind, target, _ in chaos.log) or "none"
        print(f"  [{name}] survived — injected: {fired}")

    print(f"chaos-executor: {len(legs)} legs, {len(failures)} violations "
          f"(journals in {out_dir})")
    for failure in failures:
        print(f"  VIOLATION: {failure}", file=sys.stderr)
    return 1 if failures else 0


def run_sweep_load(args) -> int:
    """The sweep-load target: offered load x variant grid through the
    workload engine, one executor batch (parallel / cached /
    checkpointable like every other campaign)."""
    from repro.faults.plan import FaultPlan

    try:
        loads = tuple(float(v) for v in args.loads.split(",") if v.strip())
    except ValueError:
        print(f"--loads must be comma-separated floats, got {args.loads!r}",
              file=sys.stderr)
        return 2
    variants = tuple(v.strip() for v in args.variants.split(",") if v.strip())
    if not loads or not variants:
        print("--loads and --variants must each name at least one value",
              file=sys.stderr)
        return 2
    executor = executor_from_args(args)
    result = load_sweep(
        loads=loads,
        variants=variants,
        cdf=args.workload_cdf,
        matrix=args.matrix,
        hotspot_fraction=args.hotspot_fraction,
        record_cap=args.record_cap,
        max_flows=args.max_flows,
        weeks=args.weeks,
        warmup_weeks=args.warmup,
        seed=args.seed,
        executor=executor,
        fault_plan=FaultPlan.load(args.fault_plan) if args.fault_plan else None,
        watchdog_max_events=args.watchdog_events,
        watchdog_max_wall_s=args.watchdog_wall,
        obs=obs_config_from_args(args),
        fidelity=args.fidelity,
    )
    print(result.render())
    if args.csv:
        written = load_sweep_to_csv(result, args.csv)
        print("CSV written:\n  " + "\n  ".join(written))
    if args.cdf_out:
        written = []
        for family in ("fct_us", "slowdown"):
            written.extend(fct_cdf_to_csv(result, args.cdf_out, sketch=family))
        print("CDF CSV written:\n  " + "\n  ".join(written))
    print(f"executor: {executor.last_batch.render()}")
    if executor.resume is not None:
        print(f"resume: {executor.last_replayed} replayed, "
              f"{executor.last_fresh} executed fresh")
    if executor.campaign is not None:
        executor.campaign.close()
        if executor.campaign.path:
            print(f"campaign log: {executor.campaign.path}")
    return 0 if result.ok else 1


def run_replay_trace(args) -> int:
    """The replay-trace target: one engine run replaying a CSV trace
    (``start_ns,src,dst,size_bytes``) under ``--variant``."""
    from repro.experiments.config import ExperimentConfig, WorkloadConfig
    from repro.experiments.runner import run_experiment

    if not args.trace:
        print("replay-trace needs --trace CSV", file=sys.stderr)
        return 2
    try:
        workload = WorkloadConfig(
            kind="trace",
            trace_path=args.trace,
            strict_trace=not args.lenient_trace,
            record_cap=args.record_cap,
            max_flows=args.max_flows,
        )
    except (OSError, ValueError) as error:
        print(f"replay-trace: {error}", file=sys.stderr)
        return 2
    config = ExperimentConfig(
        variant=args.variant,
        weeks=args.weeks,
        warmup_weeks=args.warmup,
        seed=args.seed,
        obs=obs_config_from_args(args),
        workload=workload,
        collect_voq=False,
        collect_sequence=False,
        watchdog_max_events=args.watchdog_events,
        watchdog_max_wall_s=args.watchdog_wall,
        bundle_dir=args.bundle_dir,
    )
    result = run_experiment(config)
    if result.failure is not None:
        print(result.failure.render(), file=sys.stderr)
        return 1
    summary = result.workload_summary or {}
    print(f"trace: {args.trace}")
    print(f"flows: {summary.get('started', 0)} offered, "
          f"{summary.get('completed', 0)} completed, "
          f"{result.truncated_flows} truncated, "
          f"{summary.get('trace_rows_skipped', 0)} rows skipped "
          f"(completion rate {summary.get('completion_rate', 0.0):.3f})")
    print(f"bytes: {summary.get('bytes_completed', 0):,} delivered of "
          f"{summary.get('bytes_offered', 0):,} offered")
    for family in ("fct_us", "slowdown"):
        percentiles = summary.get(family) or {}
        cells = "  ".join(
            f"{label}={value:.2f}"
            for label, value in percentiles.items()
            if value is not None
        )
        print(f"{family}: {cells or '(no completions)'}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except CampaignAborted as abort:
        print(f"aborted ({abort.reason}): {abort.done}/{abort.total} runs complete; "
              f"checkpoint flushed — rerun with --resume to continue",
              file=sys.stderr)
        return EXIT_ABORTED


def _dispatch(args) -> int:
    if args.target == "list":
        print("figures:", ", ".join(sorted(FIGURES)))
        print("sweeps: sweep-ratio, sweep-day, sweep-buffer, sweep-load")
        print("workload: sweep-load (offered-load grid), replay-trace (--trace CSV)")
        print("chaos: fault-plan run (--fault-plan/--audit/--check-determinism)")
        print("chaos-executor: executor-layer fault gauntlet (--executor-fault-plan)")
        return 0
    if args.target == "sweep-load":
        return run_sweep_load(args)
    if args.target == "replay-trace":
        return run_replay_trace(args)
    if args.target == "chaos":
        return run_chaos(args)
    if args.target == "chaos-executor":
        return run_chaos_executor(args)
    if args.target in ("sweep-ratio", "sweep-day", "sweep-buffer"):
        from repro.faults.plan import FaultPlan

        executor = executor_from_args(args)
        common = dict(
            weeks=args.weeks, warmup_weeks=args.warmup, n_flows=args.flows,
            seed=args.seed, executor=executor,
            fault_plan=FaultPlan.load(args.fault_plan) if args.fault_plan else None,
            watchdog_max_events=args.watchdog_events,
            watchdog_max_wall_s=args.watchdog_wall,
        )
        if args.target == "sweep-buffer":
            buffer_kwargs = {}
            if args.buffer_total is not None:
                buffer_kwargs["totals"] = (args.buffer_total,)
            if args.buffer_policy is not None:
                buffer_kwargs["policies"] = (args.buffer_policy,)
            if args.buffer_alpha is not None:
                buffer_kwargs["alpha"] = args.buffer_alpha
            if args.audit is not None:
                buffer_kwargs["audit"] = args.audit
            result = buffer_economics_sweep(**common, **buffer_kwargs)
        else:
            sweep = duty_ratio_sweep if args.target == "sweep-ratio" else day_length_sweep
            result = sweep(**common)
        print(result.render())
        if args.csv:
            written = sweep_to_csv(result, args.csv)
            print("CSV written:\n  " + "\n  ".join(written))
        print(f"executor: {executor.last_batch.render()}")
        if executor.resume is not None:
            print(f"resume: {executor.last_replayed} replayed, "
                  f"{executor.last_fresh} executed fresh")
        if executor.campaign is not None:
            executor.campaign.close()
            if executor.campaign.path:
                print(f"campaign log: {executor.campaign.path}")
        # Failed points are rendered as FAILED cells above; a sweep with
        # any crashed run must not exit clean.
        return 0 if result.ok else 1
    if args.target not in FIGURES:
        print(f"unknown target {args.target!r}; try 'list'", file=sys.stderr)
        return 2
    return run_figure(args.target, args)


if __name__ == "__main__":
    raise SystemExit(main())
