"""Command-line entry point: regenerate paper figures from a shell.

Usage::

    python -m repro.experiments.cli fig7 --weeks 40 --flows 8
    python -m repro.experiments.cli fig10 --csv out/
    python -m repro.experiments.cli fig7 --trace-out out/ --metrics-out out/ --profile
    python -m repro.experiments.cli sweep-ratio
    python -m repro.experiments.cli list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import figures
from repro.obs.telemetry import ObsConfig
from repro.experiments.report import (
    figure_to_csv,
    render_cdf_summary,
    render_headline_claims,
    render_seq_graph,
    render_throughput_summary,
    render_voq_graph,
)
from repro.experiments.sweeps import day_length_sweep, duty_ratio_sweep

FIGURES: Dict[str, Callable] = {
    "fig2": figures.fig2,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig13": figures.fig13,
    "fig14-10g": lambda **kw: figures.fig14(10.0, **kw),
    "fig14-100g": lambda **kw: figures.fig14(100.0, **kw),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.cli",
        description="Regenerate the TDTCP paper's figures on the simulator.",
    )
    parser.add_argument("target", help="figure id (fig2..fig14-100g), 'sweep-ratio', 'sweep-day', or 'list'")
    parser.add_argument("--weeks", type=int, default=24, help="optical weeks to simulate")
    parser.add_argument("--warmup", type=int, default=8, help="warm-up weeks excluded from averages")
    parser.add_argument("--flows", type=int, default=8, help="parallel cross-rack flows")
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")
    parser.add_argument("--csv", metavar="DIR", default=None, help="also write series as CSV files")
    parser.add_argument(
        "--trace-out", metavar="DIR", default=None,
        help="record tracepoints; write JSONL, Chrome trace JSON, and CSVs here",
    )
    parser.add_argument(
        "--metrics-out", metavar="DIR", default=None,
        help="derive the metrics registry from tracepoints; write its JSON snapshot here",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attribute simulator wall time per event callback and print the report",
    )
    parser.add_argument(
        "--tracepoints", metavar="GLOB", default="*",
        help="glob over tracepoint names to record (default: all, e.g. 'tcp:*')",
    )
    return parser


def obs_config_from_args(args) -> Optional[ObsConfig]:
    """Build an :class:`ObsConfig` from the CLI flags (None when no
    telemetry was requested)."""
    if not (args.trace_out or args.metrics_out or args.profile):
        return None
    return ObsConfig(
        trace_dir=args.trace_out,
        metrics_dir=args.metrics_out,
        profile=args.profile,
        tracepoints=args.tracepoints,
    )


def run_figure(name: str, args) -> str:
    data = FIGURES[name](
        weeks=args.weeks, warmup_weeks=args.warmup, n_flows=args.flows, seed=args.seed,
        obs=obs_config_from_args(args),
    )
    sections = [render_throughput_summary(data)]
    if data.seq_curves:
        sections.insert(0, render_seq_graph(data))
    if data.voq_curves:
        sections.append(render_voq_graph(data))
    if name == "fig7":
        sections.append(render_headline_claims(data))
    if name == "fig10":
        sections.append(
            render_cdf_summary(
                "fig10 retransmission marks/day",
                {v: r.retx_marks_per_day for v, r in data.results.items()},
            )
        )
    if args.csv:
        written = figure_to_csv(data, args.csv)
        sections.append("CSV written:\n  " + "\n  ".join(written))
    artifacts = [path for result in data.results.values() for path in result.artifacts]
    if artifacts:
        sections.append("telemetry artifacts:\n  " + "\n  ".join(artifacts))
    if args.profile:
        for variant, result in data.results.items():
            if result.profile_report:
                sections.append(f"profile [{name}/{variant}]\n{result.profile_report}")
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "list":
        print("figures:", ", ".join(sorted(FIGURES)))
        print("sweeps: sweep-ratio, sweep-day")
        return 0
    if args.target == "sweep-ratio":
        result = duty_ratio_sweep(weeks=args.weeks, warmup_weeks=args.warmup, n_flows=args.flows, seed=args.seed)
        print(result.render())
        return 0
    if args.target == "sweep-day":
        result = day_length_sweep(weeks=args.weeks, warmup_weeks=args.warmup, n_flows=args.flows, seed=args.seed)
        print(result.render())
        return 0
    if args.target not in FIGURES:
        print(f"unknown target {args.target!r}; try 'list'", file=sys.stderr)
        return 2
    print(run_figure(args.target, args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
