"""Parameter sweeps beyond the paper's headline setting.

Two studies the paper explicitly defers:

* §5.1: "TDTCP has the most advantage over other TCP variants with
  ratios on this order [6:1]. We leave it as future work to study
  TDTCP's performance when operating under extreme ratios." —
  :func:`duty_ratio_sweep` varies the packet:optical day ratio.
* §3.5: "TDTCP is most suitable to operate in networks where the
  periods between TDN changes are 1-100x path RTT." —
  :func:`day_length_sweep` varies the day duration across that band.

Every (setting, variant) point is an independent seeded run, so both
sweeps execute as one :class:`ExperimentExecutor` batch — pass
``executor`` to parallelize/cache them. A crashed run is recorded as a
failed :class:`SweepPoint` (structured failure attached, **no**
throughput number), never as a silent ~0 Gbps measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig, WorkloadConfig
from repro.experiments.executor import ExperimentExecutor
from repro.experiments.runner import RunFailure
from repro.faults.plan import FaultPlan
from repro.net.queues import BUFFER_POLICIES
from repro.rdcn.config import RDCNConfig
from repro.units import usec

#: Compact policy tags used in sweep labels and CSV/figure axes.
POLICY_TAGS = {
    "static": "static",
    "complete-sharing": "share",
    "dynamic-threshold": "dyn",
}


@dataclass
class SweepPoint:
    """One (setting, variant) measurement. ``failure`` set means the
    run crashed: there is no throughput to report (NaN placeholder)."""

    label: str
    variant: str
    throughput_gbps: float
    retransmissions: int
    rtos: int
    failure: Optional[RunFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class SweepResult:
    name: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def failures(self) -> List[SweepPoint]:
        return [p for p in self.points if not p.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_label(self) -> Dict[str, Dict[str, float]]:
        """setting -> variant -> throughput; failed points are left out
        (their absence, not a zero, marks them)."""
        out: Dict[str, Dict[str, float]] = {}
        for p in self.points:
            out.setdefault(p.label, {})
            if p.ok:
                out[p.label][p.variant] = p.throughput_gbps
        return out

    def render(self) -> str:
        table = self.by_label()
        variants = sorted({p.variant for p in self.points})
        failed = {(p.label, p.variant) for p in self.points if not p.ok}
        header = f"{'setting':>14} " + " ".join(f"{v:>10}" for v in variants)
        lines = [f"[{self.name}] steady-state throughput (Gbps)", header]
        for label, row in table.items():
            cells = []
            for v in variants:
                if (label, v) in failed:
                    cells.append(f"{'FAILED':>10}")
                else:
                    cells.append(f"{row.get(v, float('nan')):10.2f}")
            lines.append(f"{label:>14} " + " ".join(cells))
        for point in self.failures:
            lines.append(f"  [{point.label}/{point.variant}] {point.failure.render()}")
        return "\n".join(lines)


def _run_sweep(
    name: str,
    grid: List[Tuple[str, str, RDCNConfig]],
    weeks: int,
    warmup_weeks: int,
    n_flows: int,
    seed: int,
    executor: Optional[ExperimentExecutor],
    fault_plan: Optional[FaultPlan],
    watchdog_max_events: Optional[int],
    watchdog_max_wall_s: Optional[float],
    audit: Optional[str] = None,
) -> SweepResult:
    """Run every (label, variant, rdcn) point as one executor batch and
    assemble the result in grid order."""
    configs = [
        ExperimentConfig(
            variant=variant,
            rdcn=rdcn,
            n_flows=n_flows,
            weeks=weeks,
            warmup_weeks=warmup_weeks,
            seed=seed,
            fault_plan=fault_plan,
            watchdog_max_events=watchdog_max_events,
            watchdog_max_wall_s=watchdog_max_wall_s,
            audit=audit,
        )
        for _label, variant, rdcn in grid
    ]
    if executor is None:
        executor = ExperimentExecutor()
    runs = executor.run_batch(
        configs, labels=[f"{name}/{label}/{variant}" for label, variant, _ in grid]
    )
    result = SweepResult(name=name)
    for (label, variant, _rdcn), run in zip(grid, runs):
        if not run.ok:
            # A crashed run must surface as a failure, never as a
            # zero-throughput measurement.
            result.points.append(
                SweepPoint(
                    label=label,
                    variant=variant,
                    throughput_gbps=float("nan"),
                    retransmissions=0,
                    rtos=0,
                    failure=run.failure,
                )
            )
            continue
        result.points.append(
            SweepPoint(
                label=label,
                variant=variant,
                throughput_gbps=run.steady_state_throughput_gbps(),
                retransmissions=run.retransmissions,
                rtos=run.rtos,
            )
        )
    return result


@dataclass
class LoadPoint:
    """One (offered load, variant) workload-engine measurement."""

    load: float
    variant: str
    achieved_load: float = float("nan")
    started: int = 0
    completed: int = 0
    truncated: int = 0
    completion_rate: float = 0.0
    #: Serialized QuantileSketch states (fct_us / slowdown / per-bin)
    #: from the run — merge-ready across seeds and campaigns.
    sketches: Dict[str, dict] = field(default_factory=dict)
    summary: Optional[dict] = None
    failure: Optional[RunFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def percentile(self, sketch: str, label: str) -> Optional[float]:
        """One labeled percentile (e.g. ``("slowdown", "p99")``) from
        this point's serialized sketches; None when absent/empty."""
        if self.summary is None:
            return None
        family = self.summary.get(sketch)
        if not isinstance(family, dict):
            return None
        return family.get(label)


@dataclass
class LoadSweepResult:
    """A load x variant grid of workload-engine runs."""

    name: str
    points: List[LoadPoint] = field(default_factory=list)

    @property
    def failures(self) -> List[LoadPoint]:
        return [p for p in self.points if not p.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        variants = sorted({p.variant for p in self.points})
        by_cell = {(p.load, p.variant): p for p in self.points}
        loads = sorted({p.load for p in self.points})
        header = f"{'load':>6} " + " ".join(f"{v:>24}" for v in variants)
        lines = [
            f"[{self.name}] FCT slowdown p50/p99 (achieved load)",
            header,
        ]
        for load in loads:
            cells = []
            for variant in variants:
                point = by_cell.get((load, variant))
                if point is None:
                    cells.append(f"{'-':>24}")
                elif not point.ok:
                    cells.append(f"{'FAILED':>24}")
                else:
                    p50 = point.percentile("slowdown", "p50")
                    p99 = point.percentile("slowdown", "p99")
                    p50_s = f"{p50:.1f}" if p50 is not None else "-"
                    p99_s = f"{p99:.1f}" if p99 is not None else "-"
                    cells.append(
                        f"{p50_s + '/' + p99_s:>15} ({point.achieved_load:5.3f})"
                    )
            lines.append(f"{load:6.2f} " + " ".join(cells))
        for point in self.failures:
            lines.append(
                f"  [{point.load:.2f}/{point.variant}] {point.failure.render()}"
            )
        return "\n".join(lines)


def load_sweep(
    loads: Sequence[float] = (0.2, 0.4, 0.6),
    variants: Sequence[str] = ("cubic", "tdtcp"),
    cdf: str = "web-search",
    custom_cdf: Optional[tuple] = None,
    matrix: str = "permutation",
    hotspot_fraction: float = 0.5,
    record_cap: int = 0,
    max_flows: Optional[int] = None,
    weeks: int = 24,
    warmup_weeks: int = 8,
    seed: int = 1,
    executor: Optional[ExperimentExecutor] = None,
    fault_plan: Optional[FaultPlan] = None,
    watchdog_max_events: Optional[int] = None,
    watchdog_max_wall_s: Optional[float] = None,
    obs=None,
    fidelity: str = "packet",
) -> LoadSweepResult:
    """Offered load x variant grid through the workload engine.

    Every cell is one seeded engine run (Poisson empirical arrivals on
    the two-rack fabric); FCT/slowdown percentiles come from the run's
    streaming sketches, so memory stays flat however many flows a cell
    launches. Per-flow records stay off unless ``record_cap`` asks for
    a reservoir. ``fidelity="tiered"`` runs every cell through the
    fluid fast path (``repro.sim.fastpath``) — cells whose variant or
    setting the fluid model cannot represent fall back to packet
    fidelity per-run with a logged reason.
    """
    grid = [(load, variant) for load in loads for variant in variants]
    configs = [
        ExperimentConfig(
            variant=variant,
            weeks=weeks,
            warmup_weeks=warmup_weeks,
            seed=seed,
            fault_plan=fault_plan,
            watchdog_max_events=watchdog_max_events,
            watchdog_max_wall_s=watchdog_max_wall_s,
            collect_voq=False,
            collect_sequence=False,
            fidelity=fidelity,
            obs=obs.for_run(f"load_{load:.2f}_{variant}") if obs is not None else None,
            workload=WorkloadConfig(
                kind="empirical",
                cdf=cdf,
                custom_cdf=custom_cdf,
                load=load,
                matrix=matrix,
                hotspot_fraction=hotspot_fraction,
                record_cap=record_cap,
                max_flows=max_flows,
            ),
        )
        for load, variant in grid
    ]
    if executor is None:
        executor = ExperimentExecutor()
    runs = executor.run_batch(
        configs,
        labels=[f"load-sweep/{load:.2f}/{variant}" for load, variant in grid],
    )
    result = LoadSweepResult(name="load-sweep")
    for (load, variant), run in zip(grid, runs):
        if not run.ok:
            result.points.append(
                LoadPoint(load=load, variant=variant, failure=run.failure)
            )
            continue
        summary = run.workload_summary or {}
        result.points.append(
            LoadPoint(
                load=load,
                variant=variant,
                achieved_load=summary.get("achieved_load", float("nan")),
                started=summary.get("started", 0),
                completed=summary.get("completed", 0),
                truncated=run.truncated_flows,
                completion_rate=summary.get("completion_rate", 0.0),
                sketches={
                    name: state
                    for name, state in run.sketches.items()
                    if name.startswith(("fct_", "slowdown"))
                },
                summary=summary,
            )
        )
    return result


def duty_ratio_sweep(
    packet_days: Sequence[int] = (2, 6, 13),
    variants: Sequence[str] = ("cubic", "tdtcp"),
    weeks: int = 24,
    warmup_weeks: int = 8,
    n_flows: int = 8,
    seed: int = 1,
    executor: Optional[ExperimentExecutor] = None,
    fault_plan: Optional[FaultPlan] = None,
    watchdog_max_events: Optional[int] = None,
    watchdog_max_wall_s: Optional[float] = None,
) -> SweepResult:
    """Vary the packet:optical ratio (the paper's future work).

    ``packet_days=n`` gives an ``n:1`` schedule — the projection of an
    ``n+2``-rack rotor fabric.
    """
    base = RDCNConfig()
    grid: List[Tuple[str, str, RDCNConfig]] = []
    for n_packet in packet_days:
        pattern = tuple([0] * n_packet + [1])
        rdcn = replace(base, schedule_pattern=pattern)
        for variant in variants:
            grid.append((f"{n_packet}:1", variant, rdcn))
    return _run_sweep(
        "duty-ratio-sweep", grid, weeks, warmup_weeks, n_flows, seed,
        executor, fault_plan, watchdog_max_events, watchdog_max_wall_s,
    )


def day_length_sweep(
    day_us_values: Sequence[int] = (60, 180, 1000),
    variants: Sequence[str] = ("cubic", "tdtcp"),
    weeks: int = 24,
    warmup_weeks: int = 8,
    n_flows: int = 8,
    seed: int = 1,
    executor: Optional[ExperimentExecutor] = None,
    fault_plan: Optional[FaultPlan] = None,
    watchdog_max_events: Optional[int] = None,
    watchdog_max_wall_s: Optional[float] = None,
) -> SweepResult:
    """Vary the day duration across the §3.5 operating band.

    The packet RTT is ~100 us, so 60/180/1000 us days correspond to
    roughly 0.6x / 2x / 10x RTT per configuration.
    """
    base = RDCNConfig()
    grid: List[Tuple[str, str, RDCNConfig]] = []
    for day_us in day_us_values:
        rdcn = replace(base, day_ns=usec(day_us))
        for variant in variants:
            grid.append((f"{day_us}us", variant, rdcn))
    return _run_sweep(
        "day-length-sweep", grid, weeks, warmup_weeks, n_flows, seed,
        executor, fault_plan, watchdog_max_events, watchdog_max_wall_s,
    )


def buffer_economics_sweep(
    totals: Sequence[int] = (32, 64, 96),
    policies: Sequence[str] = BUFFER_POLICIES,
    variants: Sequence[str] = ("cubic", "dctcp", "tdtcp"),
    alpha: float = 1.0,
    weeks: int = 24,
    warmup_weeks: int = 8,
    n_flows: int = 8,
    seed: int = 1,
    executor: Optional[ExperimentExecutor] = None,
    fault_plan: Optional[FaultPlan] = None,
    watchdog_max_events: Optional[int] = None,
    watchdog_max_wall_s: Optional[float] = None,
    audit: Optional[str] = "fail",
) -> SweepResult:
    """Buffer economics: total ToR buffer x sharing policy x variant.

    Each setting gives every ToR the same total memory (``totals``
    packets per ToR) and varies only how the VOQs may claim it:
    ``static`` carves it per VOQ (today's behavior), ``complete-sharing``
    lets any VOQ consume the whole pool, ``dynamic-threshold`` admits
    while a VOQ stays below ``alpha x free_pool`` (Choudhury-Hahne).
    Labels are ``{total}x{tag}`` (e.g. ``96xdyn``).

    Pool conservation is audited on every point (``audit="fail"`` by
    default): a pooled run whose used-cell counter drifts from the sum
    of member queue lengths surfaces as a FAILED point, never as a
    throughput number.
    """
    for policy in policies:
        if policy not in BUFFER_POLICIES:
            raise ValueError(
                f"unknown buffer policy {policy!r}; expected one of {BUFFER_POLICIES}"
            )
    base = RDCNConfig()
    grid: List[Tuple[str, str, RDCNConfig]] = []
    for total in totals:
        for policy in policies:
            # Same per-ToR memory under every policy: static carves the
            # total into the (single cross-rack) VOQ; pooled policies
            # back it with a shared pool of the same size.
            rdcn = replace(
                base,
                voq_capacity=total,
                buffer_policy=policy,
                buffer_alpha=alpha,
                buffer_total_capacity=None if policy == "static" else total,
            )
            label = f"{total}x{POLICY_TAGS[policy]}"
            for variant in variants:
                grid.append((label, variant, rdcn))
    return _run_sweep(
        "buffer-economics-sweep", grid, weeks, warmup_weeks, n_flows, seed,
        executor, fault_plan, watchdog_max_events, watchdog_max_wall_s,
        audit=audit,
    )
