"""Parameter sweeps beyond the paper's headline setting.

Two studies the paper explicitly defers:

* §5.1: "TDTCP has the most advantage over other TCP variants with
  ratios on this order [6:1]. We leave it as future work to study
  TDTCP's performance when operating under extreme ratios." —
  :func:`duty_ratio_sweep` varies the packet:optical day ratio.
* §3.5: "TDTCP is most suitable to operate in networks where the
  periods between TDN changes are 1-100x path RTT." —
  :func:`day_length_sweep` varies the day duration across that band.

Every (setting, variant) point is an independent seeded run, so both
sweeps execute as one :class:`ExperimentExecutor` batch — pass
``executor`` to parallelize/cache them. A crashed run is recorded as a
failed :class:`SweepPoint` (structured failure attached, **no**
throughput number), never as a silent ~0 Gbps measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.executor import ExperimentExecutor
from repro.experiments.runner import RunFailure
from repro.faults.plan import FaultPlan
from repro.rdcn.config import RDCNConfig
from repro.units import usec


@dataclass
class SweepPoint:
    """One (setting, variant) measurement. ``failure`` set means the
    run crashed: there is no throughput to report (NaN placeholder)."""

    label: str
    variant: str
    throughput_gbps: float
    retransmissions: int
    rtos: int
    failure: Optional[RunFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class SweepResult:
    name: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def failures(self) -> List[SweepPoint]:
        return [p for p in self.points if not p.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_label(self) -> Dict[str, Dict[str, float]]:
        """setting -> variant -> throughput; failed points are left out
        (their absence, not a zero, marks them)."""
        out: Dict[str, Dict[str, float]] = {}
        for p in self.points:
            out.setdefault(p.label, {})
            if p.ok:
                out[p.label][p.variant] = p.throughput_gbps
        return out

    def render(self) -> str:
        table = self.by_label()
        variants = sorted({p.variant for p in self.points})
        failed = {(p.label, p.variant) for p in self.points if not p.ok}
        header = f"{'setting':>14} " + " ".join(f"{v:>10}" for v in variants)
        lines = [f"[{self.name}] steady-state throughput (Gbps)", header]
        for label, row in table.items():
            cells = []
            for v in variants:
                if (label, v) in failed:
                    cells.append(f"{'FAILED':>10}")
                else:
                    cells.append(f"{row.get(v, float('nan')):10.2f}")
            lines.append(f"{label:>14} " + " ".join(cells))
        for point in self.failures:
            lines.append(f"  [{point.label}/{point.variant}] {point.failure.render()}")
        return "\n".join(lines)


def _run_sweep(
    name: str,
    grid: List[Tuple[str, str, RDCNConfig]],
    weeks: int,
    warmup_weeks: int,
    n_flows: int,
    seed: int,
    executor: Optional[ExperimentExecutor],
    fault_plan: Optional[FaultPlan],
    watchdog_max_events: Optional[int],
    watchdog_max_wall_s: Optional[float],
) -> SweepResult:
    """Run every (label, variant, rdcn) point as one executor batch and
    assemble the result in grid order."""
    configs = [
        ExperimentConfig(
            variant=variant,
            rdcn=rdcn,
            n_flows=n_flows,
            weeks=weeks,
            warmup_weeks=warmup_weeks,
            seed=seed,
            fault_plan=fault_plan,
            watchdog_max_events=watchdog_max_events,
            watchdog_max_wall_s=watchdog_max_wall_s,
        )
        for _label, variant, rdcn in grid
    ]
    if executor is None:
        executor = ExperimentExecutor()
    runs = executor.run_batch(
        configs, labels=[f"{name}/{label}/{variant}" for label, variant, _ in grid]
    )
    result = SweepResult(name=name)
    for (label, variant, _rdcn), run in zip(grid, runs):
        if not run.ok:
            # A crashed run must surface as a failure, never as a
            # zero-throughput measurement.
            result.points.append(
                SweepPoint(
                    label=label,
                    variant=variant,
                    throughput_gbps=float("nan"),
                    retransmissions=0,
                    rtos=0,
                    failure=run.failure,
                )
            )
            continue
        result.points.append(
            SweepPoint(
                label=label,
                variant=variant,
                throughput_gbps=run.steady_state_throughput_gbps(),
                retransmissions=run.retransmissions,
                rtos=run.rtos,
            )
        )
    return result


def duty_ratio_sweep(
    packet_days: Sequence[int] = (2, 6, 13),
    variants: Sequence[str] = ("cubic", "tdtcp"),
    weeks: int = 24,
    warmup_weeks: int = 8,
    n_flows: int = 8,
    seed: int = 1,
    executor: Optional[ExperimentExecutor] = None,
    fault_plan: Optional[FaultPlan] = None,
    watchdog_max_events: Optional[int] = None,
    watchdog_max_wall_s: Optional[float] = None,
) -> SweepResult:
    """Vary the packet:optical ratio (the paper's future work).

    ``packet_days=n`` gives an ``n:1`` schedule — the projection of an
    ``n+2``-rack rotor fabric.
    """
    base = RDCNConfig()
    grid: List[Tuple[str, str, RDCNConfig]] = []
    for n_packet in packet_days:
        pattern = tuple([0] * n_packet + [1])
        rdcn = replace(base, schedule_pattern=pattern)
        for variant in variants:
            grid.append((f"{n_packet}:1", variant, rdcn))
    return _run_sweep(
        "duty-ratio-sweep", grid, weeks, warmup_weeks, n_flows, seed,
        executor, fault_plan, watchdog_max_events, watchdog_max_wall_s,
    )


def day_length_sweep(
    day_us_values: Sequence[int] = (60, 180, 1000),
    variants: Sequence[str] = ("cubic", "tdtcp"),
    weeks: int = 24,
    warmup_weeks: int = 8,
    n_flows: int = 8,
    seed: int = 1,
    executor: Optional[ExperimentExecutor] = None,
    fault_plan: Optional[FaultPlan] = None,
    watchdog_max_events: Optional[int] = None,
    watchdog_max_wall_s: Optional[float] = None,
) -> SweepResult:
    """Vary the day duration across the §3.5 operating band.

    The packet RTT is ~100 us, so 60/180/1000 us days correspond to
    roughly 0.6x / 2x / 10x RTT per configuration.
    """
    base = RDCNConfig()
    grid: List[Tuple[str, str, RDCNConfig]] = []
    for day_us in day_us_values:
        rdcn = replace(base, day_ns=usec(day_us))
        for variant in variants:
            grid.append((f"{day_us}us", variant, rdcn))
    return _run_sweep(
        "day-length-sweep", grid, weeks, warmup_weeks, n_flows, seed,
        executor, fault_plan, watchdog_max_events, watchdog_max_wall_s,
    )
