"""Parameter sweeps beyond the paper's headline setting.

Two studies the paper explicitly defers:

* §5.1: "TDTCP has the most advantage over other TCP variants with
  ratios on this order [6:1]. We leave it as future work to study
  TDTCP's performance when operating under extreme ratios." —
  :func:`duty_ratio_sweep` varies the packet:optical day ratio.
* §3.5: "TDTCP is most suitable to operate in networks where the
  periods between TDN changes are 1-100x path RTT." —
  :func:`day_length_sweep` varies the day duration across that band.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.rdcn.config import RDCNConfig
from repro.units import usec


@dataclass
class SweepPoint:
    """One (setting, variant) measurement."""

    label: str
    variant: str
    throughput_gbps: float
    retransmissions: int
    rtos: int


@dataclass
class SweepResult:
    name: str
    points: List[SweepPoint] = field(default_factory=list)

    def by_label(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for p in self.points:
            out.setdefault(p.label, {})[p.variant] = p.throughput_gbps
        return out

    def render(self) -> str:
        table = self.by_label()
        variants = sorted({p.variant for p in self.points})
        header = f"{'setting':>14} " + " ".join(f"{v:>10}" for v in variants)
        lines = [f"[{self.name}] steady-state throughput (Gbps)", header]
        for label, row in table.items():
            cells = " ".join(f"{row.get(v, float('nan')):10.2f}" for v in variants)
            lines.append(f"{label:>14} {cells}")
        return "\n".join(lines)


def _run_point(
    result: SweepResult,
    label: str,
    variant: str,
    rdcn: RDCNConfig,
    weeks: int,
    warmup_weeks: int,
    n_flows: int,
    seed: int,
) -> None:
    cfg = ExperimentConfig(
        variant=variant,
        rdcn=rdcn,
        n_flows=n_flows,
        weeks=weeks,
        warmup_weeks=warmup_weeks,
        seed=seed,
    )
    run = run_experiment(cfg)
    result.points.append(
        SweepPoint(
            label=label,
            variant=variant,
            throughput_gbps=run.steady_state_throughput_gbps(),
            retransmissions=run.retransmissions,
            rtos=run.rtos,
        )
    )


def duty_ratio_sweep(
    packet_days: Sequence[int] = (2, 6, 13),
    variants: Sequence[str] = ("cubic", "tdtcp"),
    weeks: int = 24,
    warmup_weeks: int = 8,
    n_flows: int = 8,
    seed: int = 1,
) -> SweepResult:
    """Vary the packet:optical ratio (the paper's future work).

    ``packet_days=n`` gives an ``n:1`` schedule — the projection of an
    ``n+2``-rack rotor fabric.
    """
    result = SweepResult(name="duty-ratio-sweep")
    base = RDCNConfig()
    for n_packet in packet_days:
        pattern = tuple([0] * n_packet + [1])
        rdcn = replace(base, schedule_pattern=pattern)
        for variant in variants:
            _run_point(result, f"{n_packet}:1", variant, rdcn, weeks, warmup_weeks, n_flows, seed)
    return result


def day_length_sweep(
    day_us_values: Sequence[int] = (60, 180, 1000),
    variants: Sequence[str] = ("cubic", "tdtcp"),
    weeks: int = 24,
    warmup_weeks: int = 8,
    n_flows: int = 8,
    seed: int = 1,
) -> SweepResult:
    """Vary the day duration across the §3.5 operating band.

    The packet RTT is ~100 us, so 60/180/1000 us days correspond to
    roughly 0.6x / 2x / 10x RTT per configuration.
    """
    result = SweepResult(name="day-length-sweep")
    base = RDCNConfig()
    for day_us in day_us_values:
        rdcn = replace(base, day_ns=usec(day_us))
        for variant in variants:
            _run_point(result, f"{day_us}us", variant, rdcn, weeks, warmup_weeks, n_flows, seed)
    return result
