"""MPTCP with the paper's ``tdm_schd`` scheduler (§2.2).

Two subflows, each a full TCP connection with its own sequence space,
pinned to one network each: subflow 0 to the packet network (TDN 0),
subflow 1 to the optical network (TDN 1). A data-level (DSS) sequence
space maps application bytes onto subflows. The tdm scheduler only lets
the subflow matching the active TDN transmit — data *and* pure ACKs —
which is precisely what produces the flow-control stalls the paper
measures; connection-level reinjection (RTO-triggered) remaps stalled
data onto the active subflow at the cost of duplicate transmission.
"""

from repro.mptcp.scheduler import TdmScheduler
from repro.mptcp.subflow import MPTCPSubflow
from repro.mptcp.connection import MPTCPConnection, create_mptcp_pair

__all__ = [
    "TdmScheduler",
    "MPTCPSubflow",
    "MPTCPConnection",
    "create_mptcp_pair",
]
