"""The ``tdm_schd`` packet scheduler (§2.2).

The paper extends MPTCP with a scheduler that steers packets between
two subflows according to the RDCN schedule: when the packet network is
active, everything goes to subflow 0 (pinned to the packet network),
and vice versa. Nights allow the subflow of the *previous* day to keep
transmitting into the VOQ (the host does not know the fabric is
reconfiguring — it only sees day-start notifications).
"""

from __future__ import annotations


class TdmScheduler:
    """Maps the currently active TDN to the one subflow allowed to send."""

    def __init__(self, n_subflows: int = 2):
        if n_subflows < 1:
            raise ValueError("need at least one subflow")
        self.n_subflows = n_subflows
        self.active_tdn: int = 0

    def set_active_tdn(self, tdn_id: int) -> None:
        self.active_tdn = tdn_id

    def allows(self, subflow_index: int) -> bool:
        """May this subflow transmit right now?"""
        if self.n_subflows == 1:
            return True
        return subflow_index == self.active_tdn

    def active_subflow(self) -> int:
        return min(self.active_tdn, self.n_subflows - 1)
