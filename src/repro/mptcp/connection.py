"""The MPTCP connection: data-level sequencing and reinjection.

The connection coordinates N subflows (the paper uses two):

* sender side — a DSS sequence space (``dss_una``/``dss_nxt``), a
  shared send buffer, chunk assignment to whichever subflow the tdm
  scheduler allows, and connection-level reinjection of chunks stuck on
  inactive subflows;
* receiver side — data-level reassembly whose ``rcv_nxt`` is the DSS
  ack carried on every subflow ACK, plus the shared receive window.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.mptcp.scheduler import TdmScheduler
from repro.net.node import Host
from repro.net.packet import TDNNotification
from repro.sim.simulator import Simulator
from repro.tcp.buffers import ReceiveBuffer, SendBuffer
from repro.tcp.config import TCPConfig


class ChunkState:
    """One DSS range assigned to a subflow."""

    __slots__ = ("dss_seq", "length", "subflow", "assigned_ns", "reinjected")

    def __init__(self, dss_seq: int, length: int, subflow: int, assigned_ns: int):
        self.dss_seq = dss_seq
        self.length = length
        self.subflow = subflow
        self.assigned_ns = assigned_ns
        self.reinjected = False

    @property
    def end(self) -> int:
        return self.dss_seq + self.length


class MPTCPStats:
    """Connection-level counters."""

    def __init__(self) -> None:
        self.bytes_delivered = 0
        self.chunks_assigned = 0
        self.reinjections = 0
        self.reinjected_bytes = 0
        self.window_stalls = 0


class MPTCPConnection:
    """Coordinator over subflows (it is not itself a TCP endpoint)."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        remote_addr: str,
        cc_name: str = "cubic",
        config: Optional[TCPConfig] = None,
        n_subflows: int = 2,
        base_port: int = 5001,
        local_ports: Optional[List[int]] = None,
        remote_ports: Optional[List[int]] = None,
        subscribe_notifications: bool = True,
        name: Optional[str] = None,
    ):
        from repro.mptcp.subflow import MPTCPSubflow  # local import: cycle

        self.sim = sim
        self.host = host
        self.remote_addr = remote_addr
        self.config = config or TCPConfig()
        self.name = name or f"mptcp-{host.address}"
        self.scheduler = TdmScheduler(n_subflows)
        self.stats = MPTCPStats()

        # Sender-side DSS state.
        self.dss_una = 0
        self.dss_nxt = 0
        self.send_buffer = SendBuffer(
            capacity_bytes=self.config.send_buffer_packets * self.config.mss
        )
        self.chunks: "OrderedDict[int, ChunkState]" = OrderedDict()
        self._reinject_queue: Deque[ChunkState] = deque()

        # Receiver-side DSS state.
        self.data_rcv = ReceiveBuffer(initial_rcv_nxt=0)
        self.on_delivered: Optional[Callable[[int, int], None]] = None

        # §3.2 degraded-signal tolerance: garbage TDN ids are counted
        # and ignored instead of steering the scheduler off the map.
        self.stale_notifications = 0

        self.subflows: List[MPTCPSubflow] = []
        for index in range(n_subflows):
            local_port = local_ports[index] if local_ports else base_port + index
            remote_port = remote_ports[index] if remote_ports else base_port + index
            self.subflows.append(
                MPTCPSubflow(
                    sim,
                    host,
                    remote_addr,
                    remote_port=remote_port,
                    parent=self,
                    index=index,
                    local_port=local_port,
                    cc_name=cc_name,
                    config=self.config,
                )
            )
        if subscribe_notifications:
            host.subscribe_tdn_changes(self._on_tdn_notification)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def listen(self) -> None:
        """Passive-open every subflow."""
        for subflow in self.subflows:
            subflow.listen()

    def connect(self) -> None:
        """Active-open every subflow (MP_CAPABLE/MP_JOIN abstracted)."""
        for subflow in self.subflows:
            subflow.connect()

    def start_bulk(self) -> None:
        """Endless application stream (the paper's long-lived flow)."""
        self.send_buffer.unlimited = True
        self.pump()

    def write(self, nbytes: int) -> None:
        """Queue application bytes at the data (DSS) level."""
        self.send_buffer.write(nbytes)
        self.pump()

    # ------------------------------------------------------------------
    # Schedule awareness (tdm_schd)
    # ------------------------------------------------------------------
    def _on_tdn_notification(self, notification: TDNNotification) -> None:
        from repro.core.tdtcp import MAX_TDN_ID

        if notification.tdn_id < 0 or notification.tdn_id > MAX_TDN_ID:
            self.stale_notifications += 1
            return
        self.set_active_tdn(notification.tdn_id)

    def set_active_tdn(self, tdn_id: int) -> None:
        """Steer the tdm scheduler to the newly active TDN and wake the
        matching subflow (flushing its suppressed ACK)."""
        self.scheduler.set_active_tdn(tdn_id)
        for subflow in self.subflows:
            subflow.on_schedule_change()
        self.pump()

    # ------------------------------------------------------------------
    # Sender side: chunk assignment
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Let every allowed subflow transmit what it can."""
        for subflow in self.subflows:
            if subflow.state == "established" and self.scheduler.allows(subflow.index):
                subflow._maybe_send()

    def _window_limit_bytes(self) -> int:
        peer_rwnd = min(
            (sf.peer_rwnd for sf in self.subflows if sf.state == "established"),
            default=2 ** 40,
        )
        capacity = self.send_buffer.capacity_bytes or 2 ** 40
        return min(peer_rwnd, capacity)

    def next_chunk_for(self, subflow_index: int, mss: int) -> Optional[Tuple[int, int]]:
        """A DSS chunk for an allowed subflow, reinjections first."""
        while self._reinject_queue:
            chunk = self._reinject_queue.popleft()
            if chunk.end <= self.dss_una:
                continue  # already acknowledged, nothing to resend
            chunk.subflow = subflow_index
            self.stats.reinjections += 1
            self.stats.reinjected_bytes += chunk.length
            return (chunk.dss_seq, chunk.length)
        available = self.send_buffer.available_beyond(self.dss_nxt)
        if available <= 0:
            return None
        if self.dss_nxt - self.dss_una + mss > self._window_limit_bytes():
            self.stats.window_stalls += 1
            return None
        length = min(mss, available)
        chunk = ChunkState(self.dss_nxt, length, subflow_index, self.sim.now)
        self.chunks[chunk.dss_seq] = chunk
        self.dss_nxt += length
        self.stats.chunks_assigned += 1
        return (chunk.dss_seq, chunk.length)

    def update_dss_ack(self, dss_ack: int) -> None:
        """Advance the data-level cumulative ACK, freeing chunks and the
        shared send window."""
        if dss_ack <= self.dss_una:
            return
        self.dss_una = dss_ack
        for dss_seq in list(self.chunks.keys()):
            chunk = self.chunks[dss_seq]
            if chunk.end <= dss_ack:
                del self.chunks[dss_seq]
            else:
                break
        self.pump()

    def request_reinjection(self, from_subflow: int) -> None:
        """RTO-triggered connection-level reinjection (§2.2): move the
        stalled subflow's outstanding chunks onto the reinject queue."""
        queued = False
        for chunk in self.chunks.values():
            if chunk.subflow == from_subflow and not chunk.reinjected:
                chunk.reinjected = True
                self._reinject_queue.append(chunk)
                queued = True
        if queued:
            self.pump()

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def on_subflow_data(self, dss_seq: int, length: int) -> None:
        """Receiver side: merge subflow payload into the data-level
        reassembly and fire the delivery callback on progress."""
        delivered = self.data_rcv.receive(dss_seq, dss_seq + length)
        if delivered > 0:
            self.stats.bytes_delivered += delivered
            if self.on_delivered is not None:
                self.on_delivered(self.sim.now, self.data_rcv.rcv_nxt)

    def data_rcv_nxt(self) -> int:
        """Data-level cumulative ACK value carried on every subflow ACK."""
        return self.data_rcv.rcv_nxt

    def advertised_window(self) -> int:
        """Connection-level receive window (shared across subflows)."""
        window = self.config.rwnd_packets * self.config.mss - self.data_rcv.ooo_bytes
        return max(window, self.config.mss)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return all(sf.state == "established" for sf in self.subflows)

    def snapshot(self) -> dict:
        """Loggable view of the connection and its subflows."""
        return {
            "name": self.name,
            "dss_una": self.dss_una,
            "dss_nxt": self.dss_nxt,
            "data_rcv_nxt": self.data_rcv.rcv_nxt,
            "active_tdn": self.scheduler.active_tdn,
            "outstanding_chunks": len(self.chunks),
            "reinjections": self.stats.reinjections,
            "subflows": [sf.snapshot() for sf in self.subflows],
        }


def create_mptcp_pair(
    sim: Simulator,
    client_host: Host,
    server_host: Host,
    cc_name: str = "cubic",
    config: Optional[TCPConfig] = None,
    n_subflows: int = 2,
    base_port: int = 5001,
    connect: bool = True,
    subscribe_notifications: bool = True,
) -> Tuple[MPTCPConnection, MPTCPConnection]:
    """(client, server) MPTCP connections with matched subflow ports.

    Subflow ``i`` runs client_ports[i] <-> base_port + i. The server
    listens; when ``connect`` is True the client opens all subflows.
    """
    client_ports = [client_host.allocate_port() for _ in range(n_subflows)]
    server_ports = [base_port + i for i in range(n_subflows)]
    client = MPTCPConnection(
        sim,
        client_host,
        server_host.address,
        cc_name=cc_name,
        config=config,
        n_subflows=n_subflows,
        local_ports=client_ports,
        remote_ports=server_ports,
        subscribe_notifications=subscribe_notifications,
    )
    server = MPTCPConnection(
        sim,
        server_host,
        client_host.address,
        cc_name=cc_name,
        config=config,
        n_subflows=n_subflows,
        local_ports=server_ports,
        remote_ports=client_ports,
        subscribe_notifications=subscribe_notifications,
    )
    server.listen()
    if connect:
        client.connect()
    return client, server
