"""One MPTCP subflow: a full TCP connection pinned to one network.

The subflow has its own sequence space, congestion control, and loss
recovery (inherited unchanged from :class:`TCPConnection`). What it
adds:

* data is *pulled* from the parent connection as DSS chunks instead of
  a local application buffer;
* the DSS mapping rides on data segments, the DSS ack on every ACK;
* the tdm scheduler gates transmission — data sending is skipped and
  pure ACKs are suppressed (and regenerated on reactivation) while the
  subflow's TDN is inactive, which is the root cause of the §2.2
  stalls;
* an RTO that fires while gated does not burn the window on a path
  that is simply down — it asks the parent for connection-level
  reinjection instead, exactly the workaround the paper describes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.net.node import Host
from repro.net.packet import TCPSegment
from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.tcp.connection import SegmentState, TCPConnection

if TYPE_CHECKING:  # pragma: no cover
    from repro.mptcp.connection import MPTCPConnection


class MPTCPSubflow(TCPConnection):
    """A subflow; ``index`` is also the TDN it is pinned to."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        remote_addr: str,
        remote_port: int,
        parent: "MPTCPConnection",
        index: int,
        local_port: Optional[int] = None,
        cc_name: str = "cubic",
        config: Optional[TCPConfig] = None,
    ):
        self.parent = parent
        self.index = index
        super().__init__(
            sim,
            host,
            remote_addr,
            remote_port,
            local_port=local_port,
            cc_name=cc_name,
            config=config,
            name=f"{host.address}:sf{index}",
        )
        # subflow seq -> (dss_seq, length) for transmitted chunks.
        self._dss_map: Dict[int, Tuple[int, int]] = {}
        self._ack_suppressed = False
        self._handshake_ack_pass = False
        self.gated_rtos = 0

    # ------------------------------------------------------------------
    # Scheduler gating
    # ------------------------------------------------------------------
    @property
    def allowed(self) -> bool:
        return self.parent.scheduler.allows(self.index)

    def on_schedule_change(self) -> None:
        """Called by the parent when the active TDN changes."""
        if self.allowed:
            if self._ack_suppressed:
                self._ack_suppressed = False
                if self.state in ("established", "close-wait"):
                    self._send_ack()
            self._maybe_send()

    def _maybe_send(self) -> None:
        if not self.allowed:
            return
        super()._maybe_send()

    def _send_packet(self, pkt: TCPSegment) -> None:
        established = self.state in ("established", "close-wait")
        is_pure_ack = pkt.payload_len == 0 and not pkt.syn and not pkt.fin
        if is_pure_ack and self._handshake_ack_pass:
            # The handshake-completing ACK is connection setup, not
            # scheduled data traffic: it always goes out.
            super()._send_packet(pkt)
            return
        if not self.allowed and established and is_pure_ack:
            # tdm_schd blocks pure ACKs on inactive subflows; the latest
            # cumulative state is regenerated when the TDN returns.
            # Handshake control packets are not subject to the data
            # scheduler and always go out.
            self._ack_suppressed = True
            return
        super()._send_packet(pkt)

    def _on_tlp_timer(self) -> None:
        if not self.allowed:
            return
        super()._on_tlp_timer()

    def _handle_syn_ack(self, pkt: TCPSegment) -> None:
        self._handshake_ack_pass = True
        try:
            super()._handle_syn_ack(pkt)
        finally:
            self._handshake_ack_pass = False

    def _on_rto(self) -> None:
        # A vanilla TCP subflow cannot tell "path temporarily inactive"
        # from congestion: when the receiver is blocked from ACKing on
        # this subflow's TDN (§2.2), the RTO fires anyway, collapses the
        # window, and marks the outstanding data lost. The stack then
        # asks the connection level to reinject that data on the other
        # subflow — progress resumes at the cost of duplicates, exactly
        # the overhead the paper measures. (TDTCP's unified sequence
        # space avoids this entirely: ACKs return on whichever TDN is
        # active, so its RTO is never starved, §3.3.)
        if not self.allowed:
            self.gated_rtos += 1
        super()._on_rto()
        self.parent.request_reinjection(self.index)

    # ------------------------------------------------------------------
    # Data sourcing: pull DSS chunks from the parent
    # ------------------------------------------------------------------
    def _send_new_segment(self) -> bool:
        chunk = self.parent.next_chunk_for(self.index, self.config.mss)
        if chunk is None:
            return False
        dss_seq, length = chunk
        seg = SegmentState(seq=self.snd_nxt, payload_len=length)
        seg.tdn_id = 0  # a subflow is single-path internally
        self.segments[seg.seq] = seg
        self._dss_map[seg.seq] = (dss_seq, length)
        self.snd_nxt = seg.end_seq
        self._transmit(seg)
        return True

    def _decorate_data(self, pkt: TCPSegment, seg: SegmentState) -> None:
        mapping = self._dss_map.get(seg.seq)
        if mapping is not None:
            pkt.dss_seq = mapping[0]
        pkt.subflow_id = self.index
        pkt.dss_ack = self.parent.data_rcv_nxt()

    def _decorate_ack(self, ack: TCPSegment) -> None:
        ack.subflow_id = self.index
        ack.dss_ack = self.parent.data_rcv_nxt()

    def _advertised_window(self) -> int:
        # MPTCP advertises the connection-level receive window.
        return self.parent.advertised_window()

    # ------------------------------------------------------------------
    # Receive path: feed DSS data / acks to the parent
    # ------------------------------------------------------------------
    def _handle_data(self, pkt: TCPSegment) -> None:
        if pkt.dss_seq is not None and pkt.payload_len > 0:
            self.parent.on_subflow_data(pkt.dss_seq, pkt.payload_len)
        super()._handle_data(pkt)

    def _handle_ack(self, pkt: TCPSegment) -> None:
        if pkt.dss_ack is not None:
            self.parent.update_dss_ack(pkt.dss_ack)
        super()._handle_ack(pkt)

    def _collect_cum_acked(self, ack: int):
        acked = super()._collect_cum_acked(ack)
        for seg in acked:
            self._dss_map.pop(seg.seq, None)
        return acked
