"""The reTCP dynamic buffer controller (``retcpdyn``, §5.2).

"The ToR enlarges its VOQ size to 50 packets at 150 microseconds ahead
of the TDN change, and notifies reTCP to ramp up its congestion window.
Thus, reTCP is able to pre-fill the VOQ and starts bursting at high
bandwidth immediately after the TDN switch."

The controller subscribes to schedule lead events: ahead of each
optical day it resizes every registered VOQ and calls ``ramp_up()`` on
every registered sender; when the optical day ends it restores the VOQ
size and calls ``ramp_down()``.
"""

from __future__ import annotations

from typing import List

from repro.rdcn.fabric import RackUplink
from repro.rdcn.schedule import ScheduleDriver
from repro.retcp.retcp import ReTCPConnection
from repro.sim.simulator import Simulator


class DynamicBufferController:
    """Schedules VOQ resizing and sender ramping around circuit days."""

    def __init__(
        self,
        sim: Simulator,
        driver: ScheduleDriver,
        uplinks: List[RackUplink],
        normal_capacity: int = 16,
        circuit_capacity: int = 50,
        lead_ns: int = 150_000,
        optical_tdn: int = 1,
    ):
        self.sim = sim
        self.uplinks = list(uplinks)
        self.normal_capacity = normal_capacity
        self.circuit_capacity = circuit_capacity
        self.optical_tdn = optical_tdn
        self.connections: List[ReTCPConnection] = []
        self._last_tdn: int = 0
        self.resizes = 0
        # Shared-buffer fabrics: the managed VOQs draw from per-ToR
        # pools, so the pre-circuit enlargement must grow the *pool*
        # (resize_total also lifts each member queue's hard cap) — a
        # per-queue resize alone would leave the pool the binding
        # constraint and the pre-fill impossible. One entry per
        # distinct pool: (pool, number of managed queues it backs).
        pools: dict = {}
        for uplink in self.uplinks:
            queue = uplink.queue
            if queue._pooled:
                entry = pools.setdefault(id(queue.pool), [queue.pool, 0])
                entry[1] += 1
        self._pools = [tuple(entry) for entry in pools.values()]
        driver.on_day_lead(lead_ns, self._before_circuit, tdn_id=optical_tdn)
        driver.on_day_start(self._day_started)
        driver.on_night_start(self._night_started)

    def register(self, connection: ReTCPConnection) -> None:
        """Manage a sender: disables its in-band mark reaction (the
        controller's explicit signals are strictly earlier)."""
        connection.react_to_marks = False
        self.connections.append(connection)

    # ------------------------------------------------------------------
    # Schedule hooks
    # ------------------------------------------------------------------
    def _before_circuit(self, tdn_id: int, day_index: int) -> None:
        delta = self.circuit_capacity - self.normal_capacity
        for pool, n_queues in self._pools:
            pool.resize_total(pool.total + delta * n_queues)
        for uplink in self.uplinks:
            if not uplink.queue._pooled:
                uplink.queue.resize(self.circuit_capacity)
        self.resizes += 1
        for connection in self.connections:
            connection.ramp_up()

    def _day_started(self, tdn_id: int, day_index: int) -> None:
        self._last_tdn = tdn_id

    def _night_started(self, day_index: int) -> None:
        if self._last_tdn != self.optical_tdn:
            return
        # The circuit day just ended: shrink the VOQ and ramp down.
        delta = self.circuit_capacity - self.normal_capacity
        for pool, n_queues in self._pools:
            pool.resize_total(pool.total - delta * n_queues)
        for uplink in self.uplinks:
            if not uplink.queue._pooled:
                uplink.queue.resize(self.normal_capacity)
        for connection in self.connections:
            connection.ramp_down()
