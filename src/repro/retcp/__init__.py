"""reTCP (Mukerjee et al., NSDI 2020) — the RDCN-specific baseline.

reTCP relies on explicit switch support: ToRs mark packets that
traverse the optical circuit, and senders react to the mark's
appearance/disappearance by multiplicatively scaling their congestion
window. The "dynamic buffer" variant (``retcpdyn``) additionally has
the ToR enlarge its VOQ ahead of each circuit day and explicitly
notify senders to ramp up early, pre-filling the queue so transmission
starts at circuit rate immediately.
"""

from repro.retcp.retcp import ReTCPConnection
from repro.retcp.dynbuf import DynamicBufferController

__all__ = ["ReTCPConnection", "DynamicBufferController"]
