"""The reTCP sender: explicit circuit marks drive cwnd scaling.

Mechanism (per the NSDI '20 paper, §6 of the TDTCP paper):

* ToRs set a mark on packets that traverse the circuit network; the
  receiver echoes the mark on ACKs (both already modelled in
  :mod:`repro.rdcn.fabric` / the base connection).
* When marked ACKs start arriving (circuit up), the sender multiplies
  ``cwnd`` by ``alpha``; when they stop (circuit down), it restores the
  pre-ramp window.
* With dynamic buffers, the ToR's advance notification calls
  :meth:`ramp_up` *before* the circuit day so the enlarged VOQ is
  pre-filled.
"""

from __future__ import annotations

from typing import Optional

from repro.net.node import Host
from repro.net.packet import TCPSegment
from repro.sim.simulator import Simulator
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection


class ReTCPConnection(TCPConnection):
    """Single-path TCP plus reTCP's explicit-notification window scaling."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        remote_addr: str,
        remote_port: int,
        local_port: Optional[int] = None,
        cc_name: str = "cubic",
        config: Optional[TCPConfig] = None,
        name: Optional[str] = None,
        alpha: float = 8.0,
        react_to_marks: bool = True,
    ):
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1")
        super().__init__(
            sim,
            host,
            remote_addr,
            remote_port,
            local_port=local_port,
            cc_name=cc_name,
            config=config,
            name=name,
        )
        self.alpha = alpha
        # In-band reaction to circuit-mark echoes. The dynamic-buffer
        # controller disables this and drives ramping out of band.
        self.react_to_marks = react_to_marks
        self.circuit_active = False
        self._saved_cwnd: Optional[float] = None
        self.ramp_ups = 0
        self.ramp_downs = 0
        # Hysteresis: ACKs for packets that crossed TDNs interleave
        # marked/unmarked echoes around every transition; require a few
        # consecutive identical echoes before flipping state.
        self.mark_hysteresis = 3
        self._echo_streak = 0
        self._echo_value = False

    # ------------------------------------------------------------------
    # Window scaling
    # ------------------------------------------------------------------
    def ramp_up(self) -> None:
        """Circuit (about to become) available: open the window."""
        if self.circuit_active:
            return
        self.circuit_active = True
        path = self.current_path
        if path.ca_state.in_recovery:
            # Scaling a window mid-recovery fights the loss response;
            # remember only that the circuit is up.
            self._saved_cwnd = None
            return
        self._saved_cwnd = path.cc.cwnd
        path.cc.cwnd = path.cc.cwnd * self.alpha
        self.ramp_ups += 1
        self._maybe_send()

    def ramp_down(self) -> None:
        """Circuit gone: restore the pre-circuit window."""
        if not self.circuit_active:
            return
        self.circuit_active = False
        path = self.current_path
        if self._saved_cwnd is not None:
            path.cc.cwnd = max(
                min(self._saved_cwnd, path.cc.cwnd / self.alpha), path.cc.min_cwnd
            )
            # The loss response must not be undone by a later recovery
            # exit deflating to a circuit-era ssthresh.
            path.cc.ssthresh = min(path.cc.ssthresh, max(path.cc.cwnd, path.cc.min_cwnd))
        self._saved_cwnd = None
        self.ramp_downs += 1

    # ------------------------------------------------------------------
    # In-band mark detection
    # ------------------------------------------------------------------
    def _handle_ack(self, pkt: TCPSegment) -> None:
        if self.react_to_marks:
            if pkt.circuit_echo == self._echo_value:
                self._echo_streak += 1
            else:
                self._echo_value = pkt.circuit_echo
                self._echo_streak = 1
            if self._echo_streak >= self.mark_hysteresis:
                if self._echo_value and not self.circuit_active:
                    self.ramp_up()
                elif not self._echo_value and self.circuit_active:
                    self.ramp_down()
        super()._handle_ack(pkt)

    def snapshot(self) -> dict:
        data = super().snapshot()
        data.update(
            {
                "retcp_alpha": self.alpha,
                "circuit_active": self.circuit_active,
                "ramp_ups": self.ramp_ups,
            }
        )
        return data
