"""Per-TDN RTT estimation support (§4.4).

Two pieces:

* :func:`classify_rtt_sample` — the type-1/2/3 sample taxonomy. Type-3
  samples (data and ACK crossed different TDNs) measure
  ``RTT_i/2 + RTT_j/2`` and are discarded; type-1/2 samples are matched
  to their TDN.
* :func:`pessimistic_rto_ns` — the retransmission timer value. TDTCP
  cannot predict which TDN an ACK will return on, so the timeout for a
  segment sent on TDN *n* assumes the ACK returns on the slowest TDN:
  ``RTT_synth = RTT_n/2 + RTT_slowest/2``, plus the usual 4x variance
  guard.
"""

from __future__ import annotations

from typing import List, Optional

from repro.tcp.connection import PathState


def classify_rtt_sample(data_tdn: int, ack_tdn: Optional[int]) -> str:
    """Classify a sample as 'matched' (type 1/2) or 'crossed' (type 3).

    An untagged ACK (plain-TCP peer) is treated as matched — there is
    no evidence of crossing, and discarding every sample would leave
    the estimator empty.
    """
    if ack_tdn is None or data_tdn == ack_tdn:
        return "matched"
    return "crossed"


def pessimistic_rto_ns(
    paths: List[PathState],
    current_index: int,
    min_rto_ns: int,
    max_rto_ns: int,
    initial_rto_ns: int,
) -> int:
    """RTO based on the synthesized worst-case return path (§4.4)."""
    current = paths[current_index]
    srtt_n = current.rtt.srtt_ns
    # One pass over the paths for both the slowest srtt and the largest
    # rttvar (the return TDN is unknown, so assume the worst of each).
    slowest = 0
    rttvar = 0
    for p in paths:
        estimator = p.rtt
        srtt = estimator.srtt_ns
        if srtt is not None and srtt > slowest:
            slowest = srtt
        var = estimator.rttvar_ns
        if var is not None and var > rttvar:
            rttvar = var
    if srtt_n is None and slowest == 0:
        return max(initial_rto_ns, min_rto_ns)
    if srtt_n is None:
        srtt_n = slowest
    synth = srtt_n // 2 + slowest // 2
    rto = synth + max(4 * rttvar, 1)
    return min(max(rto, min_rto_ns), max_rto_ns)
