"""Per-TDN state management (§3.1, §4.3).

:class:`PerTDNState` owns the array of :class:`PathState` duplicates —
one per TDN — and implements the switch ("swap in the set tracking the
new TDN") plus the four semantic classes of §4.3 as queries:

* *current TDN* — :attr:`current`;
* *all TDNs* — :meth:`total_packets_out`;
* *any TDN* — :meth:`any_loss_pending`;
* *specific TDN* — :meth:`path_for_tdn`.

The state itself lives in :class:`repro.tcp.connection.PathState`; this
class adds TDN bookkeeping: growth on newly observed TDNs (runtime
schedule changes, §4.2) and switch counting.
"""

from __future__ import annotations

from typing import Callable, List

from repro.tcp.connection import PathState


class PerTDNState:
    """The duplicated state sets of a TDTCP connection."""

    def __init__(self, make_path: Callable[[int], PathState], initial_count: int):
        if initial_count < 1:
            raise ValueError("need at least one TDN")
        self._make_path = make_path
        self.paths: List[PathState] = [make_path(i) for i in range(initial_count)]
        self.current_index = 0
        self.switches = 0

    @property
    def current(self) -> PathState:
        return self.paths[self.current_index]

    def __len__(self) -> int:
        return len(self.paths)

    def ensure_tdn(self, tdn_id: int) -> None:
        """Initialize state sets for TDNs observed for the first time
        (runtime schedule change support, §4.2)."""
        while len(self.paths) <= tdn_id:
            self.paths.append(self._make_path(len(self.paths)))

    def switch_to(self, tdn_id: int) -> bool:
        """Swap the active state set. Returns True when it changed.

        The swap is O(1) — the 'pull model' of §5.4: nothing is copied,
        the index simply moves to the set that already holds a snapshot
        of the new TDN from when it was last active.
        """
        self.ensure_tdn(tdn_id)
        if tdn_id == self.current_index:
            return False
        self.current_index = tdn_id
        self.switches += 1
        return True

    def path_for_tdn(self, tdn_id: int) -> PathState:
        """'Specific TDN' accessor (clamped like the kernel does for
        segments tagged before a downgrade)."""
        if 0 <= tdn_id < len(self.paths):
            return self.paths[tdn_id]
        return self.paths[0]

    def total_packets_out(self) -> int:
        """'All TDNs': outstanding data across every TDN."""
        return sum(path.packets_out for path in self.paths)

    def any_loss_pending(self) -> bool:
        """'Any TDN': should a retransmission be scheduled?"""
        return any(
            path.lost_out > 0 or path.ca_state.in_recovery for path in self.paths
        )

    def slowest_srtt_ns(self) -> int:
        """Largest smoothed RTT across TDNs with samples (0 if none)."""
        return max((p.rtt.srtt_ns or 0 for p in self.paths), default=0)
