"""The TDTCP connection (§3, §4).

Subclasses the base TCP connection, which was written path-generic:
TDTCP supplies one :class:`PathState` per TDN, switches the active one
on ICMP notifications, and overrides four hooks:

* ``_should_mark_lost`` — the relaxed reordering detection of §3.4;
* ``_rtt_sample_allowed`` — the type-3 sample filter of §4.4;
* ``_rto_ns`` — the pessimistic synthesized RTO of §4.4;
* ``_rack_reo_wnd`` — a widened RACK reorder window for cross-TDN
  segments, so exempted segments that really were lost are recovered
  by the reorder timer (RACK-TLP fallback).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.reordering import suspect_cross_tdn_reordering
from repro.core.rtt import pessimistic_rto_ns
from repro.core.tdn_state import PerTDNState
from repro.net.node import Host
from repro.net.packet import MAX_TDN_ID, TCPSegment, TDNNotification
from repro.obs.telemetry import Telemetry
from repro.sim.simulator import Simulator
from repro.sim.timers import Timer
from repro.tcp.config import TCPConfig
from repro.tcp.connection import LossTrigger, PathState, SegmentState, TCPConnection
from repro.tcp.options import negotiate_td_capable
from repro.tcp.rack import default_reo_wnd_ns


class TDTCPConnection(TCPConnection):
    """TCP with time-division multiplexed congestion state."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        remote_addr: str,
        remote_port: int,
        local_port: Optional[int] = None,
        cc_name: str = "cubic",
        config: Optional[TCPConfig] = None,
        name: Optional[str] = None,
        tdn_count: int = 2,
        subscribe_notifications: bool = True,
        switch_pacing: bool = True,
        cc_names: Optional[List[str]] = None,
    ):
        if tdn_count < 1:
            raise ValueError("TDTCP needs at least one TDN")
        if cc_names is not None and len(cc_names) != tdn_count:
            raise ValueError("cc_names must name one CCA per TDN")
        self.tdn_count = tdn_count
        # §3.5: "In principle, TDTCP could use multiple, different CCAs
        # within a single flow." One name per TDN; None = cc_name
        # everywhere (the paper's configuration: CUBIC in all TDNs).
        self.cc_names = list(cc_names) if cc_names is not None else None
        self.downgraded = False
        super().__init__(
            sim,
            host,
            remote_addr,
            remote_port,
            local_port=local_port,
            cc_name=cc_name,
            config=config,
            name=name,
        )
        self.td_capable_tdns = tdn_count  # advertised in the SYN options
        self.tdn_state = PerTDNState(self._new_path, tdn_count)
        # Share the list object so base-class path queries see the same
        # state sets; the current index is mirrored on every switch.
        self.paths = self.tdn_state.paths
        self.current_path_index = self.tdn_state.current_index
        self.notifications_seen = 0
        # §3.2 degraded-signal tolerance: stale/duplicate/garbage
        # notifications are counted and ignored, never applied or raised.
        self.stale_notifications = 0
        self._last_notify_seq: Optional[int] = None
        self._tp_stale = Telemetry.of(sim).tracepoint("notifier:stale")
        # §5.2: "techniques such as sender pacing can help prevent the
        # potential switch buffer overflow" — the resumed window of a
        # freshly activated TDN is paced over ~one RTT instead of being
        # blasted as a single line-rate burst at the gated VOQ.
        self.switch_pacing = switch_pacing
        self._pace_until_ns = 0
        self._pace_timer = Timer(sim, self._on_pace_tick, name=f"{self.name}-pace")
        self._tp_tdn_switch = Telemetry.of(sim).tracepoint("tdtcp:tdn_switch")
        if subscribe_notifications:
            host.subscribe_tdn_changes(self._on_tdn_notification)

    # ------------------------------------------------------------------
    # Path construction
    # ------------------------------------------------------------------
    def _make_paths(self) -> List[PathState]:
        # The real path array is installed right after super().__init__
        # (PerTDNState needs attributes that are not set yet when the
        # base constructor runs); this placeholder is replaced.
        return [PathState(self._clock(), self.cc_name, self.config, tdn_id=0)]

    def _new_path(self, tdn_id: int) -> PathState:
        cc_name = self.cc_name
        if self.cc_names is not None and tdn_id < len(self.cc_names):
            cc_name = self.cc_names[tdn_id]
        return PathState(self._clock(), cc_name, self.config, tdn_id=tdn_id)

    # ------------------------------------------------------------------
    # Negotiation / downgrade (§4.2, A.2)
    # ------------------------------------------------------------------
    def _negotiate(self, peer_tdns: Optional[int]) -> Optional[int]:
        agreed = negotiate_td_capable(self.tdn_count, peer_tdns)
        if agreed is None:
            self.downgrade()
        return agreed

    def downgrade(self) -> None:
        """Fall back to regular single-path TCP (local side only).

        The peer may keep sending TDTCP options; we stop tagging and
        stop per-TDN switching. Useful for debugging per the paper.
        """
        self.downgraded = True
        self.tdn_state.switch_to(0)
        self.current_path_index = 0

    @property
    def is_tdtcp(self) -> bool:
        return not self.downgraded

    # ------------------------------------------------------------------
    # TDN change notification (§3.2)
    # ------------------------------------------------------------------
    def _on_tdn_notification(self, notification: TDNNotification) -> None:
        self.notifications_seen += 1
        if self.downgraded:
            return
        seq = notification.notify_seq
        if seq is not None:
            last = self._last_notify_seq
            if last is not None and seq <= last:
                self._count_stale(notification, "stale_seq")
                return
            self._last_notify_seq = seq
        tdn_id = notification.tdn_id
        if tdn_id < 0 or tdn_id > MAX_TDN_ID:
            self._count_stale(notification, "unknown_tdn")
            return
        self.set_current_tdn(tdn_id)

    def _count_stale(self, notification: TDNNotification, reason: str) -> None:
        self.stale_notifications += 1
        if self._tp_stale.enabled:
            self._tp_stale.emit(
                self.sim.now,
                where="connection",
                name=self.name,
                tdn=notification.tdn_id,
                reason=reason,
            )

    def set_current_tdn(self, tdn_id: int) -> None:
        """Swap in the state set for ``tdn_id`` (no-op if unchanged)."""
        previous = self.tdn_state.current_index
        if self.tdn_state.switch_to(tdn_id):
            self.current_path_index = self.tdn_state.current_index
            # TDN change pointer (§3.4): first sequence of the new TDN.
            self.tdn_change_seq = self.snd_nxt
            if self._tp_tdn_switch.enabled:
                self._tp_tdn_switch.emit(
                    self.sim.now,
                    conn=self.name,
                    from_tdn=previous,
                    to_tdn=self.tdn_state.current_index,
                    saved_cwnd=self.paths[previous].cc.cwnd,
                    restored_cwnd=self.current_path.cc.cwnd,
                    snd_nxt=self.snd_nxt,
                    switches=self.tdn_state.switches,
                )
            if self.switch_pacing:
                self._pace_until_ns = self.sim.now + self._pace_horizon_ns()
            # The new TDN's window may be wide open: send immediately.
            self._maybe_send()

    # ------------------------------------------------------------------
    # Post-switch burst pacing
    # ------------------------------------------------------------------
    def _pace_horizon_ns(self) -> int:
        """Pace the resumed window over roughly one RTT of the new TDN."""
        srtt = self.current_path.rtt.srtt_ns
        return srtt if srtt is not None else 100_000

    def _pace_interval_ns(self) -> int:
        path = self.current_path
        srtt = path.rtt.srtt_ns or 100_000
        return max(int(srtt / max(path.cc.cwnd, 1.0)), 200)

    def _maybe_send(self) -> None:
        if self._fluid_hold:
            # Tiered fidelity: the fluid model owns the transfer. Gating
            # here (not just in the base class) also keeps the pace
            # timer from re-arming through the paced branch below.
            return
        if not self.switch_pacing or self.sim.now >= self._pace_until_ns:
            self._pace_timer.cancel()
            super()._maybe_send()
            return
        if self._pace_timer.armed:
            return
        if self.state in ("established", "close-wait"):
            self._try_send_one()
        self._pace_timer.start(self._pace_interval_ns())

    def _on_pace_tick(self) -> None:
        self._maybe_send()

    @property
    def current_tdn(self) -> int:
        return self.tdn_state.current_index

    # ------------------------------------------------------------------
    # Wire tagging (TD_DATA_ACK, §4.1)
    # ------------------------------------------------------------------
    @property
    def wire_tdn(self) -> Optional[int]:
        if self.downgraded:
            return None
        return self.tdn_state.current_index

    # ------------------------------------------------------------------
    # Relaxed reordering detection (§3.4)
    # ------------------------------------------------------------------
    def _dup_rule_satisfied(self, seg, sacked_above_total, sacked_above_by_tdn) -> bool:
        """§3.4 relaxed detection, evidence side.

        Two conditions replace the classic dup-threshold:

        * the hole must postdate the TDN change pointer — segments sent
          before the last switch can be overtaken even by same-tagged
          data (queued packets ride the new network while in-flight
          ones finish on the old wire), so they are left to the
          RACK-TLP reorder timer;
        * the SACKed evidence above the hole must come from the *same*
          TDN — deliveries on another (typically faster) TDN say
          nothing about this one; those ACKs are merely delayed.
        """
        if self.downgraded:
            return super()._dup_rule_satisfied(seg, sacked_above_total, sacked_above_by_tdn)
        if seg.seq < self.tdn_change_seq:
            return False
        return sacked_above_by_tdn.get(seg.tdn_id, 0) >= self.config.dupthresh

    def _should_mark_lost(self, seg: SegmentState, trigger: LossTrigger) -> bool:
        if self.downgraded:
            return True
        if trigger.kind == "rack":
            # RACK's ACK-path marking keeps the TDN/change-pointer
            # filter; true tail losses are recovered by the reorder
            # timer, which bypasses this check.
            if suspect_cross_tdn_reordering(
                seg.tdn_id, trigger.ack_tdn, seg.seq, self.tdn_change_seq
            ):
                return False
        return True

    def _rack_reo_wnd(self, seg: SegmentState) -> int:
        """Cross-TDN segments get a window wide enough to cover the
        worst-case ACK return path before the timer declares them lost:
        the §4.4 synthesized delay — half the segment's own TDN RTT
        plus half the slowest TDN's RTT."""
        base = default_reo_wnd_ns(
            self.path_of(seg).rtt.min_rtt_ns, self.config.rack_reo_wnd_frac
        )
        if self.downgraded:
            return base
        if seg.tdn_id != self.tdn_state.current_index:
            # §4.4's synthesized worst-case return: half the segment's
            # own TDN RTT plus half the slowest TDN's RTT on top of the
            # normal window.
            own = self.path_of(seg).rtt.srtt_ns or 0
            slowest = self.tdn_state.slowest_srtt_ns()
            return base + own // 2 + slowest // 2
        return base

    # ------------------------------------------------------------------
    # Per-TDN RTT estimation (§4.4)
    # ------------------------------------------------------------------
    def _rtt_sample_allowed(self, seg: SegmentState, pkt: TCPSegment) -> bool:
        if self.downgraded:
            return True
        # Type-3 filter: data TDN must match ACK TDN.
        return pkt.ack_tdn is None or seg.tdn_id == pkt.ack_tdn

    def _cc_credit_allowed(self, path_index: int, pkt: TCPSegment) -> bool:
        """§3.1: samples from different TDNs must not pollute each
        other — an ACK returning on TDN j must not grow TDN i's window.
        The pipe accounting (packets_out et al.) is still updated; only
        the congestion model of the inactive TDN stays frozen."""
        if self.downgraded:
            return True
        return pkt.ack_tdn is None or path_index == pkt.ack_tdn

    def _rto_ns(self) -> int:
        if self.downgraded:
            return super()._rto_ns()
        return pessimistic_rto_ns(
            self.paths,
            self.tdn_state.current_index,
            self.config.min_rto_ns,
            self.config.max_rto_ns,
            self.config.initial_rto_ns,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        data = super().snapshot()
        data.update(
            {
                "tdtcp": self.is_tdtcp,
                "current_tdn": self.tdn_state.current_index,
                "tdn_switches": self.tdn_state.switches,
                "tdn_change_seq": self.tdn_change_seq,
            }
        )
        return data
