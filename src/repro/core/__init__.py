"""TDTCP — the paper's contribution (§3, §4).

:class:`TDTCPConnection` multiplexes one congestion-control state set
per time-division network (TDN) over a single connection-level sequence
space, switches the active set on ToR-generated ICMP notifications,
relaxes the fast-retransmit heuristics across TDN changes, and keeps
per-TDN RTT models with cross-TDN (type-3) sample filtering and a
pessimistic retransmission timer.
"""

from repro.core.tdtcp import TDTCPConnection
from repro.core.tdn_state import PerTDNState
from repro.core.reordering import suspect_cross_tdn_reordering
from repro.core.rtt import pessimistic_rto_ns, classify_rtt_sample

__all__ = [
    "TDTCPConnection",
    "PerTDNState",
    "suspect_cross_tdn_reordering",
    "pessimistic_rto_ns",
    "classify_rtt_sample",
]
