"""Relaxed reordering detection (§3.4).

When the fast-retransmit heuristics flag a sequence hole, TDTCP
inspects the TDN IDs of the segments in the hole and compares them with
the TDN of the ACK that triggered the heuristic and with the TDN change
pointer. Segments from a *different* TDN than the triggering ACK whose
sequence numbers lie at or before the change pointer are suspected
cross-TDN reordering — their ACKs are merely delayed on the slower
path — and are *not* marked lost. Segments from the same TDN are true
loss candidates and are retransmitted.

True tail losses among the exempted segments are recovered by the
RACK-TLP reorder timer (the connection bypasses this filter on the
timer path).
"""

from __future__ import annotations

from typing import Optional


def suspect_cross_tdn_reordering(
    segment_tdn: int,
    ack_tdn: Optional[int],
    segment_seq: int,
    tdn_change_seq: int,
) -> bool:
    """True when the hole segment should be exempted from loss marking.

    ``tdn_change_seq`` is the TDN change pointer: the first sequence
    number sent in the current TDN. A hole segment sent on a different
    TDN than the triggering ACK, with a sequence number from before the
    change point, is almost certainly just delayed, not lost.
    """
    if ack_tdn is None:
        # Peer is not tagging ACKs (downgraded or plain TCP): no basis
        # for exemption.
        return False
    if segment_tdn == ack_tdn:
        return False
    # Different TDN: exempt when the segment predates the change point.
    # Segments *after* the pointer with a stale tag (e.g. retransmitted
    # across the switch) are treated as same-TDN candidates.
    return segment_seq < tdn_change_seq or tdn_change_seq == 0
