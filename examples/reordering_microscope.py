#!/usr/bin/env python3
"""A microscope on cross-TDN reordering (§3.4, Figures 3 and 4).

Two hosts, two paths: a slow one (TDN 0) and a fast one (TDN 1). Data
is in flight on the slow path when the network switches to the fast
path — the classic Figure 3(a) scenario — and we watch, packet by
packet, how plain TCP spuriously retransmits while TDTCP's relaxed
detection holds fire.

Run:  python examples/reordering_microscope.py
"""

from repro.core import TDTCPConnection
from repro.net.packet import TDNNotification
from repro.sim import Simulator
from repro.tcp import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, usec

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from tests.helpers import two_hosts  # noqa: E402  (reuse the test topology)


def run_scenario(connection_cls, label, **kwargs):
    sim, a, b, ab, _ba = two_hosts(one_way_ns=usec(20))
    held = []
    original = ab.deliver

    def slow_then_fast(pkt):
        # The tail of TDN-0 data (sent in the last 10 us before the
        # switch) is still in the slow network when the fast path takes
        # over: it arrives 60 us late, after the first TDN-1 data.
        if pkt.payload_len and getattr(pkt, "data_tdn", None) in (0, None):
            if sim.now > usec(990) and len(held) < 12:
                held.append(pkt.seq)
                sim.schedule(usec(60), original, pkt)
                return
        original(pkt)

    ab.deliver = slow_then_fast
    client, server = create_connection_pair(
        sim, a, b, cc_name="cubic", config=TCPConfig(), connection_cls=connection_cls, **kwargs
    )
    client.start_bulk()
    sim.run(until=msec(1))
    # The network switches: both ends are notified (ToR ICMPs).
    a.deliver(TDNNotification("tor0", a.address, tdn_id=1))
    b.deliver(TDNNotification("tor1", b.address, tdn_id=1))
    sim.run(until=msec(3))

    print(f"{label}:")
    print(f"  segments held on the slow path : {len(held)}")
    print(f"  reordering events observed     : {len(client.stats.reordering_events)}")
    print(f"  retransmissions                : {client.stats.retransmissions}")
    print(f"  ... of which spurious          : {client.stats.spurious_retransmissions}")
    print(f"  delivered to the application   : {server.stats.bytes_delivered:,} bytes")
    print()


def main() -> None:
    print("Cross-TDN reordering scenario (Figure 3a): slow-path data is")
    print("overtaken by fast-path data after a TDN switch.\n")
    run_scenario(TCPConnection, "plain TCP (CUBIC)")
    run_scenario(TDTCPConnection, "TDTCP (relaxed reordering detection)", tdn_count=2)
    print("TDTCP inspects the TDN IDs of the segments in the sequence hole")
    print("(§3.4): holes from a different TDN than the triggering ACK are")
    print("suspected cross-TDN reordering and exempted from fast retransmit.")


if __name__ == "__main__":
    main()
