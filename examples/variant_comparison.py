#!/usr/bin/env python3
"""Compare every TCP variant on the paper's RDCN (a mini Figure 7).

Runs cubic, dctcp, mptcp, retcp, retcpdyn and tdtcp on identical
hardware and schedule, then prints steady-state throughput next to the
analytic optimal and packet-only rates.

Run:  python examples/variant_comparison.py [weeks]
"""

import sys

from repro.experiments import ExperimentConfig, run_experiment
from repro.rdcn import RDCNConfig


def main() -> None:
    weeks = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    rdcn = RDCNConfig()
    optimal = (
        sum(
            rdcn.tdn_rate_bps(tdn) * rdcn.day_ns
            for tdn in rdcn.schedule_pattern
        )
        / rdcn.week_ns
        / 1e9
    )
    print(f"schedule: {len(rdcn.schedule_pattern)} days/week, "
          f"{rdcn.day_ns // 1000} us days, {rdcn.night_ns // 1000} us nights")
    print(f"analytic optimal: {optimal:.2f} Gbps | packet-only: "
          f"{rdcn.packet_rate_bps / 1e9:.2f} Gbps")
    print()
    print(f"{'variant':<10} {'Gbps':>7} {'% of optimal':>13} "
          f"{'retx':>7} {'RTOs':>5}")

    for variant in ("tdtcp", "retcpdyn", "retcp", "cubic", "dctcp", "mptcp"):
        cfg = ExperimentConfig(
            variant=variant, rdcn=rdcn, n_flows=8,
            weeks=weeks, warmup_weeks=max(weeks // 4, 2),
        )
        result = run_experiment(cfg)
        thr = result.steady_state_throughput_gbps()
        print(f"{variant:<10} {thr:7.2f} {thr / optimal * 100:12.1f}% "
              f"{result.retransmissions:7d} {result.rtos:5d}")


if __name__ == "__main__":
    main()
