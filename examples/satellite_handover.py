#!/usr/bin/env python3
"""TDTCP beyond data centers: the satellite handover scenario of §3.5.

"Satellite signal coverage has a periodic strong-weak pattern as
satellites orbit the earth. Satellite links are used if a strong signal
can be detected. When the signal falls weak, fiber links between ground
stations are often used as a backup. At any time, only one link is
selected. TDTCP is particularly suitable for a network with this
pattern."

We model TDN 0 as the terrestrial fiber backup (moderate bandwidth,
low latency) and TDN 1 as the satellite pass (high bandwidth, high
latency), alternating every 2 ms with a 100 us handover blackout, and
compare TDTCP against plain CUBIC.

Run:  python examples/satellite_handover.py
"""

from repro.apps.bulk import BulkReceiver, BulkSender
from repro.core import TDTCPConnection
from repro.rdcn import RDCNConfig, build_two_rack_testbed
from repro.rdcn.config import NotifierConfig
from repro.tcp import TCPConfig
from repro.tcp.sockets import create_connection_pair
from repro.units import gbps, throughput_gbps, usec


def satellite_config() -> RDCNConfig:
    # §3.5: TDTCP suits networks whose conditions change every
    # 1-100x RTT. A 20 ms pass over a ~6 ms-RTT satellite link (and a
    # ~1 ms-RTT fiber backup) sits comfortably in that regime.
    return RDCNConfig(
        n_hosts_per_rack=1,
        mss=1500,
        # TDN 0: ground fiber backup — 1 Gbps, short path.
        packet_rate_bps=gbps(1),
        packet_one_way_ns=usec(450),
        # TDN 1: satellite pass — 5 Gbps, long path.
        optical_rate_bps=gbps(5),
        optical_one_way_ns=usec(2_900),
        host_link_rate_bps=gbps(5),
        host_link_delay_ns=usec(10),
        # Modest ground-station buffering: ~0.4 ms at the backup rate
        # (a deep buffer here just bloats the fiber path's RTT).
        voq_capacity=256,
        # Alternating passes: satellite up half the time.
        schedule_pattern=(0, 1),
        day_ns=usec(20_000),
        night_ns=usec(500),
        notifier=NotifierConfig(control_delay_ns=usec(20)),
    )


def run_variant(connection_cls, **kwargs) -> float:
    config = satellite_config()
    testbed = build_two_rack_testbed(config)
    tcp = TCPConfig(
        mss=config.mss,
        rwnd_packets=4096,
        send_buffer_packets=4096,
        min_rto_ns=usec(50_000),
    )
    client, server = create_connection_pair(
        testbed.sim,
        testbed.host(0, 0),
        testbed.host(1, 0),
        cc_name="cubic",
        config=tcp,
        connection_cls=connection_cls,
        **kwargs,
    )
    receiver = BulkReceiver(server)
    BulkSender(client)
    testbed.start()
    cycles = 24
    testbed.sim.run(until=cycles * config.week_ns)
    return throughput_gbps(receiver.delivered_bytes, testbed.sim.now)


def main() -> None:
    from repro.tcp.connection import TCPConnection

    config = satellite_config()
    average_capacity = (
        (config.packet_rate_bps + config.optical_rate_bps) * config.day_ns
        / config.week_ns / 1e9
    )
    print("satellite/ground handover scenario (§3.5 generality)")
    print("  ground fiber: 1 Gbps / ~1 ms RTT; satellite: 5 Gbps / ~6 ms RTT")
    print("  handover every 20 ms with a 500 us blackout")
    print(f"  average link capacity: {average_capacity:.2f} Gbps")
    print()
    cubic = run_variant(TCPConnection)
    tdtcp = run_variant(TDTCPConnection, tdn_count=2)
    print(f"  single-path CUBIC: {cubic:.3f} Gbps")
    print(f"  TDTCP:             {tdtcp:.3f} Gbps  "
          f"({(tdtcp / cubic - 1) * 100:+.0f}%)")


if __name__ == "__main__":
    main()
