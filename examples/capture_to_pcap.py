#!/usr/bin/env python3
"""Capture a TDTCP handover and write a real .pcap file.

The paper's artifact ships a Wireshark build with a TDTCP dissector;
this example produces a capture you can open in stock Wireshark: the
TD_CAPABLE and TD_DATA_ACK options appear as experimental TCP option
253 (Figure 5's layouts). The textual dissection is also printed.

Run:  python examples/capture_to_pcap.py [output.pcap]
"""

import sys

from repro.core import TDTCPConnection
from repro.net.capture import PacketCapture
from repro.net.packet import TDNNotification
from repro.net.pcap import write_pcap
from repro.sim import Simulator
from repro.tcp.sockets import create_connection_pair
from repro.units import msec, usec

sys.path.insert(0, ".")
from tests.helpers import two_hosts  # noqa: E402


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "tdtcp_handover.pcap"

    sim, a, b, ab, ba = two_hosts(one_way_ns=usec(20))
    capture = PacketCapture(sim, max_records=400)
    ab.deliver = capture.tap(ab.deliver)
    ba.deliver = capture.tap(ba.deliver)

    client, server = create_connection_pair(
        sim, a, b, connection_cls=TDTCPConnection, tdn_count=2
    )
    client.start_bulk()
    sim.run(until=usec(400))
    # A TDN handover right in the middle of the capture.
    a.deliver(TDNNotification("tor0", a.address, tdn_id=1))
    b.deliver(TDNNotification("tor1", b.address, tdn_id=1))
    sim.run(until=msec(1))

    print(capture.summary())
    print()
    print("first packets, as the TDTCP dissector renders them:")
    print(capture.render(limit=12))
    written = write_pcap(capture, out_path)
    print(f"\nwrote {written} frames to {out_path} (open with Wireshark/tcpdump)")


if __name__ == "__main__":
    main()
