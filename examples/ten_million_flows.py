#!/usr/bin/env python3
"""Ten million flows through the tiered fluid fast path.

A campaign-scale workload-engine run, sharded for checkpoint/resume:
the flow target is split into independent seeded shards (each one
ExperimentConfig on the paper's two-rack RDCN at ``fidelity="tiered"``),
executed through :class:`ExperimentExecutor` with a campaign journal,
checkpoint sidecar, and result cache. Kill it at any point and rerun
with ``--resume``: completed shards replay from the cache, only the
remainder executes. Memory stays flat at any flow count — completions
stream into DDSketch quantile sketches whose merge is exactly
associative, so the sharded campaign's merged percentiles are the same
whatever order (or how many attempts) the shards took.

Flow mixes:

* ``data-mining`` (default) — the paper's elephant-heavy mix, the
  fluid model's home turf: long steady in-slot transfers integrate
  analytically and wall clock drops well below packet fidelity.
* ``web-search`` — mixed mice/elephants; arrivals fold into live
  spans, still several times faster than packet fidelity.
* ``rpc`` — small-RPC mix (2-64 KB) with ~200k arrivals per simulated
  second. Churn this fast never reaches the steady state a fluid span
  needs, so the fast path stays dormant and the run is effectively
  packet fidelity — but per-flow cost is small, which is what makes a
  100k-flow CI shard feasible. This is the honest trade: tiered
  fidelity buys time on elephants, not on RPC floods.

Run:

    python examples/ten_million_flows.py                  # full 10M campaign
    python examples/ten_million_flows.py --ci             # 100k-flow CI variant
    python examples/ten_million_flows.py --flows 200 --compare-packet

    # crash-safe: journal + cache, kill it, then resume
    python examples/ten_million_flows.py --ci --journal camp.jsonl
    python examples/ten_million_flows.py --ci --journal camp.jsonl --resume

The full 10M run is a *campaign* (hours of wall clock, like the
10k-run sweeps it stands in for) — shard it across machines by running
disjoint ``--shard-start/--shard-count`` windows against the same
sketch-merge step, or just let ``--jobs`` use local cores.
"""

import argparse
import math
import sys
import time

from repro.apps.engine import average_fabric_rate_bps
from repro.apps.tracegen import DATA_MINING_CDF, WEB_SEARCH_CDF, EmpiricalFlowSizes
from repro.experiments.checkpoint import checkpoint_path, load_resume_plan
from repro.experiments.config import ExperimentConfig, WorkloadConfig
from repro.experiments.executor import ExperimentExecutor
from repro.obs.campaign import CampaignLog
from repro.obs.sketch import QuantileSketch
from repro.rdcn.config import RDCNConfig
from repro.sim.rng import SeededRandom

#: Small-RPC mix: cheap per flow, ~200k arrivals per simulated second.
RPC_CDF = ((0.0, 2_000), (0.5, 4_000), (0.9, 16_000), (1.0, 64_000))

CDFS = {
    "web-search": WEB_SEARCH_CDF,
    "data-mining": DATA_MINING_CDF,
    "rpc": RPC_CDF,
}


def workload_for(mix: str, load: float, max_flows: int) -> WorkloadConfig:
    if mix in ("web-search", "data-mining"):
        return WorkloadConfig(kind="empirical", cdf=mix, load=load,
                              matrix="permutation", max_flows=max_flows)
    return WorkloadConfig(kind="empirical", cdf="custom", custom_cdf=CDFS[mix],
                          load=load, matrix="permutation", max_flows=max_flows)


def plan_weeks(rdcn: RDCNConfig, mix: str, load: float, flows: int, warmup: int) -> int:
    """Weeks needed to offer ``flows`` arrivals, plus a 10% drain tail."""
    mean_size = EmpiricalFlowSizes(CDFS[mix], SeededRandom(0)).mean()
    rate_per_s = load * 2 * average_fabric_rate_bps(rdcn) / 8.0 / mean_size
    week_s = rdcn.week_ns / 1e9
    arrival_weeks = flows / (rate_per_s * week_s)
    return warmup + max(int(math.ceil(arrival_weeks * 1.1)), 1)


def shard_configs(args, fidelity: str):
    """One seeded config per shard; shards are independent fabrics."""
    rdcn = RDCNConfig()
    shards = max(-(-args.flows // args.shard_flows), 1)
    configs, labels = [], []
    for index in range(shards):
        flows = min(args.shard_flows, args.flows - index * args.shard_flows)
        weeks = plan_weeks(rdcn, args.cdf, args.load, flows, args.warmup)
        configs.append(ExperimentConfig(
            variant=args.variant,
            rdcn=rdcn,
            weeks=weeks,
            warmup_weeks=args.warmup,
            seed=args.seed + index,
            collect_voq=False,
            collect_sequence=False,
            fidelity=fidelity,
            workload=workload_for(args.cdf, args.load, flows),
        ))
        labels.append(f"shard{index:05d}")
    return configs, labels


def run_campaign(args, fidelity: str, journal: bool = True):
    configs, labels = shard_configs(args, fidelity)
    total_weeks = sum(c.weeks for c in configs)
    sim_s = sum(c.duration_ns for c in configs) / 1e9
    print(f"[{fidelity}] {args.flows:,} flows over {len(configs)} shards "
          f"({total_weeks:,} optical weeks, {sim_s:.2f} simulated seconds)")

    resume = None
    campaign = None
    cache_dir = None
    log_path = args.journal if journal else None
    if log_path:
        cache_dir = f"{log_path}.cache"
        if args.resume:
            resume = load_resume_plan(log_path)
            print(f"  resume: {len(resume.checkpoint.runs)} terminal shards from "
                  f"{resume.checkpoint_source}")
            log_path = f"{log_path}.resumed.jsonl"
        campaign = CampaignLog(log_path)
    executor = ExperimentExecutor(
        jobs=args.jobs,
        cache_dir=cache_dir,
        campaign=campaign,
        resume=resume,
        checkpoint_to=checkpoint_path(log_path) if log_path else None,
    )
    started = time.perf_counter()
    try:
        results = executor.run_batch(configs, labels=labels)
    finally:
        if campaign is not None:
            campaign.close()
    wall = time.perf_counter() - started
    failed = [(label, r) for label, r in zip(labels, results) if r.failure is not None]
    for label, r in failed:
        print(f"  {label}: {r.failure.render()}", file=sys.stderr)
    if failed:
        raise SystemExit(1)
    if resume is not None:
        print(f"  resume: {executor.last_replayed} shards replayed, "
              f"{executor.last_fresh} executed fresh")
    return results, wall


def aggregate(results):
    """Fold shard results: summed counters, exactly-merged sketches."""
    totals = {"started": 0, "completed": 0, "truncated": 0, "engine_wall_s": 0.0}
    sketches = {}
    fluid = {"fluid_spans": 0, "fluid_time_ns": 0, "virtual_losses": 0}
    exit_reasons = {}
    for result in results:
        summary = result.workload_summary or {}
        totals["started"] += summary.get("started", 0)
        totals["completed"] += summary.get("completed", 0)
        totals["truncated"] += result.truncated_flows
        totals["engine_wall_s"] += summary.get("engine_wall_s", 0.0)
        for family, state in (result.sketches or {}).items():
            sketch = QuantileSketch.from_dict(state)
            if family in sketches:
                sketches[family].merge(sketch)
            else:
                sketches[family] = sketch
        report = result.fidelity_report
        if report is not None and not report["forced_packet"]:
            for key in fluid:
                fluid[key] += report[key]
            for reason, count in report["exit_reasons"].items():
                exit_reasons[reason] = exit_reasons.get(reason, 0) + count
    fluid["exit_reasons"] = exit_reasons
    return totals, sketches, fluid


def report(totals, sketches, fluid, wall: float, fidelity: str) -> None:
    done = totals["completed"]
    print(f"  flows: {totals['started']:,} started, {done:,} completed, "
          f"{totals['truncated']:,} truncated")
    engine_wall = totals["engine_wall_s"]
    if engine_wall > 0:
        print(f"  rate: {done / wall:,.0f} completed flows/s of campaign wall "
              f"({wall:.1f}s); {done / engine_wall:,.0f} flows/s of summed "
              f"engine wall ({engine_wall:.1f}s)")
    for family, sketch in sorted(sketches.items()):
        cells = "  ".join(
            f"{label}={value:.2f}"
            for label, value in sketch.percentiles().items()
            if value is not None
        )
        print(f"  {family}: {cells or '(no completions)'} (n={sketch.count:,})")
    if fidelity == "tiered":
        print(f"  fidelity: {fluid['fluid_spans']} fluid spans covering "
              f"{fluid['fluid_time_ns'] / 1e6:.1f} ms, "
              f"{fluid['virtual_losses']} virtual losses, "
              f"exits {fluid['exit_reasons']}")


def write_cdfs(sketches, directory: str) -> None:
    import csv
    import pathlib

    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    for family, sketch in sorted(sketches.items()):
        path = out / f"ten_million_flows_{family}_cdf.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["value", "cum_probability"])
            for value, prob in sketch.cdf_points():
                writer.writerow([f"{value:.6g}", f"{prob:.6g}"])
        print(f"  wrote {path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flows", type=int, default=10_000_000,
                        help="flow arrivals to offer (default: 10,000,000)")
    parser.add_argument("--ci", action="store_true",
                        help="CI-sized variant: 100,000 rpc-mix flows in 10k-flow shards")
    parser.add_argument("--shard-flows", type=int, default=2_000,
                        help="flows per shard / checkpoint unit (default: 2,000)")
    parser.add_argument("--load", type=float, default=0.6,
                        help="offered load as a fraction of fabric capacity")
    parser.add_argument("--cdf", choices=tuple(CDFS), default="data-mining",
                        help="flow-size mix (default: data-mining)")
    parser.add_argument("--variant", default="tdtcp")
    parser.add_argument("--seed", type=int, default=1,
                        help="base seed; shard i runs with seed+i")
    parser.add_argument("--warmup", type=int, default=2,
                        help="warm-up weeks excluded from load accounting")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the shard batch")
    parser.add_argument("--journal", metavar="JSONL", default=None,
                        help="campaign journal path; enables the checkpoint sidecar "
                             "and result cache next to it")
    parser.add_argument("--resume", action="store_true",
                        help="resume from --journal: completed shards replay from "
                             "the cache, the rest execute")
    parser.add_argument("--compare-packet", action="store_true",
                        help="also run packet fidelity and print the wall-clock ratio")
    parser.add_argument("--cdf-out", metavar="DIR", default=None,
                        help="write merged FCT / slowdown CDF curves")
    args = parser.parse_args()
    if args.ci:
        args.flows = 100_000
        args.cdf = "rpc"
        args.shard_flows = 10_000
    if args.resume and not args.journal:
        parser.error("--resume needs --journal")

    results, wall = run_campaign(args, "tiered")
    totals, sketches, fluid = aggregate(results)
    report(totals, sketches, fluid, wall, "tiered")
    if args.cdf_out:
        write_cdfs(sketches, args.cdf_out)
    if args.compare_packet:
        packet_results, packet_wall = run_campaign(args, "packet", journal=False)
        p_totals, p_sketches, p_fluid = aggregate(packet_results)
        report(p_totals, p_sketches, p_fluid, packet_wall, "packet")
        if wall > 0:
            print(f"\ntiered speedup: {packet_wall / wall:.1f}x wall clock "
                  f"({packet_wall:.1f}s packet vs {wall:.1f}s tiered)")


if __name__ == "__main__":
    main()
