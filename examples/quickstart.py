#!/usr/bin/env python3
"""Quickstart: one TDTCP flow on the paper's two-rack RDCN.

Builds the Figure-6 testbed (10 Gbps packet network + 100 Gbps optical
circuit, 180 us days, 20 us nights, 6:1 schedule), runs a single
long-lived TDTCP flow for 30 optical weeks, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.apps.bulk import BulkReceiver, BulkSender
from repro.core import TDTCPConnection
from repro.rdcn import RDCNConfig, build_two_rack_testbed
from repro.tcp import TCPConfig
from repro.tcp.sockets import create_connection_pair
from repro.units import throughput_gbps, to_usec


def main() -> None:
    from repro.units import gbps

    # A single flow gets the whole fabric: give its host a full-rate
    # NIC and a window that covers the optical BDP.
    config = RDCNConfig(n_hosts_per_rack=1, host_link_rate_bps=gbps(100))
    testbed = build_two_rack_testbed(config)

    client, server = create_connection_pair(
        testbed.sim,
        testbed.host(0, 0),
        testbed.host(1, 0),
        cc_name="cubic",                  # CUBIC inside every TDN (§3.5)
        config=TCPConfig(mss=config.mss, rwnd_packets=1024, send_buffer_packets=2048),
        connection_cls=TDTCPConnection,
        tdn_count=config.n_tdns,
    )
    receiver = BulkReceiver(server)
    BulkSender(client)  # endless stream: the paper's long-lived flow

    weeks = 30
    testbed.start()
    testbed.sim.run(until=weeks * config.week_ns)

    duration_ns = testbed.sim.now
    print(f"simulated {to_usec(duration_ns):,.0f} us ({weeks} optical weeks)")
    print(f"delivered {receiver.delivered_bytes:,} bytes "
          f"= {throughput_gbps(receiver.delivered_bytes, duration_ns):.2f} Gbps")
    print(f"TDN switches observed by the sender: {client.tdn_state.switches}")
    print(f"retransmissions: {client.stats.retransmissions} "
          f"(spurious: {client.stats.spurious_retransmissions}, RTOs: {client.stats.rtos})")
    print()
    print("per-TDN state at the end of the run:")
    for path in client.paths:
        name = "packet " if path.tdn_id == 0 else "optical"
        srtt = f"{path.rtt.srtt_ns / 1000:.1f} us" if path.rtt.srtt_ns else "n/a"
        print(f"  TDN {path.tdn_id} ({name}): cwnd={path.cc.cwnd:7.1f} MSS  "
              f"srtt={srtt:>9}  state={path.ca_state.value}")


if __name__ == "__main__":
    main()
