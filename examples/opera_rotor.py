#!/usr/bin/env python3
"""TDTCP on an OCS-only rotor fabric (§6's other RDCN class).

No packet network at all: four racks cycle through rotor matchings;
traffic to an unmatched rack takes one store-and-forward indirection
hop (RotorNet/Opera style). Every matching is its own TDN — the direct
slot has one-hop latency, the others pay the relay penalty — so TDTCP
keeps one congestion state per matching.

Run:  python examples/opera_rotor.py
"""

from repro.apps.bulk import BulkReceiver, BulkSender
from repro.core import TDTCPConnection
from repro.rdcn.opera import OperaConfig, build_opera_testbed
from repro.tcp import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.sockets import create_connection_pair
from repro.units import throughput_gbps, usec


def run(connection_cls, cfg: OperaConfig, cycles: int = 40, **kwargs):
    testbed = build_opera_testbed(cfg)
    tcp = TCPConfig(
        mss=cfg.mss,
        min_rto_ns=usec(5_000),
        rwnd_packets=256,
        send_buffer_packets=256,
    )
    client, server = create_connection_pair(
        testbed.sim, testbed.host(0, 0), testbed.host(1, 0),
        cc_name="cubic", config=tcp, connection_cls=connection_cls, **kwargs,
    )
    receiver = BulkReceiver(server)
    BulkSender(client)
    testbed.start()
    testbed.sim.run(until=cycles * cfg.cycle_ns)
    return testbed, client, throughput_gbps(receiver.delivered_bytes, testbed.sim.now)


def main() -> None:
    cfg = OperaConfig(n_racks=4)
    print("OCS-only rotor fabric: 4 racks, 25 Gbps circuits, "
          f"{cfg.slot_ns // 1000} us slots, two-hop indirection\n")

    _tb, _conn, cubic = run(TCPConnection, cfg)
    testbed, tdtcp_conn, tdtcp = run(TDTCPConnection, cfg, tdn_count=cfg.n_slots)

    print(f"  single-path CUBIC: {cubic:.2f} Gbps")
    print(f"  TDTCP (one state per matching): {tdtcp:.2f} Gbps "
          f"({(tdtcp / cubic - 1) * 100:+.0f}%)\n")

    print("TDTCP's per-matching view (flow r0h0 -> r1h0):")
    direct = next(i for i, m in enumerate(testbed.matchings) if (0, 1) in m)
    for path in tdtcp_conn.paths:
        srtt = f"{path.rtt.srtt_ns / 1000:.1f} us" if path.rtt.srtt_ns else "   n/a"
        kind = "direct" if path.tdn_id == direct else "via relay"
        print(f"  matching {path.tdn_id} ({kind:>9}): srtt={srtt:>9}  "
              f"cwnd={path.cc.cwnd:7.1f}")
    relays = sum(t.transit_tx for t in testbed.tors.values())
    print(f"\nfabric transit transmissions (indirection hops): {relays}")


if __name__ == "__main__":
    main()
