"""Unit-helper tests."""

import pytest

from repro import units


def test_time_constants_scale():
    assert units.usec(1) == 1_000
    assert units.msec(1) == 1_000_000
    assert units.sec(1) == 1_000_000_000
    assert units.nsec(5) == 5


def test_time_helpers_round_fractions():
    assert units.usec(1.5) == 1_500
    assert units.usec(0.0006) == 1  # rounds, does not truncate


def test_bandwidth_helpers():
    assert units.gbps(10) == 10e9
    assert units.mbps(100) == 100e6


def test_serialization_delay_basic():
    # 1500 bytes at 10 Gbps = 1.2 us.
    assert units.serialization_delay_ns(1500, units.gbps(10)) == 1200


def test_serialization_delay_minimum_one_ns():
    assert units.serialization_delay_ns(1, units.gbps(1000)) >= 1


def test_serialization_delay_zero_size():
    assert units.serialization_delay_ns(0, units.gbps(10)) == 0


def test_serialization_delay_rejects_bad_rate():
    with pytest.raises(ValueError):
        units.serialization_delay_ns(1500, 0)


def test_to_usec_and_sec():
    assert units.to_usec(1_500) == 1.5
    assert units.to_sec(2_000_000_000) == 2.0


def test_throughput_gbps():
    # 125 MB in 100 ms = 10 Gbps.
    assert units.throughput_gbps(125_000_000, units.msec(100)) == pytest.approx(10.0)


def test_throughput_gbps_zero_duration():
    assert units.throughput_gbps(1000, 0) == 0.0
