"""Network substrate: addressing, packets, links, queues, hosts,
switches."""

import pytest

from repro.net.addressing import (
    FlowKey,
    flow_key_of,
    host_address,
    host_index_of,
    rack_of,
    reverse_flow_key,
)
from repro.net.link import Link
from repro.net.node import Host
from repro.net.packet import (
    ETH_IP_TCP_HEADER,
    Packet,
    TCPSegment,
    TDNNotification,
)
from repro.net.queues import DropTailQueue, ECNMarkingQueue
from repro.net.switch import EPSSwitch, ToRSwitch
from repro.sim import Simulator
from repro.units import gbps, usec


class TestAddressing:
    def test_host_address_roundtrip(self):
        addr = host_address(1, 7)
        assert addr == "r1h7"
        assert rack_of(addr) == 1
        assert host_index_of(addr) == 7

    def test_rack_of_rejects_garbage(self):
        with pytest.raises(ValueError):
            rack_of("nonsense")

    def test_flow_key_of_is_receiver_view(self):
        seg = TCPSegment("r0h0", "r1h0", sport=10, dport=20)
        key = flow_key_of(seg)
        assert key == FlowKey("r1h0", 20, "r0h0", 10)

    def test_reverse_flow_key(self):
        key = FlowKey("a", 1, "b", 2)
        assert reverse_flow_key(key) == FlowKey("b", 2, "a", 1)
        assert reverse_flow_key(reverse_flow_key(key)) == key


class TestPackets:
    def test_data_segment_size_includes_headers(self):
        seg = TCPSegment("a", "b", 1, 2, seq=0, payload_len=1500)
        assert seg.size == ETH_IP_TCP_HEADER + 1500
        assert seg.end_seq == 1500

    def test_pure_ack_is_small(self):
        ack = TCPSegment("a", "b", 1, 2, ack=100, is_ack=True)
        assert ack.size == ETH_IP_TCP_HEADER
        assert ack.payload_len == 0

    def test_option_sizes_grow_wire_size(self):
        seg = TCPSegment("a", "b", 1, 2, payload_len=100)
        base = seg.size
        seg.sack_blocks = ((0, 10), (20, 30))
        seg.data_tdn = 1
        seg.add_option_sizes()
        assert seg.size > base

    def test_unique_packet_ids(self):
        a = Packet("a", "b", 100)
        b = Packet("a", "b", 100)
        assert a.pid != b.pid

    def test_notification_carries_tdn(self):
        n = TDNNotification("tor0", "r0h0", tdn_id=1, created_ns=5)
        assert n.tdn_id == 1
        assert n.generated_ns == 5
        assert n.size > 0


class TestLink:
    def test_delivery_timing(self):
        sim = Simulator()
        got = []
        link = Link(sim, gbps(10), usec(10), lambda p: got.append(sim.now))
        link.send(Packet("a", "b", 1500))
        sim.run()
        # 1.2 us serialization + 10 us propagation.
        assert got == [11_200]

    def test_serializes_one_at_a_time(self):
        sim = Simulator()
        got = []
        link = Link(sim, gbps(10), 0, lambda p: got.append(sim.now))
        link.send(Packet("a", "b", 1500))
        link.send(Packet("a", "b", 1500))
        sim.run()
        assert got == [1200, 2400]

    def test_bounded_queue_drops_and_flags(self):
        sim = Simulator()
        link = Link(sim, gbps(1), 0, lambda p: None, queue_capacity=1)
        p1, p2, p3 = (Packet("a", "b", 1500) for _ in range(3))
        assert link.send(p1) is True   # starts serializing
        assert link.send(p2) is True   # queued
        assert link.send(p3) is False  # dropped
        assert p3.dropped is True
        assert link.drops == 1

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, gbps(10), 0, lambda p: None)
        link.send(Packet("a", "b", 100))
        link.send(Packet("a", "b", 200))
        sim.run()
        assert link.tx_packets == 2
        assert link.tx_bytes == 300

    def test_rejects_bad_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0, 0, lambda p: None)
        with pytest.raises(ValueError):
            Link(sim, gbps(1), -5, lambda p: None)


class TestDropTailQueue:
    def test_fifo(self):
        q = DropTailQueue(4)
        packets = [Packet("a", "b", 1) for _ in range(3)]
        for p in packets:
            assert q.push(p, now=0)
        assert [q.pop() for _ in range(3)] == packets
        assert q.pop() is None

    def test_overflow_drops(self):
        q = DropTailQueue(2)
        assert q.push(Packet("a", "b", 1), 0)
        assert q.push(Packet("a", "b", 1), 0)
        victim = Packet("a", "b", 1)
        assert not q.push(victim, 0)
        assert victim.dropped
        assert q.drops == 1

    def test_resize_bigger_accepts_more(self):
        q = DropTailQueue(1)
        q.push(Packet("a", "b", 1), 0)
        assert not q.push(Packet("a", "b", 1), 0)
        q.resize(3)
        assert q.push(Packet("a", "b", 1), 0)

    def test_resize_smaller_does_not_evict(self):
        q = DropTailQueue(4)
        for _ in range(4):
            q.push(Packet("a", "b", 1), 0)
        q.resize(2)
        assert len(q) == 4  # existing occupants stay
        assert not q.push(Packet("a", "b", 1), 0)

    def test_length_change_observer(self):
        q = DropTailQueue(4)
        lengths = []
        q.on_length_change = lengths.append
        q.push(Packet("a", "b", 1), 0)
        q.push(Packet("a", "b", 1), 0)
        q.pop()
        assert lengths == [1, 2, 1]

    def test_max_occupancy_tracked(self):
        q = DropTailQueue(4)
        for _ in range(3):
            q.push(Packet("a", "b", 1), 0)
        q.pop()
        assert q.max_occupancy == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestECNMarkingQueue:
    def test_marks_above_threshold_for_capable_packets(self):
        q = ECNMarkingQueue(10, mark_threshold=2)
        packets = []
        for _ in range(4):
            p = Packet("a", "b", 1)
            p.ecn_capable = True
            q.push(p, 0)
            packets.append(p)
        assert [p.ce for p in packets] == [False, False, True, True]
        assert q.marks == 2

    def test_ignores_non_capable(self):
        q = ECNMarkingQueue(10, mark_threshold=1)
        for _ in range(3):
            q.push(Packet("a", "b", 1), 0)
        assert q.marks == 0


class TestHost:
    def test_demux_to_connection(self):
        sim = Simulator()
        host = Host(sim, "r0h0")
        got = []

        class Conn:
            def receive(self, pkt):
                got.append(pkt)

        seg = TCPSegment("r1h0", "r0h0", sport=5, dport=6)
        host.register_connection(flow_key_of(seg), Conn())
        host.deliver(seg)
        assert got == [seg]

    def test_unmatched_segment_dropped_silently(self):
        sim = Simulator()
        host = Host(sim, "r0h0")
        host.deliver(TCPSegment("r1h0", "r0h0", sport=5, dport=6))  # no raise

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        host = Host(sim, "r0h0")
        key = FlowKey("r0h0", 1, "r1h0", 2)
        host.register_connection(key, object())
        with pytest.raises(ValueError):
            host.register_connection(key, object())

    def test_notification_fanout(self):
        sim = Simulator()
        host = Host(sim, "r0h0")
        seen = []
        host.subscribe_tdn_changes(lambda n: seen.append(n.tdn_id))
        host.subscribe_tdn_changes(lambda n: seen.append(n.tdn_id * 10))
        host.deliver(TDNNotification("tor", "r0h0", tdn_id=1))
        sim.run()
        assert seen == [1, 10]

    def test_notification_processing_delay(self):
        sim = Simulator()
        host = Host(sim, "r0h0")
        host.notification_processing_ns = 500
        seen = []
        host.subscribe_tdn_changes(lambda n: seen.append(sim.now))
        host.deliver(TDNNotification("tor", "r0h0", tdn_id=0))
        sim.run()
        assert seen == [500]

    def test_send_requires_egress(self):
        sim = Simulator()
        host = Host(sim, "r0h0")
        with pytest.raises(RuntimeError):
            host.send(Packet("r0h0", "r1h0", 100))

    def test_port_allocation_unique(self):
        sim = Simulator()
        host = Host(sim, "r0h0")
        ports = {host.allocate_port() for _ in range(10)}
        assert len(ports) == 10


class TestSwitches:
    def test_eps_routes(self):
        sim = Simulator()
        eps = EPSSwitch(sim)
        got = []
        link = Link(sim, gbps(10), 0, lambda p: got.append(p))
        eps.add_route("r0h0", link)
        pkt = Packet("x", "r0h0", 100)
        eps.forward(pkt)
        sim.run()
        assert got == [pkt]

    def test_eps_unknown_destination(self):
        sim = Simulator()
        eps = EPSSwitch(sim)
        with pytest.raises(KeyError):
            eps.forward(Packet("x", "r9h9", 100))

    def test_tor_local_delivery(self):
        sim = Simulator()
        tor = ToRSwitch(sim, rack=0)
        got = []
        link = Link(sim, gbps(10), 0, lambda p: got.append(p))
        tor.add_downlink("r0h0", link)
        pkt = Packet("r0h1", "r0h0", 100)
        tor.forward(pkt)
        sim.run()
        assert got == [pkt]
        assert tor.forwarded_local == 1

    def test_tor_fabric_forwarding(self):
        sim = Simulator()
        tor = ToRSwitch(sim, rack=0)
        sent = []

        class FakeUplink:
            def enqueue(self, packet):
                sent.append(packet)
                return True

        tor.add_uplink(1, FakeUplink())
        pkt = Packet("r0h0", "r1h3", 100)
        tor.forward(pkt)
        assert sent == [pkt]
        assert tor.forwarded_fabric == 1

    def test_tor_rejects_foreign_downlink(self):
        sim = Simulator()
        tor = ToRSwitch(sim, rack=0)
        with pytest.raises(ValueError):
            tor.add_downlink("r1h0", Link(sim, gbps(1), 0, lambda p: None))

    def test_tor_missing_uplink(self):
        sim = Simulator()
        tor = ToRSwitch(sim, rack=0)
        with pytest.raises(KeyError):
            tor.forward(Packet("r0h0", "r1h0", 100))

    def test_broadcast_to_hosts(self):
        sim = Simulator()
        tor = ToRSwitch(sim, rack=0)
        got = []
        for i in range(3):
            tor.add_downlink(f"r0h{i}", Link(sim, gbps(10), 0, lambda p: got.append(p.dst)))
        tor.broadcast_to_hosts(lambda addr: TDNNotification("tor0", addr, 1))
        sim.run()
        assert sorted(got) == ["r0h0", "r0h1", "r0h2"]
