"""Tiered-fidelity fluid fast path (repro.sim.fastpath).

Cross-fidelity agreement on the figure-7 bulk workload, loss-episode
behavior, forced-packet fallbacks (fault plans, unsupported variants,
background load), per-mode determinism, and the closed-form unit
pieces the integrator builds on (schedule segmentation, fluid cwnd
growth).
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import FaultPlan, FaultSpec
from repro.rdcn.schedule import TDNSchedule
from repro.sim.fastpath import FLUID_VARIANTS, forced_packet_report
from repro.tcp.cc.base import INFINITE_SSTHRESH, make_congestion_control
from repro.units import usec


class FakeClock:
    def __init__(self):
        self.t = 0

    def now_ns(self) -> int:
        return self.t


def bulk_config(variant: str, fidelity: str, **kwargs) -> ExperimentConfig:
    """A small figure-7-style bulk run (the fast path's home turf)."""
    defaults = dict(
        variant=variant, n_flows=4, weeks=10, warmup_weeks=2, seed=1,
        collect_voq=False, collect_sequence=False, fidelity=fidelity,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def run_pair(variant: str, **kwargs):
    """(packet result, tiered result) for the same seeded config."""
    packet = run_experiment(bulk_config(variant, "packet", **kwargs))
    tiered = run_experiment(bulk_config(variant, "tiered", **kwargs))
    assert packet.failure is None and tiered.failure is None
    return packet, tiered


class TestCrossFidelityAgreement:
    # Pinned empirically: the fluid model has no retransmission waste or
    # ramp-up stalls, so tiered delivers slightly more than packet on
    # the same horizon (measured 1.21x tdtcp / 1.36x cubic / 1.24x reno
    # at this scale). A ratio below 1.0 or above 1.5 means the model
    # broke, not that the tolerance drifted.
    LOW, HIGH = 1.0, 1.5

    @pytest.mark.parametrize("variant", ("tdtcp", "cubic", "reno"))
    def test_bulk_delivered_within_tolerance(self, variant):
        packet, tiered = run_pair(variant)
        ratio = tiered.aggregate_delivered / packet.aggregate_delivered
        assert self.LOW <= ratio <= self.HIGH, (
            f"{variant}: tiered/packet delivered ratio {ratio:.3f} "
            f"outside [{self.LOW}, {self.HIGH}]"
        )
        report = tiered.fidelity_report
        assert report["mode"] == "tiered"
        assert report["forced_packet"] is False
        assert report["fluid_spans"] >= 1
        assert report["fluid_time_ns"] > 0
        # Packet runs carry no fidelity report at all.
        assert packet.fidelity_report is None

    def test_loss_episodes_in_both_modes(self):
        """The bulk workload overflows the VOQ in packet mode; the fluid
        model must register the same pressure as virtual loss cuts (with
        cwnd actually reduced), not sail through loss-free."""
        packet, tiered = run_pair("cubic")
        assert packet.retransmissions > 0  # packet mode really saw loss
        assert tiered.fidelity_report["virtual_losses"] > 0
        ratio = tiered.aggregate_delivered / packet.aggregate_delivered
        assert self.LOW <= ratio <= self.HIGH

    def test_fluid_spans_counted_on_simulator(self):
        tiered = run_experiment(bulk_config("tdtcp", "tiered"))
        report = tiered.fidelity_report
        assert report["exit_reasons"]  # every span records why it ended
        assert sum(report["exit_reasons"].values()) == report["fluid_spans"]


class TestForcedPacket:
    def test_fault_plan_forces_packet(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="link_flap", target="r0h0-up",
                             at_ns=usec(500), period_ns=usec(800), count=2,
                             params={"down_ns": usec(50)}),),
            name="fastpath-test",
        )
        result = run_experiment(bulk_config("tdtcp", "tiered", fault_plan=plan))
        assert result.failure is None
        report = result.fidelity_report
        assert report["mode"] == "packet"
        assert report["forced_packet"] is True
        assert "fault_plan" in report["forced_reasons"]
        assert report["fluid_spans"] == 0

    @pytest.mark.parametrize("variant", ("dctcp", "mptcp"))
    def test_unsupported_variant_forces_packet(self, variant):
        result = run_experiment(bulk_config(variant, "tiered"))
        assert result.failure is None
        report = result.fidelity_report
        assert report["mode"] == "packet"
        assert f"variant:{variant}" in report["forced_reasons"]
        assert variant not in FLUID_VARIANTS

    def test_background_load_forces_packet(self):
        result = run_experiment(
            bulk_config("tdtcp", "tiered", background_load=0.1)
        )
        assert result.failure is None
        assert "background_load" in result.fidelity_report["forced_reasons"]

    def test_forced_run_byte_identical_to_packet_run(self):
        """A tiered run that falls back must produce exactly the packet
        result — same flows, same bytes, same retransmissions — because
        the fast path never constructs at all."""
        tiered = run_experiment(bulk_config("dctcp", "tiered"))
        packet = run_experiment(bulk_config("dctcp", "packet"))
        assert tiered.flow_delivered == packet.flow_delivered
        assert tiered.aggregate_delivered == packet.aggregate_delivered
        assert tiered.retransmissions == packet.retransmissions
        assert tiered.rtos == packet.rtos

    def test_forced_report_shape_matches_live_report(self):
        live = run_experiment(bulk_config("tdtcp", "tiered")).fidelity_report
        forced = forced_packet_report(["fault_plan"])
        assert set(forced) == set(live)


class TestDeterminism:
    @pytest.mark.parametrize("fidelity", ("packet", "tiered"))
    def test_same_seed_same_result(self, fidelity):
        a = run_experiment(bulk_config("tdtcp", fidelity))
        b = run_experiment(bulk_config("tdtcp", fidelity))
        assert a.flow_delivered == b.flow_delivered
        assert a.aggregate_delivered == b.aggregate_delivered
        assert a.retransmissions == b.retransmissions
        assert a.fidelity_report == b.fidelity_report

    def test_packet_mode_untouched_by_fidelity_field(self):
        """fidelity="packet" runs take the exact pre-fastpath code path:
        no report, no fluid counters on the simulator."""
        result = run_experiment(bulk_config("cubic", "packet"))
        assert result.fidelity_report is None


class TestScheduleSegments:
    def test_segment_at_day_and_night(self):
        schedule = TDNSchedule.uniform((0, 0, 1), day_ns=1000, night_ns=100)
        assert schedule.segment_at(0) == (0, 1000, 0)
        assert schedule.segment_at(999) == (0, 1000, 0)
        assert schedule.segment_at(1000) == (1000, 1100, None)
        assert schedule.segment_at(1100) == (1100, 2100, 0)
        assert schedule.segment_at(2250) == (2200, 3200, 1)

    def test_segment_at_wraps_weeks(self):
        schedule = TDNSchedule.uniform((0, 1), day_ns=1000, night_ns=100)
        week = schedule.week_ns
        start, end, tdn = schedule.segment_at(3 * week + 1150)
        assert (start, end, tdn) == (3 * week + 1100, 3 * week + 2100, 1)

    def test_segment_at_rejects_negative(self):
        schedule = TDNSchedule.uniform((0,), day_ns=10, night_ns=1)
        with pytest.raises(ValueError):
            schedule.segment_at(-1)


class TestFluidAdvance:
    def test_reno_slow_start_doubles_per_rtt(self):
        cc = make_congestion_control("reno", FakeClock(), initial_cwnd=2.0)
        cc.ssthresh = INFINITE_SSTHRESH
        cc.fluid_advance(0, 3 * 1000, 1000)  # three RTTs
        assert cc.cwnd == pytest.approx(16.0)

    def test_reno_slow_start_hands_off_at_ssthresh(self):
        cc = make_congestion_control("reno", FakeClock(), initial_cwnd=8.0)
        cc.ssthresh = 16.0
        # One RTT reaches ssthresh exactly; the next two add 1 MSS each.
        cc.fluid_advance(0, 3 * 1000, 1000)
        assert cc.cwnd == pytest.approx(18.0)

    def test_cubic_growth_monotone_and_reno_floored(self):
        cc = make_congestion_control("cubic", FakeClock(), initial_cwnd=10.0)
        cc.ssthresh = 10.0  # force congestion avoidance
        before = cc.cwnd
        cc.fluid_advance(0, 10 * 100_000, 100_000)
        mid = cc.cwnd
        cc.fluid_advance(10 * 100_000, 10 * 100_000, 100_000)
        assert before < mid <= cc.cwnd

    def test_zero_interval_is_noop(self):
        cc = make_congestion_control("cubic", FakeClock(), initial_cwnd=7.0)
        cc.fluid_advance(0, 0, 1000)
        cc.fluid_advance(0, 1000, 0)
        assert cc.cwnd == 7.0
