"""reTCP: mark-driven window scaling and the dynamic-buffer controller."""

import pytest

from repro.net.packet import TCPSegment
from repro.net.queues import DropTailQueue
from repro.rdcn.fabric import NetworkPath, RackUplink
from repro.rdcn.schedule import ScheduleDriver, TDNSchedule
from repro.retcp.dynbuf import DynamicBufferController
from repro.retcp.retcp import ReTCPConnection
from repro.sim import Simulator
from repro.tcp.sockets import create_connection_pair
from repro.units import gbps, msec, usec

from tests.helpers import two_hosts


def retcp_pair(sim, a, b, **kwargs):
    client, server = create_connection_pair(
        sim, a, b, connection_cls=ReTCPConnection, **kwargs
    )
    client.start_bulk()
    return client, server


class TestRampMechanics:
    def test_ramp_up_scales_window(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = retcp_pair(sim, a, b, alpha=4.0)
        sim.run(until=msec(1))
        before = client.current_path.cc.cwnd
        client.ramp_up()
        assert client.current_path.cc.cwnd == pytest.approx(before * 4.0)
        assert client.circuit_active

    def test_ramp_down_restores(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = retcp_pair(sim, a, b, alpha=4.0)
        sim.run(until=msec(1))
        before = client.current_path.cc.cwnd
        client.ramp_up()
        client.ramp_down()
        assert client.current_path.cc.cwnd <= before
        assert not client.circuit_active

    def test_ramp_idempotent(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = retcp_pair(sim, a, b, alpha=4.0)
        sim.run(until=msec(1))
        client.ramp_up()
        cwnd = client.current_path.cc.cwnd
        client.ramp_up()  # no double scaling
        assert client.current_path.cc.cwnd == cwnd
        client.ramp_down()
        cwnd = client.current_path.cc.cwnd
        client.ramp_down()
        assert client.current_path.cc.cwnd == cwnd

    def test_no_ramp_during_recovery(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, _server = retcp_pair(sim, a, b, alpha=4.0)
        sim.run(until=msec(1))
        path = client.current_path
        path.enter_recovery(client.snd_nxt)
        before = path.cc.cwnd
        client.ramp_up()
        assert path.cc.cwnd == before  # scaling suppressed

    def test_alpha_validation(self):
        sim, a, b, _ab, _ba = two_hosts()
        with pytest.raises(ValueError):
            ReTCPConnection(sim, a, b.address, 5001, alpha=1.0)


class TestMarkReaction:
    def _run_with_echo_pattern(self, pattern_fn):
        """Deliver ACKs with circuit_echo controlled by pattern_fn(t)."""
        sim, a, b, _ab, ba = two_hosts()
        original = ba.deliver

        def echoer(pkt):
            if pkt.is_ack:
                pkt.circuit_echo = pattern_fn(sim.now)
            original(pkt)

        ba.deliver = echoer
        client, server = retcp_pair(sim, a, b, alpha=4.0)
        return sim, client

    def test_consecutive_marks_trigger_ramp(self):
        sim, client = self._run_with_echo_pattern(lambda t: t > msec(1))
        sim.run(until=msec(1) + usec(500))
        assert client.circuit_active
        assert client.ramp_ups >= 1

    def test_single_stray_mark_ignored(self):
        # One marked ACK in a million: hysteresis ignores it.
        fired = {"done": False}

        def pattern(t):
            if not fired["done"] and t > msec(1):
                fired["done"] = True
                return True
            return False

        sim, client = self._run_with_echo_pattern(pattern)
        sim.run(until=msec(2))
        assert not client.circuit_active
        assert client.ramp_ups == 0

    def test_marks_stopping_triggers_ramp_down(self):
        sim, client = self._run_with_echo_pattern(lambda t: msec(1) < t < msec(2))
        sim.run(until=msec(3))
        assert client.ramp_ups >= 1
        assert client.ramp_downs >= 1
        assert not client.circuit_active

    def test_external_control_disables_marks(self):
        sim, client = self._run_with_echo_pattern(lambda t: t > msec(1))
        client.react_to_marks = False
        sim.run(until=msec(2))
        assert client.ramp_ups == 0


class TestDynamicBufferController:
    def _setup(self):
        sim = Simulator()
        schedule = TDNSchedule.uniform((0, 0, 1), usec(180), usec(20))
        driver = ScheduleDriver(sim, schedule)
        paths = {
            0: NetworkPath(0, gbps(10), usec(40)),
            1: NetworkPath(1, gbps(100), usec(10), is_circuit=True),
        }
        uplink = RackUplink(sim, paths, DropTailQueue(96), lambda p: None)
        controller = DynamicBufferController(
            sim, driver, [uplink],
            normal_capacity=96, circuit_capacity=300,
            lead_ns=usec(150), optical_tdn=1,
        )
        return sim, schedule, driver, uplink, controller

    def test_resizes_before_circuit_day(self):
        sim, schedule, driver, uplink, controller = self._setup()
        driver.start()
        optical_start = usec(400)  # third day
        sim.run(until=optical_start - usec(151))
        assert uplink.queue.capacity == 96
        sim.run(until=optical_start - usec(149))
        assert uplink.queue.capacity == 300

    def test_restores_after_circuit_day(self):
        sim, schedule, driver, uplink, controller = self._setup()
        driver.start()
        sim.run(until=usec(400) + usec(181))  # into the night after optical
        assert uplink.queue.capacity == 96

    def test_ramps_registered_connections(self):
        sim, schedule, driver, uplink, controller = self._setup()

        class FakeConn:
            react_to_marks = True
            ups = 0
            downs = 0

            def ramp_up(self):
                self.ups += 1

            def ramp_down(self):
                self.downs += 1

        conn = FakeConn()
        controller.register(conn)
        assert conn.react_to_marks is False
        driver.start()
        sim.run(until=usec(620))  # past the optical day and its night
        assert conn.ups == 1
        assert conn.downs == 1

    def test_repeats_weekly(self):
        sim, schedule, driver, uplink, controller = self._setup()
        driver.start()
        sim.run(until=schedule.week_ns * 3)
        assert controller.resizes == 3
