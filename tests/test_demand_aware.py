"""Demand-aware matching on the OCS fabric (§6, Helios/ProjecToR
class): "In demand-aware RDCNs, a controller collects real-time traffic
demand information and calculates a schedule that serves the current
demand. [...] TDTCP is applicable in either case; all that is required
is that ToRs notify the senders of the upcoming TDN."
"""

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.net.packet import Packet
from repro.rdcn.opera import OperaConfig, build_opera_testbed
from repro.tcp.config import TCPConfig
from repro.tcp.sockets import create_connection_pair
from repro.units import throughput_gbps, usec


def demand_aware_config(**kwargs):
    kwargs.setdefault("matching_policy", "demand-aware")
    kwargs.setdefault("n_racks", 4)
    return OperaConfig(**kwargs)


class TestDemandAwareMatching:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            OperaConfig(matching_policy="oracle")

    def test_busiest_pair_served_first(self):
        cfg = demand_aware_config()
        tb = build_opera_testbed(cfg)
        # Load the 0<->1 VOQs heavily before the first slot.
        for _ in range(20):
            tb.tors[0].voqs[1].push(Packet("r0h0", "r1h0", 1500), 0)
        tb.start()
        tb.sim.run(until=usec(1))
        assert (0, 1) in tb.chosen_matchings[0]

    def test_no_starvation_under_skewed_demand(self):
        """The aging bonus guarantees every pair is served eventually
        even when one pair dominates the demand."""
        cfg = demand_aware_config()
        tb = build_opera_testbed(cfg)

        # Persistent heavy demand 0 -> 1.
        def refill():
            for _ in range(5):
                tb.tors[0].voqs[1].push(Packet("r0h0", "r1h0", 1500), tb.sim.now)
            tb.sim.schedule(cfg.slot_ns, refill)

        refill()
        tb.start()
        tb.sim.run(until=cfg.cycle_ns * 8)
        served = set()
        for matching in tb.chosen_matchings:
            served.update(matching)
        n = cfg.n_racks
        all_pairs = {(a, b) for a in range(n) for b in range(a + 1, n)}
        assert served == all_pairs

    def test_matchings_are_valid(self):
        cfg = demand_aware_config(n_racks=6)
        tb = build_opera_testbed(cfg)
        tb.start()
        tb.sim.run(until=cfg.cycle_ns * 4)
        for matching in tb.chosen_matchings:
            racks = [r for pair in matching for r in pair]
            assert len(racks) == len(set(racks))  # each rack at most once


class TestTDTCPOnDemandAware:
    def test_tdtcp_works_with_partner_id_tdns(self):
        cfg = demand_aware_config()
        tb = build_opera_testbed(cfg)
        tcp = TCPConfig(
            mss=cfg.mss, min_rto_ns=usec(5_000),
            rwnd_packets=256, send_buffer_packets=256,
        )
        client, server = create_connection_pair(
            tb.sim, tb.host(0, 0), tb.host(1, 0),
            cc_name="cubic", config=tcp,
            connection_cls=TDTCPConnection,
            tdn_count=cfg.n_racks,  # TDN id = partner rack id
        )
        client.start_bulk()
        tb.start()
        tb.sim.run(until=cfg.cycle_ns * 30)
        assert server.stats.bytes_delivered > 500_000
        assert client.tdn_state.switches > 5
        # Some partner-id TDNs accumulated their own models.
        assert any(p.rtt.srtt_ns is not None for p in client.paths)
        # The flow's pair received direct slots.
        assert any((0, 1) in m for m in tb.chosen_matchings)

    def test_demand_aware_at_least_matches_rotor(self):
        """With one bulk flow, the demand-aware fabric serves the flow
        at least as well as the oblivious rotor. (The margin is modest:
        a window-limited TCP flow's VOQ looks shallow at slot
        boundaries, so backlog-driven scheduling under-estimates its
        demand — a real scheduler/transport interplay.)"""
        def run(policy):
            cfg = demand_aware_config(matching_policy=policy)
            tb = build_opera_testbed(cfg)
            tcp = TCPConfig(
                mss=cfg.mss, min_rto_ns=usec(5_000),
                rwnd_packets=256, send_buffer_packets=256,
            )
            client, server = create_connection_pair(
                tb.sim, tb.host(0, 0), tb.host(1, 0),
                cc_name="cubic", config=tcp,
                connection_cls=TDTCPConnection, tdn_count=cfg.n_racks,
            )
            client.start_bulk()
            tb.start()
            tb.sim.run(until=cfg.cycle_ns * 30)
            return throughput_gbps(server.stats.bytes_delivered, tb.sim.now)

        aware = run("demand-aware")
        oblivious = run("rotor")
        assert aware > oblivious * 0.9
