"""Nagle's algorithm, and the documented jumbo-frame incast regime."""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.rdcn.config import RDCNConfig
from repro.tcp.config import TCPConfig
from repro.tcp.sockets import create_connection_pair
from repro.units import gbps, msec, usec

from tests.helpers import two_hosts


def count_partials(sim, ab):
    partials = []
    original = ab.deliver
    ab.deliver = lambda p: (
        partials.append(p.payload_len) if 0 < p.payload_len < 1500 else None,
        original(p),
    )
    return partials


class TestNagle:
    def test_nodelay_sends_partials_immediately(self):
        sim, a, b, ab, _ba = two_hosts()
        partials = count_partials(sim, ab)
        client, server = create_connection_pair(
            sim, a, b, config=TCPConfig(nagle_enabled=False)
        )
        sim.run(until=usec(200))
        # Three quick sub-MSS writes: all go out as separate segments.
        client.write(100)
        sim.run(until=usec(210))
        client.write(100)
        client.write(100)
        sim.run(until=msec(3))
        assert len(partials) >= 3
        assert server.stats.bytes_delivered == 300

    def test_nagle_coalesces_partials(self):
        sim, a, b, ab, _ba = two_hosts()
        partials = count_partials(sim, ab)
        client, server = create_connection_pair(
            sim, a, b, config=TCPConfig(nagle_enabled=True)
        )
        sim.run(until=usec(200))
        client.write(100)
        sim.run(until=usec(210))  # first partial in flight, un-ACKed
        client.write(100)
        client.write(100)
        sim.run(until=msec(3))
        # The second and third writes were coalesced into one segment.
        assert len(partials) == 2
        assert sorted(partials) == [100, 200]
        assert server.stats.bytes_delivered == 300

    def test_nagle_never_blocks_full_segments(self):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = create_connection_pair(
            sim, a, b, config=TCPConfig(nagle_enabled=True)
        )
        client.write(15_000)  # ten full segments
        sim.run(until=msec(5))
        assert server.stats.bytes_delivered == 15_000


class TestJumboIncastRegime:
    def test_documented_deviation_jumbo_incast_collapse(self):
        """DESIGN.md §7 item 2: at jumbo MSS with the paper's VOQ byte
        capacity and many flows, per-flow windows fall below 2 MSS on
        the packet network and the run degenerates into RTO-bound
        incast. This test pins the rationale for the 1500 B MSS."""
        jumbo = RDCNConfig(
            n_hosts_per_rack=16,
            host_link_rate_bps=gbps(6.25),
            mss=9_000,
            voq_capacity=16,       # 16 jumbo frames, the paper's literal value
            ecn_threshold=5,
        )
        cfg = ExperimentConfig(
            variant="cubic", rdcn=jumbo, n_flows=16, weeks=16, warmup_weeks=4,
        )
        result = run_experiment(cfg)
        scaled = run_experiment(
            ExperimentConfig(variant="cubic", n_flows=16, weeks=16, warmup_weeks=4)
        )
        # The jumbo regime suffers dramatically more timeouts per
        # delivered byte than the scaled 1500 B regime.
        jumbo_rto_rate = result.rtos / max(result.aggregate_delivered, 1)
        scaled_rto_rate = scaled.rtos / max(scaled.aggregate_delivered, 1)
        assert jumbo_rto_rate > scaled_rto_rate * 3
