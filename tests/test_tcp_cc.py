"""Congestion control algorithms: Reno, CUBIC, DCTCP, registry."""

import pytest

from repro.tcp.cc import (
    CubicCC,
    DCTCPCC,
    RenoCC,
    make_congestion_control,
    registered_cc_names,
)
from repro.units import usec


class FakeClock:
    def __init__(self):
        self.t = 0

    def now_ns(self):
        return self.t

    def advance(self, ns):
        self.t += ns


class TestRegistry:
    def test_known_names(self):
        names = registered_cc_names()
        for name in ("reno", "cubic", "dctcp"):
            assert name in names

    def test_factory(self):
        cc = make_congestion_control("cubic", FakeClock(), initial_cwnd=5)
        assert isinstance(cc, CubicCC)
        assert cc.cwnd == 5

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_congestion_control("bogus", FakeClock())


class TestReno:
    def test_slow_start_doubles_per_rtt(self):
        cc = RenoCC(FakeClock(), initial_cwnd=10)
        cc.on_ack(10, usec(100), 10)
        assert cc.cwnd == 20

    def test_congestion_event_halves(self):
        cc = RenoCC(FakeClock(), initial_cwnd=20)
        cc.on_congestion_event()
        assert cc.cwnd == 10
        assert cc.ssthresh == 10
        assert not cc.in_slow_start

    def test_congestion_avoidance_linear(self):
        cc = RenoCC(FakeClock(), initial_cwnd=20)
        cc.on_congestion_event()  # cwnd 10, CA mode
        start = cc.cwnd
        # One full window of ACKs grows cwnd by ~1.
        cc.on_ack(int(start), usec(100), int(start))
        assert start + 0.5 <= cc.cwnd <= start + 1.5

    def test_slow_start_stops_at_ssthresh(self):
        cc = RenoCC(FakeClock(), initial_cwnd=8)
        cc.ssthresh = 12
        cc.on_ack(8, usec(100), 8)
        assert cc.cwnd < 14  # 4 in SS, the rest CA credit

    def test_rto_collapses(self):
        cc = RenoCC(FakeClock(), initial_cwnd=40)
        cc.on_rto()
        assert cc.cwnd == 1
        assert cc.ssthresh == 20

    def test_min_cwnd_floor(self):
        cc = RenoCC(FakeClock(), initial_cwnd=2)
        cc.on_congestion_event()
        assert cc.cwnd >= cc.min_cwnd

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            RenoCC(FakeClock(), beta=1.5)


class TestCubic:
    def test_slow_start(self):
        cc = CubicCC(FakeClock(), initial_cwnd=10)
        cc.on_ack(10, usec(100), 10)
        assert cc.cwnd == 20

    def test_reduction_factor(self):
        cc = CubicCC(FakeClock(), initial_cwnd=100)
        cc.on_congestion_event()
        assert cc.cwnd == pytest.approx(70.0)
        assert cc.w_last_max == 100

    def test_fast_convergence_lowers_wmax(self):
        cc = CubicCC(FakeClock(), initial_cwnd=100)
        cc.on_congestion_event()  # w_last_max=100
        cc.cwnd = 80              # below previous max
        cc.on_congestion_event()
        assert cc.w_max < 80 * 1.01  # reduced below the loss point

    def test_growth_after_reduction(self):
        clock = FakeClock()
        cc = CubicCC(clock, initial_cwnd=100)
        cc.on_congestion_event()
        start = cc.cwnd
        for _ in range(60):
            clock.advance(usec(100))
            cc.on_ack(int(cc.cwnd), usec(100), int(cc.cwnd))
        assert cc.cwnd > start

    def test_never_below_min(self):
        cc = CubicCC(FakeClock(), initial_cwnd=2)
        for _ in range(5):
            cc.on_congestion_event()
        assert cc.cwnd >= cc.min_cwnd

    def test_rto_resets_epoch(self):
        cc = CubicCC(FakeClock(), initial_cwnd=50)
        cc.on_ack(10, usec(100), 10)
        cc.on_rto()
        assert cc.cwnd == 1
        assert cc.epoch_start_ns is None

    def test_handoff_preserves_fractional_credit(self):
        # Regression: crossing ssthresh used to truncate the slow-start
        # growth to an integer (``acked_packets -= int(grow)``), so the
        # fractional MSS spent reaching ssthresh was spent again in the
        # cubic region. The handoff must be exact: 0.5 MSS fills the gap,
        # exactly 1.5 ACKs of credit reach the avoidance math.
        cc = CubicCC(FakeClock(), initial_cwnd=10)
        cc.ssthresh = 10.5
        cc.on_ack(2, usec(100), 10)
        friendly_gain = 3.0 * (1.0 - cc.BETA) / (1.0 + cc.BETA)
        assert cc._tcp_cwnd == pytest.approx(10.5 + friendly_gain * 1.5 / 10.5)

    def test_tcp_friendly_update_without_rtt_sample(self):
        # RFC 8312 §4.2 grows the Reno-emulation estimate on every ACK;
        # it used to be skipped whenever rtt_ns was falsy, letting the
        # cubic region detach from the TCP-friendly floor before the
        # first RTT sample landed.
        cc = CubicCC(FakeClock(), initial_cwnd=100)
        cc.on_congestion_event()  # exit slow start at cwnd == ssthresh
        cc.on_ack(10, None, 50)
        assert cc._tcp_cwnd > cc.ssthresh

    def test_snapshot_fields(self):
        cc = CubicCC(FakeClock(), initial_cwnd=10)
        snap = cc.snapshot()
        assert snap["name"] == "cubic"
        assert "w_max" in snap


class TestDCTCP:
    def test_growth_without_marks_like_reno(self):
        cc = DCTCPCC(FakeClock(), initial_cwnd=10)
        cc.on_ack(10, usec(100), 10, ece=False)
        assert cc.cwnd == 20

    def test_alpha_decays_without_marks(self):
        cc = DCTCPCC(FakeClock(), initial_cwnd=10)
        assert cc.alpha == 1.0
        for _ in range(50):
            cc.on_ack(int(cc.cwnd), usec(100), int(cc.cwnd), ece=False)
        assert cc.alpha < 0.2

    def test_full_marking_halves(self):
        cc = DCTCPCC(FakeClock(), initial_cwnd=100)
        cc.ssthresh = 50  # leave slow start
        cc.alpha = 1.0
        before = cc.cwnd
        cc.on_ack(100, usec(100), 100, ece=True)  # a full marked window
        assert cc.cwnd == pytest.approx(before * 0.5, rel=0.1)

    def test_partial_marking_gentler_than_halving(self):
        cc = DCTCPCC(FakeClock(), initial_cwnd=100)
        cc.ssthresh = 50
        cc.alpha = 0.1
        before = cc.cwnd
        # one window with marks present
        cc.on_ack(50, usec(100), 100, ece=False)
        cc.on_ack(50, usec(100), 100, ece=True)
        assert cc.cwnd > before * 0.6

    def test_loss_still_halves(self):
        cc = DCTCPCC(FakeClock(), initial_cwnd=40)
        cc.on_congestion_event()
        assert cc.cwnd == 20

    def test_alpha_in_snapshot(self):
        assert "alpha" in DCTCPCC(FakeClock()).snapshot()
