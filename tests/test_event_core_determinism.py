"""Differential determinism: channels+pooling vs the legacy flat heap.

The channel/pool event core claims *exact* behavioural equivalence with
the pre-channel design: ``seq`` is assigned from the same global counter
at schedule time, and promotion-on-pop preserves global (time, seq)
firing order, so every simulation byte must be identical. This suite
pins that claim the same way ``test_ack_pipeline_equivalence.py`` pins
the ACK-pipeline fusion — by running the real workloads both ways and
demanding byte-identical JSONL telemetry traces:

* the three seeded perf-harness workloads (bulk / incast / shortflows)
  at a reduced scale, and
* one canned fault plan from ``examples/fault_plans/`` (faults cancel
  timers, drop packets mid-flight, and squeeze queues — the paths where
  lazy channel discard and pool recycling could plausibly diverge).

The legacy side runs with ``REPRO_SIM_LEGACY_HEAP=1``, the escape hatch
that routes every push straight to the heap as a fresh pinned event
(the pre-channel behaviour). The env var is read per ``EventQueue``
construction, so flipping it between runs needs no reimports.
"""

from __future__ import annotations

import hashlib
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import perf_harness  # noqa: E402

from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.runner import run_experiment  # noqa: E402
from repro.obs.telemetry import ObsConfig  # noqa: E402

# Reduced-scale copy of the harness workloads: same mechanisms, smaller
# horizons, so the differential pass stays test-suite-fast.
SMALL_SCALE = {
    "seed": 3,
    "bulk_weeks": 3,
    "bulk_flows": 2,
    "incast_weeks": 4,
    "incast_workers": 3,
    "short_weeks": 4,
}

FAULT_PLAN = REPO_ROOT / "examples" / "fault_plans" / "lossy_fabric.json"


def _set_mode(monkeypatch, legacy: bool) -> None:
    if legacy:
        monkeypatch.setenv("REPRO_SIM_LEGACY_HEAP", "1")
    else:
        monkeypatch.delenv("REPRO_SIM_LEGACY_HEAP", raising=False)


class TestHarnessWorkloadEquivalence:
    @pytest.mark.parametrize(
        "runner_name", ["run_bulk", "run_incast_workload", "run_shortflow_workload"]
    )
    def test_trace_bytes_identical(self, runner_name, tmp_path, monkeypatch):
        runner = getattr(perf_harness, runner_name)
        rows = {}
        for mode in ("channel", "legacy"):
            _set_mode(monkeypatch, legacy=(mode == "legacy"))
            trace_dir = tmp_path / mode
            trace_dir.mkdir()
            rows[mode] = runner(SMALL_SCALE, trace_dir)
        channel, legacy = rows["channel"], rows["legacy"]
        # The workload must be non-trivial, or equivalence is vacuous.
        assert channel["events"] > 1_000
        assert channel["trace_lines"] > 100
        assert channel["events"] == legacy["events"]
        assert channel["trace_lines"] == legacy["trace_lines"]
        assert channel["trace_sha256"] == legacy["trace_sha256"], (
            f"{runner_name}: channel/pool trace diverged from legacy heap"
        )
        # Sanity: the two modes really were different implementations.
        assert channel["alloc"]["legacy_heap"] is False
        assert legacy["alloc"]["legacy_heap"] is True
        assert channel["alloc"]["pool_hits"] > 0
        assert legacy["alloc"]["pool_hits"] == 0
        # And the channels never grow the heap; on the packet-dominated
        # bulk workload they must strictly shrink it (short-flow churn
        # at this tiny scale is timer-dominated, so equality is fine).
        assert channel["alloc"]["max_heap_len"] <= legacy["alloc"]["max_heap_len"]
        if runner_name == "run_bulk":
            assert channel["alloc"]["max_heap_len"] < legacy["alloc"]["max_heap_len"]


class TestFaultPlanEquivalence:
    def _run(self, trace_dir: pathlib.Path) -> tuple:
        config = ExperimentConfig(
            variant="tdtcp",
            n_flows=2,
            weeks=4,
            warmup_weeks=1,
            seed=7,
            fault_plan_path=str(FAULT_PLAN),
            obs=ObsConfig(
                trace_dir=str(trace_dir),
                label="fault_diff",
                jsonl=True,
                chrome_trace=False,
                csv=False,
            ),
        )
        result = run_experiment(config)
        assert result.failure is None, result.failure
        (jsonl_path,) = [p for p in result.artifacts if p.endswith(".jsonl")]
        data = pathlib.Path(jsonl_path).read_bytes()
        return hashlib.sha256(data).hexdigest(), data.count(b"\n"), result

    def test_trace_bytes_identical_under_faults(self, tmp_path, monkeypatch):
        digests = {}
        for mode in ("channel", "legacy"):
            _set_mode(monkeypatch, legacy=(mode == "legacy"))
            trace_dir = tmp_path / mode
            trace_dir.mkdir()
            digests[mode] = self._run(trace_dir)
        chan_sha, chan_lines, chan_result = digests["channel"]
        legacy_sha, legacy_lines, _legacy_result = digests["legacy"]
        assert chan_lines > 100  # the run must be non-trivial
        assert chan_lines == legacy_lines
        assert chan_sha == legacy_sha, (
            "channel/pool trace diverged from legacy heap under fault injection"
        )
        # The fault plan must actually have fired for this to mean much.
        assert chan_result.fault_report is not None
