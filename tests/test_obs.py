"""Unified telemetry subsystem: tracepoints, metrics, exporters,
profiling, and the end-to-end determinism contract."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs import (
    DISABLED,
    NULL_TRACEPOINT,
    ZERO_BUCKET,
    MemoryExporter,
    MetricsRegistry,
    ObsConfig,
    SimulatorProfiler,
    Telemetry,
    TracepointRegistry,
    bucket_upper_bound,
    log2_bucket,
    render_chrome_trace,
    render_jsonl,
)
from repro.rdcn.config import RDCNConfig
from repro.sim.simulator import Simulator


class TestTracepoints:
    def test_disabled_until_subscribed(self):
        registry = TracepointRegistry()
        tp = registry.get("tcp:cwnd_update")
        assert not tp.enabled
        assert not tp  # __bool__
        seen = []
        tp.subscribe(lambda t, n, f: seen.append((t, n, f)))
        assert tp.enabled
        tp.emit(5, conn="c1", cwnd=10)
        assert seen == [(5, "tcp:cwnd_update", {"conn": "c1", "cwnd": 10})]

    def test_unsubscribe_disables(self):
        registry = TracepointRegistry()
        tp = registry.get("queue:drop")
        fn = lambda t, n, f: None
        tp.subscribe(fn)
        tp.unsubscribe(fn)
        assert not tp.enabled

    def test_identity_stable_across_get(self):
        registry = TracepointRegistry()
        first = registry.get("tcp:retransmit")
        registry.subscribe("tcp:*", lambda t, n, f: None)
        # Instrumented code that fetched the tracepoint earlier must see
        # the later subscription.
        assert first is registry.get("tcp:retransmit")
        assert first.enabled

    def test_glob_subscription(self):
        registry = TracepointRegistry()
        touched = registry.subscribe("tcp:*", lambda t, n, f: None)
        names = {tp.name for tp in touched}
        assert names == {"tcp:cwnd_update", "tcp:retransmit", "tcp:ca_state"}
        assert not registry.get("queue:drop").enabled

    def test_unknown_name_auto_registers(self):
        registry = TracepointRegistry()
        tp = registry.get("custom:probe")
        assert tp.name == "custom:probe"
        assert registry.get("custom:probe") is tp

    def test_null_tracepoint_rejects_subscribers(self):
        assert not NULL_TRACEPOINT.enabled
        with pytest.raises(RuntimeError):
            NULL_TRACEPOINT.subscribe(lambda t, n, f: None)

    def test_telemetry_of_unattached_sim_is_disabled(self):
        sim = Simulator()
        telemetry = Telemetry.of(sim)
        assert telemetry is DISABLED
        assert telemetry.tracepoint("tcp:cwnd_update") is NULL_TRACEPOINT

    def test_telemetry_of_attached_sim(self):
        sim = Simulator()
        telemetry = Telemetry(ObsConfig()).attach(sim)
        assert Telemetry.of(sim) is telemetry


class TestMetrics:
    def test_counter_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("retx_total", labelnames=("conn",))
        counter.inc(conn="a")
        counter.inc(2, conn="a")
        counter.inc(conn="b")
        assert counter.value(conn="a") == 3
        assert counter.total() == 4
        with pytest.raises(ValueError):
            counter.inc(conn="a", extra=1)
        with pytest.raises(ValueError):
            counter.inc(-1, conn="a")

    def test_registry_shape_check(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("a",))
        assert registry.counter("x", labelnames=("a",)) is registry.get("x")
        with pytest.raises(ValueError):
            registry.counter("x", labelnames=("b",))
        with pytest.raises(ValueError):
            registry.gauge("x", labelnames=("a",))

    def test_log2_bucketing(self):
        assert log2_bucket(0) == ZERO_BUCKET
        assert log2_bucket(-5) == ZERO_BUCKET
        assert log2_bucket(1) == 0
        assert log2_bucket(2) == 1
        assert log2_bucket(3) == 2
        assert log2_bucket(4) == 2
        assert log2_bucket(5) == 3
        assert log2_bucket(1024) == 10
        assert log2_bucket(1025) == 11

    def test_log2_bucketing_sub_one(self):
        # Sub-1 values get real negative indices instead of collapsing
        # into one bucket (second-scale FCTs expressed in seconds).
        assert log2_bucket(0.5) == -1
        assert log2_bucket(0.3) == -1
        assert log2_bucket(0.25) == -2
        assert log2_bucket(0.2) == -2
        assert log2_bucket(1e-25) == ZERO_BUCKET + 1  # clamped, not zero
        assert bucket_upper_bound(-1) == 0.5
        assert bucket_upper_bound(ZERO_BUCKET) == 0.0

    def test_histogram_quantile_zero_is_minimum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        assert hist.quantile(0.0) is None  # no observations yet
        for value in (3, 9, 100):
            hist.observe(value)
        assert hist.quantile(0.0) == 3  # exact minimum, not a bucket bound
        assert hist.quantile(1.0) == 128.0

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for value in (1, 2, 3, 4, 100):
            hist.observe(value)
        assert hist.count() == 5
        pairs = dict(hist.buckets())
        # upper bound -> cumulative count
        assert pairs[1.0] == 1          # value 1
        assert pairs[2.0] == 2          # + value 2
        assert pairs[4.0] == 4          # + values 3, 4
        assert pairs[128.0] == 5        # + value 100
        assert hist.quantile(0.5) == 4.0  # median 3 lands in the le=4 bucket
        assert hist.quantile(1.0) == 128.0

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("k",)).inc(k="v")
        registry.histogram("h").observe(7)
        text = json.dumps(registry.snapshot(), sort_keys=True)
        assert "\"c\"" in text and "\"h\"" in text


class TestExporters:
    def _sample_events(self):
        buffer = MemoryExporter()
        buffer(0, "rdcn:day_night", {"phase": "day", "tdn": 1, "day_index": 0})
        buffer(10, "tcp:cwnd_update", {
            "conn": "c1", "tdn": 1, "cwnd": 12.0,
            "ssthresh": float("inf"), "ca_state": "open", "reason": "ack",
        })
        buffer(20, "queue:occupancy", {"queue": "voq", "length": 3})
        buffer(30, "rdcn:day_night", {"phase": "night", "tdn": None, "day_index": 0})
        buffer(40, "tcp:retransmit", {
            "conn": "c1", "tdn": 1, "seq": 99, "retx_count": 1,
            "probe": False, "spurious": False,
        })
        return buffer.events

    def test_jsonl_round_trips_and_sanitizes_infinity(self):
        text = render_jsonl(self._sample_events())
        lines = text.splitlines()
        assert len(lines) == 5
        records = [json.loads(line) for line in lines]  # strict JSON
        assert records[0]["tp"] == "rdcn:day_night"
        assert records[1]["ssthresh"] is None  # inf is not valid JSON
        assert records[2] == {"tp": "queue:occupancy", "ts": 20, "queue": "voq", "length": 3}

    def test_chrome_trace_is_valid_and_complete(self):
        doc = render_chrome_trace(self._sample_events())
        text = json.dumps(doc)
        parsed = json.loads(text)  # round-trip through strict JSON
        events = parsed["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert "ph" in event and "ts" in event and "pid" in event
        phases = {event["ph"] for event in events}
        # day slice opens and closes, counters and instants present,
        # metadata names the tracks.
        assert {"B", "E", "C", "i", "M"} <= phases

    def test_chrome_trace_day_slices_balance(self):
        doc = render_chrome_trace(self._sample_events())
        begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "E"]
        assert len(begins) == len(ends) == 1

    def test_memory_exporter_families(self):
        events = self._sample_events()
        buffer = MemoryExporter()
        for time_ns, name, fields in events:
            buffer(time_ns, name, fields)
        assert buffer.families() == sorted(
            {"rdcn:day_night", "tcp:cwnd_update", "queue:occupancy", "tcp:retransmit"}
        )
        assert len(buffer.by_name("rdcn:day_night")) == 2


class TestProfiler:
    def test_attribution_by_qualname(self):
        sim = Simulator()
        profiler = SimulatorProfiler()
        sim.profiler = profiler

        def tick():
            pass

        for delay in (10, 20, 30):
            sim.schedule(delay, tick)
        sim.run()
        assert profiler.events == 3
        rows = profiler.callback_stats()
        assert len(rows) == 1
        assert rows[0]["count"] == 3
        assert "tick" in rows[0]["callback"]
        assert profiler.events_per_second > 0
        report = profiler.report()
        assert "3 events" in report and "tick" in report

    def test_unprofiled_run_has_no_profiler(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.run()
        assert sim.profiler is None


class TestEndToEnd:
    def _run(self, tmp_path, label):
        obs = ObsConfig(
            trace_dir=str(tmp_path / label), metrics_dir=str(tmp_path / label),
            profile=True, label="run",
        )
        config = ExperimentConfig(
            variant="tdtcp",
            rdcn=RDCNConfig(),
            n_flows=2,
            weeks=3,
            warmup_weeks=1,
            seed=7,
            obs=obs,
        )
        return run_experiment(config)

    def test_identical_seeded_runs_are_byte_identical(self, tmp_path):
        first = self._run(tmp_path, "a")
        second = self._run(tmp_path, "b")
        jsonl_a = (tmp_path / "a" / "run.jsonl").read_bytes()
        jsonl_b = (tmp_path / "b" / "run.jsonl").read_bytes()
        assert jsonl_a == jsonl_b
        assert jsonl_a  # not trivially empty
        trace_a = (tmp_path / "a" / "run.trace.json").read_bytes()
        trace_b = (tmp_path / "b" / "run.trace.json").read_bytes()
        assert trace_a == trace_b
        assert first.artifacts and second.artifacts

    def test_run_emits_core_families_and_profile(self, tmp_path):
        result = self._run(tmp_path, "c")
        families = set()
        with open(tmp_path / "c" / "run.jsonl") as handle:
            for line in handle:
                families.add(json.loads(line)["tp"])
        assert {
            "tcp:cwnd_update",
            "tdtcp:tdn_switch",
            "rdcn:day_night",
            "queue:occupancy",
            "notifier:deliver",
        } <= families
        assert result.profile_report is not None
        assert "events/s" in result.profile_report
        assert result.events_per_second and result.events_per_second > 0
        metrics = json.loads((tmp_path / "c" / "run_metrics.json").read_text())
        assert metrics["tdtcp_switches_total"]["kind"] == "counter"

    def test_disabled_obs_leaves_simulator_clean(self):
        config = ExperimentConfig(
            variant="tdtcp", rdcn=RDCNConfig(), n_flows=2, weeks=3,
            warmup_weeks=1, seed=7,
        )
        result = run_experiment(config)
        assert result.artifacts == []
        assert result.profile_report is None
