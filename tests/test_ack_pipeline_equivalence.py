"""ACK-pipeline equivalence: fused loop vs reference methods.

The tentpole fused three per-ACK passes (`_take_rtt_samples`,
`_update_rack`, and the per-path credit tally) into one loop inside
``_handle_ack``. The reference methods were deliberately kept; this
test pins the fusion by replaying every ACK of a fig-7-style TDTCP
bulk run through both implementations and comparing the resulting RTT
estimator and RACK states field by field.

Mechanics: each sender's ``_handle_ack`` is wrapped per instance. The
wrapper snapshots deep copies of the per-path RTT estimators and the
RACK state, captures the ``newly_acked`` / ``newly_sacked`` lists the
real handler computes, lets the fused pipeline run, then swaps the
pristine copies in and drives the reference methods over the same
segment lists. Both endpoints of the comparison saw identical inputs,
so any divergence is a real behavioural difference in the fusion.
"""

from __future__ import annotations

import copy
from dataclasses import replace

from repro.apps.workload import build_workload
from repro.experiments import ExperimentConfig, get_variant
from repro.rdcn.topology import build_two_rack_testbed


def _rtt_state(estimator):
    return (
        estimator.srtt_ns,
        estimator.rttvar_ns,
        estimator.mdev_ns,
        estimator.min_rtt_ns,
        estimator.latest_rtt_ns,
        estimator.samples,
    )


def _attach_shadow(conn):
    """Wrap ``conn._handle_ack`` with the fused-vs-reference checker.

    Returns a counter dict updated live; the test asserts afterwards
    that the shadow actually exercised a meaningful number of ACKs.
    """
    orig_handle = conn._handle_ack
    orig_collect = conn._collect_cum_acked
    orig_sack = conn._apply_sack
    counters = {"acks": 0, "compared": 0, "rtt_updates": 0}

    def wrapped_handle_ack(pkt):
        captured = {}

        def collect(ack):
            segs = orig_collect(ack)
            captured["acked"] = segs
            return segs

        def apply_sack(p):
            segs = orig_sack(p)
            captured["sacked"] = segs
            return segs

        pre_rtts = [copy.deepcopy(path.rtt) for path in conn.paths]
        pre_rack = copy.deepcopy(conn.rack)
        conn._collect_cum_acked = collect
        conn._apply_sack = apply_sack
        try:
            orig_handle(pkt)
        finally:
            del conn._collect_cum_acked
            del conn._apply_sack
        counters["acks"] += 1
        acked = captured.get("acked", [])
        sacked = captured.get("sacked", [])
        if not acked and not sacked:
            return
        fused_rtts = [_rtt_state(path.rtt) for path in conn.paths]
        fused_rack = (conn.rack.xmit_ns, conn.rack.end_seq)
        # Swap the pre-ACK copies in and drive the reference pipeline
        # over the very same segment lists (segment flags read by the
        # reference methods are not mutated after _apply_sack, so the
        # replay sees what the fused loop saw).
        real_rtts = [path.rtt for path in conn.paths]
        real_rack = conn.rack
        for path, pristine in zip(conn.paths, pre_rtts):
            path.rtt = pristine
        conn.rack = pre_rack
        try:
            conn._take_rtt_samples(acked, sacked, pkt)
            conn._update_rack(acked, sacked)
            reference_rtts = [_rtt_state(path.rtt) for path in conn.paths]
            reference_rack = (conn.rack.xmit_ns, conn.rack.end_seq)
        finally:
            for path, real in zip(conn.paths, real_rtts):
                path.rtt = real
            conn.rack = real_rack
        assert fused_rtts == reference_rtts, (
            f"RTT divergence on ACK {pkt.ack} at t={conn.sim.now}: "
            f"fused={fused_rtts} reference={reference_rtts}"
        )
        assert fused_rack == reference_rack, (
            f"RACK divergence on ACK {pkt.ack} at t={conn.sim.now}: "
            f"fused={fused_rack} reference={reference_rack}"
        )
        counters["compared"] += 1
        if any(state[5] for state in fused_rtts):
            counters["rtt_updates"] += 1

    conn._handle_ack = wrapped_handle_ack
    return counters


class TestAckPipelineEquivalence:
    def test_fused_pipeline_matches_reference_on_bulk_run(self):
        cfg = ExperimentConfig(
            variant="tdtcp", n_flows=2, weeks=8, warmup_weeks=2, seed=11
        )
        variant = get_variant(cfg.variant)
        testbed = build_two_rack_testbed(
            replace(cfg.rdcn, seed=cfg.seed), ecn=variant.needs_ecn
        )
        context = variant.prepare(testbed, cfg)
        workload = build_workload(
            testbed,
            lambda tb, src, dst, i: variant.make_flow(tb, src, dst, i, cfg, context),
            n_flows=cfg.n_flows,
            trace_sequence=False,
        )
        shadows = [_attach_shadow(flow.sender) for flow in workload.flows]
        testbed.start()
        testbed.sim.run(until=cfg.duration_ns)

        total_acks = sum(s["acks"] for s in shadows)
        total_compared = sum(s["compared"] for s in shadows)
        total_sampled = sum(s["rtt_updates"] for s in shadows)
        # The run must genuinely exercise the pipeline, or the
        # assertions above are vacuous.
        assert total_acks > 500, f"only {total_acks} ACKs observed"
        assert total_compared > 500, f"only {total_compared} ACKs compared"
        assert total_sampled > 0, "no RTT samples were ever elected"
        assert workload.total_delivered_bytes > 0
