"""Fault-injection subsystem: plans, injectors, graceful degradation,
invariant auditing, watchdog, and crash capture."""

import json
import pathlib

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.cli import main as cli_main
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InvariantAuditor,
    InvariantViolation,
    WatchdogExceeded,
    run_with_watchdog,
    write_repro_bundle,
)
from repro.net.packet import MAX_TDN_ID, TDNNotification
from repro.net.queues import DropTailQueue
from repro.obs.telemetry import ObsConfig, Telemetry
from repro.sim.rng import SeededRandom
from repro.sim.simulator import Simulator
from repro.units import msec, usec

from tests.helpers import bulk_pair, small_rdcn, two_hosts


def plan_of(*specs) -> FaultPlan:
    return FaultPlan(specs=[FaultSpec(**spec) for spec in specs], name="test")


def mini_config(seed=3, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        variant="tdtcp",
        rdcn=small_rdcn(n_hosts=2, seed=seed),
        n_flows=2,
        weeks=6,
        warmup_weeks=1,
        seed=seed,
        collect_voq=False,
        **kwargs,
    )


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = plan_of(
            {"kind": "link_flap", "target": "r0h0-up", "at_ns": 1000,
             "period_ns": 5000, "count": 3, "params": {"down_ns": 200}},
            {"kind": "notifier_drop", "params": {"rate": 0.5}},
            {"kind": "queue_squeeze", "target": "voq-*", "at_ns": 10,
             "until_ns": 20, "params": {"capacity": 4}},
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        plan = plan_of({"kind": "packet_loss", "params": {"rate": 0.1}})
        path = plan.save(tmp_path / "plans" / "p.json")
        assert FaultPlan.load(path) == plan
        # The file is plain JSON a human can edit.
        assert json.loads(pathlib.Path(path).read_text())["specs"][0]["kind"] == "packet_loss"

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="cosmic_rays")

    def test_bad_window_rejected(self):
        with pytest.raises(FaultPlanError, match="until_ns"):
            FaultSpec(kind="link_flap", at_ns=100, until_ns=100)

    def test_repetition_needs_period(self):
        with pytest.raises(FaultPlanError, match="period_ns"):
            FaultSpec(kind="link_flap", count=2)

    def test_unknown_param_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown params"):
            FaultSpec(kind="packet_loss", params={"probability": 0.1})

    def test_rate_range_checked(self):
        with pytest.raises(FaultPlanError, match="rate"):
            FaultSpec(kind="packet_loss", params={"rate": 1.5})

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault spec fields"):
            FaultSpec.from_dict({"kind": "packet_loss", "when": 5})

    def test_shipped_plans_parse(self):
        for name in ("day_one_storm", "lossy_fabric", "control_plane_chaos"):
            plan = FaultPlan.load(f"examples/fault_plans/{name}.json")
            assert len(plan) >= 3


class TestNetInjectors:
    def run_with_plan(self, plan, duration_ms=20, seed=11):
        sim, a, b, ab, ba = two_hosts()
        injector = FaultInjector(sim, plan, SeededRandom(seed))
        injector.arm(links={"ab": ab, "ba": ba})
        client, server = bulk_pair(sim, a, b)
        sim.run(until=msec(duration_ms))
        return sim, client, server, injector, ab

    def test_link_flap_drops_then_recovers(self):
        plan = plan_of({"kind": "link_flap", "target": "ab", "at_ns": msec(2),
                        "params": {"down_ns": usec(500)}})
        sim, client, server, injector, ab = self.run_with_plan(plan)
        assert ab.fault_drops > 0
        assert injector.effects["link_flap"] >= 2  # down + up markers
        # The connection survives the outage and keeps delivering after.
        assert server.stats.bytes_delivered > 500_000
        client.check_invariants()

    def test_total_loss_window_then_progress(self):
        plan = plan_of({"kind": "packet_loss", "target": "ab", "at_ns": 0,
                        "until_ns": msec(2), "params": {"rate": 1.0}})
        sim, client, server, injector, _ab = self.run_with_plan(plan)
        assert injector.effects["packet_loss"] > 0
        assert server.stats.bytes_delivered > 0  # recovered after the window
        client.check_invariants()

    def test_burst_loss_and_jitter_survivable(self):
        plan = plan_of(
            {"kind": "burst_loss", "target": "*",
             "params": {"p_enter": 0.02, "p_exit": 0.3, "loss_bad": 0.5}},
            {"kind": "delay_jitter", "target": "*",
             "params": {"rate": 0.05, "max_jitter_ns": usec(30)}},
        )
        sim, client, server, injector, _ab = self.run_with_plan(plan)
        assert injector.effects.get("burst_loss", 0) + injector.effects.get("delay_jitter", 0) > 0
        assert server.stats.bytes_delivered > 0
        client.check_invariants()
        server.check_invariants()

    def test_queue_squeeze_restores_capacity(self):
        sim = Simulator()
        queue = DropTailQueue(capacity=64, name="voq-test")
        plan = plan_of({"kind": "queue_squeeze", "target": "voq-*",
                        "at_ns": 1000, "until_ns": 2000, "params": {"capacity": 4}})
        FaultInjector(sim, plan, SeededRandom(1)).arm(queues={"voq-test": queue})
        sim.run(until=1500)
        assert queue.capacity == 4
        sim.run(until=3000)
        assert queue.capacity == 64

    def test_unmatched_target_reported(self):
        sim = Simulator()
        plan = plan_of({"kind": "packet_loss", "target": "nope-*",
                        "params": {"rate": 0.5}})
        injector = FaultInjector(sim, plan, SeededRandom(1)).arm(links={})
        assert any("matched nothing" in note for note in injector.unmatched)

    def test_arming_twice_rejected(self):
        sim = Simulator()
        injector = FaultInjector(sim, plan_of(), SeededRandom(1)).arm()
        with pytest.raises(RuntimeError):
            injector.arm()


class TestStaleNotificationHandling:
    """Satellite regression tests: stale/duplicate/unknown TDN signals
    are ignored-and-counted, never applied and never raised."""

    def notify(self, tdn_id, seq):
        notification = TDNNotification("tor", "r0h0", tdn_id)
        notification.notify_seq = seq
        return notification

    def test_host_rejects_stale_seq(self):
        sim, a, _b, _ab, _ba = two_hosts()
        seen = []
        a.subscribe_tdn_changes(lambda n: seen.append(n.tdn_id))
        a.deliver(self.notify(1, seq=5))
        a.deliver(self.notify(0, seq=3))  # stale: lower seq
        a.deliver(self.notify(1, seq=5))  # duplicate: same seq
        assert seen == [1]
        assert a.stale_notifications == 2

    def test_host_rejects_unknown_tdn_id(self):
        sim, a, _b, _ab, _ba = two_hosts()
        a.max_tdn_id = MAX_TDN_ID
        seen = []
        a.subscribe_tdn_changes(lambda n: seen.append(n.tdn_id))
        a.deliver(self.notify(MAX_TDN_ID + 1, seq=1))
        a.deliver(self.notify(-2, seq=2))
        assert seen == []
        assert a.stale_notifications == 2

    def test_unsequenced_notifications_still_accepted(self):
        # Hand-built notifications (tests, runtime schedule changes)
        # carry no notify_seq and must keep working.
        sim, a, _b, _ab, _ba = two_hosts()
        seen = []
        a.subscribe_tdn_changes(lambda n: seen.append(n.tdn_id))
        a.deliver(TDNNotification("tor", a.address, 1))
        a.deliver(TDNNotification("tor", a.address, 0))
        assert seen == [1, 0]
        assert a.stale_notifications == 0

    def test_connection_rejects_stale_and_unknown(self):
        from repro.core.tdtcp import TDTCPConnection

        sim, a, b, _ab, _ba = two_hosts()
        client, _server = bulk_pair(
            sim, a, b, connection_cls=TDTCPConnection, tdn_count=2
        )
        sim.run(until=msec(1))
        client._on_tdn_notification(self.notify(1, seq=7))
        assert client.tdn_state.current_index == 1
        client._on_tdn_notification(self.notify(0, seq=6))  # stale
        assert client.tdn_state.current_index == 1
        client._on_tdn_notification(self.notify(MAX_TDN_ID + 1, seq=8))
        assert client.tdn_state.current_index == 1
        assert client.stale_notifications == 2

    def test_stale_counter_reaches_metrics(self):
        sim = Simulator()
        telemetry = Telemetry(ObsConfig()).attach(sim)
        telemetry.enable_metrics_bridge()
        sim2, a, _b, _ab, _ba = two_hosts(sim=sim)
        a.deliver(self.notify(1, seq=5))
        a.deliver(self.notify(0, seq=3))
        counter = telemetry.metrics.get("tdn_notification_stale")
        assert counter.value(where="host", reason="stale_seq") == 1


class TestInvariantAuditor:
    def watched_pair(self, mode="warn"):
        sim, a, b, _ab, _ba = two_hosts()
        client, server = bulk_pair(sim, a, b)
        auditor = InvariantAuditor(sim, mode=mode, interval_ns=usec(100))
        auditor.watch_endpoint(client)
        auditor.watch_endpoint(server)
        return sim, client, auditor

    def test_clean_run(self):
        sim, client, auditor = self.watched_pair()
        auditor.start()
        sim.run(until=msec(10))
        auditor.audit()
        assert auditor.clean
        assert auditor.checks_run > 50
        auditor.assert_clean()

    def test_warn_mode_records_corrupted_accounting(self):
        sim, client, auditor = self.watched_pair(mode="warn")
        sim.run(until=msec(2))
        client.paths[0].packets_out += 5  # corrupt the fast-path counter
        violations = auditor.audit()
        assert any(v["check"] == "pipe_accounting" for v in violations)
        assert not auditor.clean
        with pytest.raises(InvariantViolation):
            auditor.assert_clean()

    def test_fail_mode_raises(self):
        sim, client, auditor = self.watched_pair(mode="fail")
        sim.run(until=msec(2))
        client.paths[0].cc.cwnd = 0
        with pytest.raises(InvariantViolation, match="cwnd_floor"):
            auditor.audit()

    def test_sequence_order_checked(self):
        sim, client, auditor = self.watched_pair()
        sim.run(until=msec(2))
        client.snd_una = client.snd_nxt + 10
        violations = auditor.audit()
        assert any(v["check"] == "sequence_order" for v in violations)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantAuditor(Simulator(), mode="panic")


class TestWatchdog:
    def spinning_sim(self):
        sim = Simulator()

        def spin():
            sim.schedule(10, spin)

        sim.schedule(10, spin)
        return sim

    def test_event_budget_aborts(self):
        sim = self.spinning_sim()
        with pytest.raises(WatchdogExceeded, match="event budget"):
            run_with_watchdog(sim, max_events=500, chunk_events=100)

    def test_wall_budget_aborts(self):
        sim = self.spinning_sim()
        with pytest.raises(WatchdogExceeded, match="wall-clock"):
            run_with_watchdog(sim, max_wall_s=0.0, chunk_events=100)

    def test_completes_under_budget(self):
        sim = Simulator()
        ticks = []
        for t in range(10):
            sim.at(t * 100, ticks.append, t)
        processed = run_with_watchdog(sim, until=10_000, max_events=10_000)
        assert processed >= 10
        assert len(ticks) == 10
        assert sim.now == 10_000  # drained runs still advance to the horizon

    def test_no_budgets_is_plain_run(self):
        sim = Simulator()
        sim.at(50, lambda: None)
        assert run_with_watchdog(sim, until=100) == 1


class TestCrashCapture:
    def test_bundle_contents(self, tmp_path):
        plan = plan_of({"kind": "notifier_drop", "params": {"rate": 0.5}})
        try:
            raise RuntimeError("boom")
        except RuntimeError as error:
            path = write_repro_bundle(
                tmp_path, config=mini_config(), error=error,
                fault_plan=plan, seed=3, label="tdtcp",
            )
        bundle = pathlib.Path(path)
        assert bundle.name == "bundle_tdtcp_seed3"
        manifest = json.loads((bundle / "MANIFEST.json").read_text())
        assert manifest["error_type"] == "RuntimeError"
        assert "--seed 3" in manifest["replay"]
        assert FaultPlan.load(bundle / "fault_plan.json") == plan
        assert json.loads((bundle / "config.json").read_text())["seed"] == 3
        assert "boom" in (bundle / "error.txt").read_text()

    def test_collision_gets_fresh_directory(self, tmp_path):
        first = write_repro_bundle(tmp_path, seed=1, label="x")
        second = write_repro_bundle(tmp_path, seed=1, label="x")
        assert first != second and pathlib.Path(second).exists()


class TestRunnerIntegration:
    def test_faulted_run_returns_reports(self, tmp_path):
        plan = plan_of(
            {"kind": "notifier_drop", "params": {"rate": 0.5}},
            {"kind": "schedule_skew", "params": {"max_skew_ns": 5000}},
        )
        config = mini_config(fault_plan=plan, audit="fail",
                             bundle_dir=str(tmp_path))
        result = run_experiment(config)
        assert result.ok
        assert result.fault_report["total_effects"] > 0
        assert result.audit_report["violation_count"] == 0
        assert result.aggregate_delivered > 0
        assert not list(tmp_path.iterdir())  # no bundle on success

    def test_watchdog_failure_becomes_structured_result(self, tmp_path):
        plan = plan_of({"kind": "notifier_drop", "params": {"rate": 0.5}})
        config = mini_config(fault_plan=plan, audit="warn",
                             watchdog_max_events=300,
                             bundle_dir=str(tmp_path))
        result = run_experiment(config)
        assert not result.ok
        assert result.failure.error_type == "WatchdogExceeded"
        assert result.failure.seed == config.seed
        bundle = pathlib.Path(result.failure.bundle_path)
        assert bundle.is_dir()
        assert FaultPlan.load(bundle / "fault_plan.json") == plan
        assert "WatchdogExceeded" in result.failure.render()

    def test_zero_rate_plan_is_behavior_neutral(self):
        """Arming faults must not perturb the workload: a plan whose
        every stochastic knob is zero reproduces the fault-free run."""
        baseline = run_experiment(mini_config())
        nulls = plan_of(
            {"kind": "packet_loss", "params": {"rate": 0.0}},
            {"kind": "delay_jitter", "params": {"rate": 0.0}},
            {"kind": "notifier_drop", "params": {"rate": 0.0}},
            {"kind": "notifier_duplicate", "params": {"rate": 0.0}},
            {"kind": "schedule_skew", "params": {"max_skew_ns": 0}},
        )
        faulted = run_experiment(mini_config(fault_plan=nulls))
        assert faulted.aggregate_delivered == baseline.aggregate_delivered
        assert faulted.flow_delivered == baseline.flow_delivered
        assert faulted.retransmissions == baseline.retransmissions
        assert faulted.fault_report["total_effects"] == 0


class TestChaosCLI:
    def test_clean_chaos_run_exits_zero(self, tmp_path, capsys):
        code = cli_main([
            "chaos", "--weeks", "6", "--warmup", "1", "--flows", "2",
            "--fault-plan", "examples/fault_plans/day_one_storm.json",
            "--audit", "fail", "--bundle-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 violations" in out
        assert "delivered:" in out

    def test_failed_run_exits_nonzero_with_bundle_path(self, tmp_path, capsys):
        code = cli_main([
            "chaos", "--weeks", "6", "--warmup", "1", "--flows", "2",
            "--fault-plan", "examples/fault_plans/day_one_storm.json",
            "--watchdog-events", "300", "--bundle-dir", str(tmp_path),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "run FAILED: WatchdogExceeded" in captured.err
        assert "repro bundle:" in captured.err
        assert any(tmp_path.iterdir())
