"""Generality: an RDCN with three TDNs (§6: "TDTCP is general,
supporting an arbitrary number of distinct TDNs with various
properties, not just the bimodal fabric reTCP presumes").

TDN 0: 10 Gbps packet network; TDN 1: 100 Gbps circuit; TDN 2: a
40 Gbps mid-tier circuit (e.g. an older OCS generation).
"""

from dataclasses import replace

import pytest

from repro.core.tdtcp import TDTCPConnection
from repro.rdcn.config import RDCNConfig
from repro.rdcn.fabric import NetworkPath
from repro.rdcn.topology import build_two_rack_testbed
from repro.tcp.config import TCPConfig
from repro.tcp.sockets import create_connection_pair
from repro.units import gbps, usec


def three_tdn_config() -> RDCNConfig:
    return RDCNConfig(
        n_hosts_per_rack=2,
        host_link_rate_bps=gbps(50),
        schedule_pattern=(0, 0, 2, 0, 0, 1),
    )


def build_three_tdn_testbed():
    """The stock builder knows two rates; patch a third path in."""
    cfg = three_tdn_config()
    testbed = build_two_rack_testbed(cfg)
    mid_tier = NetworkPath(2, gbps(40), usec(10), is_circuit=True, name="optical-mid")
    for uplink in testbed.uplinks.values():
        uplink.paths[2] = mid_tier
        uplink.per_tdn_tx[2] = 0
    return cfg, testbed


class TestThreeTDNs:
    def test_schedule_cycles_through_all(self):
        cfg, testbed = build_three_tdn_testbed()
        seen = set()
        testbed.driver.on_day_start(lambda tdn, idx: seen.add(tdn))
        testbed.start()
        testbed.sim.run(until=cfg.week_ns)
        assert seen == {0, 1, 2}

    def test_tdtcp_keeps_three_state_sets(self):
        cfg, testbed = build_three_tdn_testbed()
        client, server = create_connection_pair(
            testbed.sim, testbed.host(0, 0), testbed.host(1, 0),
            connection_cls=TDTCPConnection, tdn_count=3,
            config=TCPConfig(mss=cfg.mss),
        )
        client.start_bulk()
        testbed.start()
        testbed.sim.run(until=cfg.week_ns * 12)
        assert client.negotiated_tdns == 3
        assert len(client.paths) == 3
        # Every TDN carried traffic and accumulated its own RTT model.
        for uplink_tdn, count in testbed.uplinks[0].per_tdn_tx.items():
            assert count > 0, f"TDN {uplink_tdn} never carried data"
        sampled = [p for p in client.paths if p.rtt.srtt_ns is not None]
        assert len(sampled) == 3

    def test_distinct_rtt_models_per_tier(self):
        cfg, testbed = build_three_tdn_testbed()
        client, server = create_connection_pair(
            testbed.sim, testbed.host(0, 0), testbed.host(1, 0),
            connection_cls=TDTCPConnection, tdn_count=3,
            config=TCPConfig(mss=cfg.mss),
        )
        client.start_bulk()
        testbed.start()
        testbed.sim.run(until=cfg.week_ns * 20)
        # Each state set tracks its own network: the packet tier's RTT
        # model is the slowest, the fast circuit's the quickest, the
        # mid-tier in between (§3.1's isolated per-TDN samples).
        srtt = [p.rtt.srtt_ns for p in client.paths]
        assert all(s is not None for s in srtt)
        assert srtt[0] > srtt[2] > srtt[1]

    def test_transfer_outperforms_packet_only(self):
        cfg, testbed = build_three_tdn_testbed()
        client, server = create_connection_pair(
            testbed.sim, testbed.host(0, 0), testbed.host(1, 0),
            connection_cls=TDTCPConnection, tdn_count=3,
            config=TCPConfig(mss=cfg.mss),
        )
        client.start_bulk()
        testbed.start()
        weeks = 20
        testbed.sim.run(until=cfg.week_ns * weeks)
        from repro.units import throughput_gbps

        thr = throughput_gbps(server.stats.bytes_delivered, testbed.sim.now)
        # Packet-only upper bound here is 10 Gbps x (4 days / week share).
        assert thr > 8.0

    def test_tdn_count_mismatch_with_three(self):
        cfg, testbed = build_three_tdn_testbed()
        client_port = testbed.host(0, 0).allocate_port()
        client = TDTCPConnection(
            testbed.sim, testbed.host(0, 0), "r1h0", 5001,
            local_port=client_port, tdn_count=3,
        )
        server = TDTCPConnection(
            testbed.sim, testbed.host(1, 0), "r0h0", client_port,
            local_port=5001, tdn_count=2,
        )
        server.listen()
        client.connect()
        testbed.start()
        testbed.sim.run(until=cfg.week_ns)
        assert client.downgraded and server.downgraded
        assert client.state == "established"
