"""Send/receive buffers: reassembly, SACK blocks, windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.buffers import ReceiveBuffer, SendBuffer


class TestSendBuffer:
    def test_write_and_available(self):
        sb = SendBuffer()
        sb.write(1000)
        assert sb.available_beyond(0) == 1000
        assert sb.available_beyond(400) == 600
        assert sb.available_beyond(1000) == 0
        assert sb.available_beyond(2000) == 0

    def test_unlimited(self):
        sb = SendBuffer(unlimited=True)
        assert sb.available_beyond(10 ** 12) > 0

    def test_capacity_gate(self):
        sb = SendBuffer(capacity_bytes=3000)
        assert sb.within_capacity(snd_una=0, snd_nxt=1500)
        assert not sb.within_capacity(snd_una=0, snd_nxt=3000)
        assert sb.within_capacity(snd_una=1500, snd_nxt=3000)

    def test_no_capacity_means_unbounded(self):
        sb = SendBuffer()
        assert sb.within_capacity(0, 10 ** 12)

    def test_negative_write_rejected(self):
        with pytest.raises(ValueError):
            SendBuffer().write(-1)


class TestReceiveBufferInOrder:
    def test_in_order_delivery(self):
        rb = ReceiveBuffer()
        assert rb.receive(0, 100) == 100
        assert rb.rcv_nxt == 100
        assert rb.receive(100, 250) == 150
        assert rb.rcv_nxt == 250
        assert rb.sack_blocks() == ()

    def test_duplicate_ignored(self):
        rb = ReceiveBuffer()
        rb.receive(0, 100)
        assert rb.receive(0, 100) == 0
        assert rb.duplicate_bytes == 100

    def test_partial_overlap_clipped(self):
        rb = ReceiveBuffer()
        rb.receive(0, 100)
        assert rb.receive(50, 150) == 50
        assert rb.rcv_nxt == 150


class TestReceiveBufferOutOfOrder:
    def test_hole_then_fill(self):
        rb = ReceiveBuffer()
        assert rb.receive(100, 200) == 0
        assert rb.rcv_nxt == 0
        assert rb.ooo_bytes == 100
        assert rb.receive(0, 100) == 200
        assert rb.rcv_nxt == 200
        assert rb.ooo_bytes == 0

    def test_sack_blocks_most_recent_first(self):
        rb = ReceiveBuffer()
        rb.receive(100, 200)
        rb.receive(300, 400)
        blocks = rb.sack_blocks()
        assert blocks[0] == (300, 400)  # most recent arrival first
        assert (100, 200) in blocks

    def test_sack_block_limit(self):
        rb = ReceiveBuffer(max_sack_blocks=3)
        for i in range(5):
            rb.receive(100 + i * 200, 200 + i * 200)
        assert len(rb.sack_blocks()) == 3

    def test_sack_blocks_merge(self):
        rb = ReceiveBuffer()
        rb.receive(100, 200)
        rb.receive(200, 300)
        assert rb.sack_blocks() == ((100, 300),)

    def test_invalid_segment(self):
        with pytest.raises(ValueError):
            ReceiveBuffer().receive(10, 5)

    def test_total_delivered(self):
        rb = ReceiveBuffer()
        rb.receive(100, 200)
        rb.receive(0, 100)
        assert rb.total_delivered == 200


segments_strategy = st.permutations(list(range(20)))


class TestReceiveBufferProperties:
    @given(segments_strategy)
    @settings(max_examples=150)
    def test_any_arrival_order_delivers_everything(self, order):
        """20 MSS-100 segments in any order: all bytes exactly once."""
        rb = ReceiveBuffer()
        delivered = 0
        for index in order:
            delivered += rb.receive(index * 100, (index + 1) * 100)
        assert delivered == 2000
        assert rb.rcv_nxt == 2000
        assert rb.ooo_bytes == 0

    @given(segments_strategy)
    @settings(max_examples=100)
    def test_rcv_nxt_monotone(self, order):
        rb = ReceiveBuffer()
        last = 0
        for index in order:
            rb.receive(index * 100, (index + 1) * 100)
            assert rb.rcv_nxt >= last
            last = rb.rcv_nxt

    @given(segments_strategy, st.integers(0, 19))
    @settings(max_examples=100)
    def test_duplicates_never_double_deliver(self, order, dup_index):
        rb = ReceiveBuffer()
        delivered = 0
        for index in order:
            delivered += rb.receive(index * 100, (index + 1) * 100)
            delivered += rb.receive(dup_index * 100, (dup_index + 1) * 100)
        assert delivered == 2000

    @given(segments_strategy)
    @settings(max_examples=100)
    def test_sack_blocks_describe_ooo_data(self, order):
        rb = ReceiveBuffer()
        for index in order[:10]:
            rb.receive(index * 100, (index + 1) * 100)
            for start, end in rb.sack_blocks():
                assert start >= rb.rcv_nxt
                assert start < end
