"""End-to-end RDCN integration: the paper's qualitative orderings at
reduced scale, plus fault injection.

These are the claims a reproduction must preserve (Figures 2, 7-10):

* TDTCP out-throughputs CUBIC/DCTCP under bandwidth+latency variation;
* MPTCP (tdm_schd) is the worst performer;
* under bandwidth-only variation the single-path variants are much
  closer to TDTCP;
* TDTCP suffers fewer spurious retransmissions than CUBIC;
* reTCP-dyn is the only competitive alternative and needs the larger
  VOQ to do it.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.figures import bw_only_rdcn, latency_only_rdcn
from repro.net.packet import TDNNotification
from repro.rdcn.config import RDCNConfig

WEEKS = 24
WARMUP = 8
FLOWS = 4


def run(variant, rdcn=None, **kwargs):
    cfg = ExperimentConfig(
        variant=variant,
        rdcn=rdcn if rdcn is not None else RDCNConfig(),
        n_flows=kwargs.pop("n_flows", FLOWS),
        weeks=kwargs.pop("weeks", WEEKS),
        warmup_weeks=kwargs.pop("warmup_weeks", WARMUP),
        **kwargs,
    )
    return run_experiment(cfg)


@pytest.fixture(scope="module")
def bw_latency_results():
    return {v: run(v) for v in ("cubic", "dctcp", "tdtcp", "mptcp", "retcpdyn")}


class TestFigure7Orderings:
    def test_tdtcp_beats_cubic(self, bw_latency_results):
        tdtcp = bw_latency_results["tdtcp"].steady_state_throughput_gbps()
        cubic = bw_latency_results["cubic"].steady_state_throughput_gbps()
        assert tdtcp > cubic * 1.10

    def test_tdtcp_beats_dctcp(self, bw_latency_results):
        tdtcp = bw_latency_results["tdtcp"].steady_state_throughput_gbps()
        dctcp = bw_latency_results["dctcp"].steady_state_throughput_gbps()
        assert tdtcp > dctcp * 1.10

    def test_mptcp_is_worst(self, bw_latency_results):
        mptcp = bw_latency_results["mptcp"].steady_state_throughput_gbps()
        for other in ("cubic", "dctcp", "tdtcp", "retcpdyn"):
            assert mptcp < bw_latency_results[other].steady_state_throughput_gbps()

    def test_retcpdyn_competitive_with_tdtcp(self, bw_latency_results):
        tdtcp = bw_latency_results["tdtcp"].steady_state_throughput_gbps()
        retcpdyn = bw_latency_results["retcpdyn"].steady_state_throughput_gbps()
        assert retcpdyn > tdtcp * 0.6
        assert retcpdyn > bw_latency_results["cubic"].steady_state_throughput_gbps()

    def test_all_beat_nothing(self, bw_latency_results):
        # Sanity: every variant moves serious data.
        for result in bw_latency_results.values():
            assert result.steady_state_throughput_gbps() > 3.0

    def test_retcpdyn_uses_enlarged_voq(self, bw_latency_results):
        assert bw_latency_results["retcpdyn"].voq_max > 96
        assert bw_latency_results["cubic"].voq_max <= 96


class TestFigure10Reordering:
    def test_tdtcp_fewer_spurious_than_cubic(self, bw_latency_results):
        tdtcp = bw_latency_results["tdtcp"]
        cubic = bw_latency_results["cubic"]
        # Normalize per delivered byte to be fair.
        tdtcp_rate = tdtcp.spurious_retransmissions / max(tdtcp.aggregate_delivered, 1)
        cubic_rate = cubic.spurious_retransmissions / max(cubic.aggregate_delivered, 1)
        assert tdtcp_rate < cubic_rate

    def test_some_clean_optical_days_for_tdtcp(self, bw_latency_results):
        days = bw_latency_results["tdtcp"].retx_marks_per_day
        assert any(count == 0 for count in days)


class TestFigure8BandwidthOnly:
    def test_single_path_adapts_to_bandwidth_only(self):
        rdcn = bw_only_rdcn()
        tdtcp = run("tdtcp", rdcn).steady_state_throughput_gbps()
        cubic = run("cubic", rdcn).steady_state_throughput_gbps()
        # Figure 8: CUBIC adapts to pure bandwidth variation — clearly
        # above packet-only — and captures a solid share of TDTCP's
        # throughput (see the fig8 benchmark docstring for the
        # documented deviation on the parity magnitude).
        assert cubic > rdcn.packet_rate_bps / 1e9 * 1.1
        assert cubic > tdtcp * 0.55

    def test_mptcp_still_struggles(self):
        rdcn = bw_only_rdcn()
        mptcp = run("mptcp", rdcn).steady_state_throughput_gbps()
        tdtcp = run("tdtcp", rdcn).steady_state_throughput_gbps()
        assert mptcp < tdtcp


class TestFigure9LatencyOnly:
    def test_variants_bunch_together(self):
        rdcn = latency_only_rdcn(100.0)
        cubic = run("cubic", rdcn, n_flows=4).steady_state_throughput_gbps()
        tdtcp = run("tdtcp", rdcn, n_flows=4).steady_state_throughput_gbps()
        # Figure 9: TDTCP and CUBIC perform almost identically.
        assert abs(tdtcp - cubic) / cubic < 0.35

    def test_throughput_near_line_rate(self):
        rdcn = latency_only_rdcn(100.0)
        cubic = run("cubic", rdcn, n_flows=4).steady_state_throughput_gbps()
        assert cubic > 40.0  # out of ~90+ achievable


class TestFigure11Notification:
    def test_optimizations_help_tdtcp(self):
        opt = run("tdtcp").steady_state_throughput_gbps()
        unopt = run("tdtcp-unopt").steady_state_throughput_gbps()
        # Paper: +12.7% from the three optimizations combined.
        assert opt > unopt

    def test_unoptimized_notification_latency_higher(self):
        opt = run("tdtcp", weeks=8, warmup_weeks=2)
        unopt = run("tdtcp-unopt", weeks=8, warmup_weeks=2)
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(unopt.notification_latencies) > mean(opt.notification_latencies)


class TestFaultInjection:
    def test_random_fabric_loss_survived(self):
        """1% random loss on the fabric: throughput degrades but every
        variant keeps moving data and never wedges."""
        from repro.rdcn.topology import build_two_rack_testbed
        from repro.tcp.sockets import create_connection_pair
        from repro.core.tdtcp import TDTCPConnection
        from repro.sim.rng import SeededRandom

        cfg = RDCNConfig(n_hosts_per_rack=2)
        tb = build_two_rack_testbed(cfg)
        rng = SeededRandom(5)
        for uplink in tb.uplinks.values():
            original = uplink.deliver

            def lossy(pkt, orig=original):
                if rng.chance(0.01):
                    pkt.dropped = True
                    return
                orig(pkt)

            uplink.deliver = lossy
        client, server = create_connection_pair(
            tb.sim, tb.host(0, 0), tb.host(1, 0),
            connection_cls=TDTCPConnection, tdn_count=2,
        )
        client.start_bulk()
        tb.start()
        tb.sim.run(until=cfg.week_ns * 15)
        assert server.stats.bytes_delivered > 500_000
        assert client.stats.retransmissions > 0

    def test_lost_notifications_tolerated(self):
        """Dropping every second TDN notification delays state switches
        but must not break the connection."""
        from repro.rdcn.topology import build_two_rack_testbed
        from repro.tcp.sockets import create_connection_pair
        from repro.core.tdtcp import TDTCPConnection

        cfg = RDCNConfig(n_hosts_per_rack=2)
        tb = build_two_rack_testbed(cfg)
        client, server = create_connection_pair(
            tb.sim, tb.host(0, 0), tb.host(1, 0),
            connection_cls=TDTCPConnection, tdn_count=2,
        )
        # Client drops every other notification.
        counter = {"n": 0}
        real_handler = client._on_tdn_notification

        def flaky(notification):
            counter["n"] += 1
            if counter["n"] % 2 == 0:
                return
            real_handler(notification)

        client.host._tdn_listeners[-1] = flaky
        client.start_bulk()
        tb.start()
        tb.sim.run(until=cfg.week_ns * 10)
        assert server.stats.bytes_delivered > 500_000

    def test_runtime_schedule_change(self):
        """A third TDN appearing mid-connection initializes fresh state
        (§4.2 runtime schedule changes)."""
        from repro.rdcn.topology import build_two_rack_testbed
        from repro.tcp.sockets import create_connection_pair
        from repro.core.tdtcp import TDTCPConnection

        cfg = RDCNConfig(n_hosts_per_rack=2)
        tb = build_two_rack_testbed(cfg)
        client, server = create_connection_pair(
            tb.sim, tb.host(0, 0), tb.host(1, 0),
            connection_cls=TDTCPConnection, tdn_count=2,
        )
        client.start_bulk()
        tb.start()
        tb.sim.run(until=cfg.week_ns * 2)
        client.host.deliver(TDNNotification("tor0", "r0h0", tdn_id=2))
        tb.sim.run(until=cfg.week_ns * 2 + 1000)
        assert len(client.paths) == 3
        assert client.current_tdn == 2
        # Return to the scheduled pattern and keep transferring.
        tb.sim.run(until=cfg.week_ns * 4)
        assert server.stats.bytes_delivered > 100_000
